"""Scenario-driven energy costs (Table 4): what intelligence costs in battery.

For the three use cases the paper studies — one hour of ambient sound
recognition, a day's worth of keyboard auto-completion and a one-hour video
call with 15 FPS person segmentation — this example reports the battery cost
on each of the Qualcomm development boards, using the models found in a
synthetic store snapshot.

    python examples/energy_scenarios.py [scale]

At very small scales some scenarios may find no applicable models; the default
scale of 0.15 covers all three use cases.
"""

from __future__ import annotations

import sys

from repro import GaugeNN
from repro.android import AppGenerator, GeneratorConfig, PlayStore
from repro.core.scenarios import REFERENCE_BATTERY, STANDARD_SCENARIOS, run_scenario, summarize
from repro.devices import DEV_BOARDS


def main(scale: float = 0.15) -> None:
    snapshot = AppGenerator(GeneratorConfig.snapshot_2021(scale=scale)).generate()
    analysis = GaugeNN(PlayStore([snapshot])).analyze_snapshot("2021")
    pairs = GaugeNN.graphs_with_tasks(analysis)
    print(f"{len(pairs)} unique models; reference battery "
          f"{REFERENCE_BATTERY.capacity_mah} mAh\n")

    print(f"{'device':<8}{'scenario':<12}{'models':>7}{'avg mAh':>12}{'median':>10}"
          f"{'min':>10}{'max':>12}{'% battery (max)':>17}")
    for device in DEV_BOARDS:
        for scenario in STANDARD_SCENARIOS:
            results = run_scenario(scenario, device, pairs)
            summary = summarize(results)
            if summary is None:
                print(f"{device.name:<8}{scenario.name:<12}{'-':>7}  (no applicable models)")
                continue
            worst_fraction = max(r.battery_fraction for r in results)
            print(f"{device.name:<8}{scenario.name:<12}{summary.model_count:>7}"
                  f"{summary.mean_mah:>12.3f}{summary.median_mah:>10.3f}"
                  f"{summary.min_mah:>10.4f}{summary.max_mah:>12.3f}"
                  f"{100 * worst_fraction:>16.1f}%")

    print()
    print("As in the paper's Table 4: typing costs almost nothing, an hour of sound")
    print("recognition stays under a few mAh, while an hour of video-call segmentation")
    print("can consume a substantial fraction of a 4000 mAh battery.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.15)
