"""Benchmark wild models across the paper's device fleet (Figs. 8-10 workflow).

Extracts the unique models from a synthetic snapshot and runs them through the
master-slave benchmark workflow on every Table 1 device, reporting per-device
latency ECDF summaries and, for the open-deck boards, energy and efficiency.

    python examples/device_benchmark.py [scale]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import GaugeNN
from repro.android import AppGenerator, GeneratorConfig, PlayStore
from repro.core.benchmarker import DeviceBenchmarker
from repro.core import reports
from repro.devices import DEVICE_FLEET, DEV_BOARDS
from repro.runtime import Backend


def main(scale: float = 0.05) -> None:
    snapshot = AppGenerator(GeneratorConfig.snapshot_2021(scale=scale)).generate()
    analysis = GaugeNN(PlayStore([snapshot])).analyze_snapshot("2021")
    graphs = GaugeNN.unique_graphs(analysis)
    print(f"Benchmarking {len(graphs)} unique models on {len(DEVICE_FLEET)} devices ...")

    results_by_device = {}
    for device in DEVICE_FLEET:
        benchmarker = DeviceBenchmarker(device)
        records = benchmarker.run_suite(graphs, backend=Backend.CPU, num_inferences=3)
        results_by_device[device.name] = [record.result for record in records]

    print()
    print("=== Latency per device (Fig. 9) ===")
    ecdfs = reports.latency_ecdf_by_device(results_by_device)
    print(f"{'device':<8}{'mean ms':>10}{'median ms':>12}{'p90 ms':>10}")
    for name, ecdf in ecdfs.items():
        print(f"{name:<8}{np.mean(ecdf.values):>10.1f}{ecdf.median:>12.1f}"
              f"{ecdf.quantile(0.9):>10.1f}")

    print()
    print("=== Energy / power / efficiency on the boards (Fig. 10) ===")
    board_results = {d.name: results_by_device[d.name] for d in DEV_BOARDS}
    table = reports.energy_distributions(board_results)
    print(f"{'board':<8}{'energy mJ':>12}{'power W':>10}{'MFLOP/sW':>12}")
    for name, row in table.items():
        print(f"{name:<8}{row['energy_median_mj']:>12.1f}{row['power_median_w']:>10.2f}"
              f"{row['efficiency_median_mflops_per_sw']:>12.0f}")

    slow = np.mean(ecdfs["A20"].values) / np.mean(ecdfs["S21"].values)
    print()
    print(f"The low-tier A20 is {slow:.1f}x slower than the S21 across the model set "
          "(the paper reports 3.4x).")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
