"""Quickstart: crawl a synthetic Play Store snapshot and characterise its DNNs.

Runs the full gaugeNN pipeline end to end on a small synthetic store (3% of
the paper's dataset size so it finishes in a few seconds), then prints the
headline numbers of the paper's Table 2 plus the framework and task mix.

    python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys

from repro import GaugeNN
from repro.android import AppGenerator, GeneratorConfig, PlayStore
from repro.core import reports


def main(scale: float = 0.03) -> None:
    print(f"Generating a synthetic Google Play snapshot at scale {scale} ...")
    snapshot = AppGenerator(GeneratorConfig.snapshot_2021(scale=scale)).generate()
    store = PlayStore([snapshot])

    print("Running gaugeNN: crawl -> download -> extract -> validate -> analyse ...")
    analysis = GaugeNN(store).analyze_snapshot("2021")

    row = reports.dataset_table(analysis)
    print()
    print("=== Dataset (Table 2 shape) ===")
    print(f"Total apps crawled   : {row.total_apps}")
    print(f"Apps with frameworks : {row.apps_with_frameworks} ({row.apps_with_frameworks_pct:.1f}%)")
    print(f"Apps with models     : {row.apps_with_models} ({row.apps_with_models_pct:.1f}%)")
    print(f"Total models         : {row.total_models}")
    print(f"Unique models        : {row.unique_models} ({row.unique_models_pct:.1f}%)")

    print()
    print("=== Models per framework (Fig. 4 totals) ===")
    for framework, count in sorted(analysis.models_by_framework().items(),
                                   key=lambda item: -item[1]):
        print(f"{framework:<8} {count}")

    print()
    print("=== Top tasks (Table 3) ===")
    for task, count in sorted(analysis.models_by_task().items(), key=lambda i: -i[1])[:8]:
        print(f"{task:<24} {count}")

    print()
    print("=== Cloud ML API usage (Fig. 15) ===")
    cloud_apps = analysis.apps_using_cloud()
    print(f"Apps invoking cloud ML APIs: {len(cloud_apps)}")
    for api, entry in list(reports.cloud_api_usage(analysis).items())[:5]:
        print(f"{api:<35} {entry['provider']:<7} {entry['apps']} apps")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.03)
