"""Explore deployment optimisations for a single model (Sec. 6 of the paper).

Takes an off-the-shelf detector and reports what each knob available to a
mobile developer buys on a Snapdragon 845 board: backend choice (CPU, XNNPACK,
NNAPI, GPU, SNPE CPU/GPU/DSP), thread count / affinity, batch size and
post-training quantisation.

    python examples/optimization_sweep.py
"""

from __future__ import annotations

from repro.devices import ThreadConfig, device_by_name
from repro.dnn.quantization import QuantizationScheme, quantize
from repro.dnn.zoo import fssd
from repro.runtime import Backend, Executor, UnsupportedModelError


def main() -> None:
    device = device_by_name("Q845")
    executor = Executor(device, seed=0)
    model = fssd(resolution=300)
    print(f"Model: {model.name}  ({model.total_flops() / 1e9:.2f} GFLOPs, "
          f"{model.total_parameters() / 1e6:.1f}M parameters)")
    print(f"Device: {device.name} ({device.soc.name})")

    print()
    print("=== Backends (Figs. 13-14) ===")
    baseline = executor.run(model, Backend.CPU)
    print(f"{'backend':<10}{'latency ms':>12}{'energy mJ':>12}{'speedup':>9}{'efficiency':>12}")
    for backend in Backend:
        try:
            result = executor.run(model, backend)
        except UnsupportedModelError as error:
            print(f"{backend.value:<10}  unsupported ({error})")
            continue
        speedup = baseline.latency_ms / result.latency_ms
        efficiency = result.efficiency_mflops_per_sw / baseline.efficiency_mflops_per_sw
        print(f"{backend.value:<10}{result.latency_ms:>12.1f}{result.energy_mj:>12.1f}"
              f"{speedup:>8.2f}x{efficiency:>11.2f}x")

    print()
    print("=== Thread count and affinity (Fig. 12) ===")
    configs = [ThreadConfig(t) for t in (1, 2, 4, 8)] + [ThreadConfig(4, 2), ThreadConfig(4, 4)]
    for config in configs:
        result = executor.run(model, Backend.CPU, threads=config)
        print(f"threads={config.label:<5} latency {result.latency_ms:7.1f} ms  "
              f"throughput {result.throughput_ips:6.1f} inf/s")

    print()
    print("=== Batch size (Fig. 11) ===")
    for batch in (1, 2, 5, 10, 25):
        result = executor.run(model, Backend.CPU, batch_size=batch)
        print(f"batch={batch:<3} latency {result.latency_ms:8.1f} ms  "
              f"throughput {result.throughput_ips:6.1f} samples/s")

    print()
    print("=== Quantisation (Sec. 6.1) on the DSP ===")
    quantized = quantize(model, QuantizationScheme.FULL_INT8)
    cpu_fp32 = executor.run(model, Backend.CPU)
    dsp_int8 = executor.run(quantized, Backend.SNPE_DSP)
    print(f"float32 on CPU : {cpu_fp32.latency_ms:7.1f} ms, {cpu_fp32.energy_mj:7.1f} mJ")
    print(f"int8 on DSP    : {dsp_int8.latency_ms:7.1f} ms, {dsp_int8.energy_mj:7.1f} mJ "
          f"({cpu_fp32.latency_ms / dsp_int8.latency_ms:.1f}x faster, "
          f"{cpu_fp32.energy_mj / dsp_int8.energy_mj:.1f}x less energy)")


if __name__ == "__main__":
    main()
