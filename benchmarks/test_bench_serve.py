"""Serve-layer benchmark: live bit-identity, cache speedup, tail latency.

Three claims of the PR 9 tentpole, measured and recorded in
``BENCH_serve.json``:

(a) **Bit-identity under concurrent ingest** — report tables sampled over
    HTTP while a StoreWriter commits into the served directory replay
    bit-identically (JSON text equality) from a pinned
    ``open_snapshot(generation=...)`` afterwards.  Correctness gate:
    always enforced.
(b) **Cache speedup** — repeated-query throughput through the serve cache
    against the uncached path, gated at >= 5x
    (:func:`conftest.assert_speedup`, so ``REPRO_BENCH_NO_GATE=1``
    records without failing); plus the segment tier's incremental
    advantage when the generation keeps advancing (recorded).
(c) **Tail latency** — request latency percentiles with 8 concurrent
    keep-alive HTTP readers against the live server (recorded, with a
    generous sanity ceiling so a hung server fails loudly).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_SCALE, assert_speedup, timed, write_baseline
from repro.campaign import BackgroundIngest, ingest_fleet_batches
from repro.serve import (QueryService, QuerySpec, Router, ServeApp,
                         ServeCache, ServerThread, SnapshotManager,
                         report_payload)
from repro.store import ResultStore

#: Rows per committed batch, scaled with the bench snapshot size.
ROWS_PER_BATCH = max(int(20_000 * BENCH_SCALE), 500)
SEED_BATCHES = 6
ROWS_PER_SEGMENT = max(ROWS_PER_BATCH // 4, 128)

_BENCH_QUERY = ("/v1/query?kind=fleet_events&where=target=device"
                "&group_by=device_name,backend&agg=latency_ms:mean,p99"
                "&agg=energy_mj:sum")


@pytest.fixture(scope="module")
def serve_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench_serve") / "serve.store"
    store = ingest_fleet_batches(root, SEED_BATCHES,
                                 rows_per_batch=ROWS_PER_BATCH,
                                 rows_per_segment=ROWS_PER_SEGMENT)
    return store


@pytest.fixture(scope="module")
def payload() -> dict:
    return {"benchmark": "serve", "scale": BENCH_SCALE,
            "rows_per_batch": ROWS_PER_BATCH}


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


class TestServeBench:
    def test_a_bit_identity_during_live_ingest(self, serve_store, payload,
                                               tmp_path):
        root = tmp_path / "live.store"
        ingest_fleet_batches(root, 1, rows_per_batch=ROWS_PER_BATCH,
                             rows_per_segment=ROWS_PER_SEGMENT)
        app = ServeApp(root, port=0, refresh_s=0.02)
        sampled = []
        with ServerThread(app) as server:
            ingest = BackgroundIngest(root, num_batches=6,
                                      rows_per_batch=ROWS_PER_BATCH,
                                      rows_per_segment=ROWS_PER_SEGMENT,
                                      interval_s=0.01)
            ingest.start()
            while ingest.is_alive():
                sampled.append(_get(server.url + "/v1/report/tail_latency"))
                sampled.append(_get(server.url + _BENCH_QUERY))
            ingest.finish()
            sampled.append(_get(server.url + "/v1/report/tail_latency"))

        # Offline replay: every sampled response must be byte-equal to the
        # pinned-generation recomputation, whatever generation it caught.
        store = ResultStore(root)
        spec = QuerySpec.from_params(
            [("kind", "fleet_events"), ("where", "target=device"),
             ("group_by", "device_name,backend"),
             ("agg", "latency_ms:mean,p99"), ("agg", "energy_mj:sum")])
        verified = 0
        generations = set()
        for response in sampled:
            snapshot = store.open_snapshot(generation=response["generation"])
            generations.add(response["generation"])
            if "table" in response:
                offline = report_payload(snapshot, "tail_latency")
                assert json.dumps(offline, sort_keys=True) == \
                    json.dumps(response, sort_keys=True)
            else:
                query = snapshot.query(spec.kind)
                spec.apply(query)
                assert json.dumps(query.aggregate(), sort_keys=True) == \
                    json.dumps(response["rows"], sort_keys=True)
            verified += 1
        assert verified == len(sampled) and verified >= 3
        payload["identity"] = {"sampled": verified,
                               "generations": sorted(generations)}

    def test_b_cache_speedup(self, serve_store, payload):
        spec = QuerySpec.from_params(
            [("kind", "fleet_events"), ("where", "target=device"),
             ("group_by", "device_name,backend"),
             ("agg", "latency_ms:mean,p99"), ("agg", "energy_mj:sum")])
        repeats = 40

        def run_repeats(service):
            for _ in range(repeats):
                service.query(spec)

        cold_manager = SnapshotManager(ResultStore(serve_store.root))
        cold = QueryService(cold_manager, cache=None)
        cold.query(spec)  # column caches warm for both paths
        _, cold_s = timed(run_repeats, cold)

        cache = ServeCache()
        hot_manager = SnapshotManager(ResultStore(serve_store.root),
                                      cache=cache)
        hot = QueryService(hot_manager, cache=cache)
        hot.query(spec)  # populate segment + result tiers
        _, hot_s = timed(run_repeats, hot)

        speedup = cold_s / hot_s
        stats = cache.stats()
        assert stats["result"]["hits"] >= repeats
        payload["throughput"] = {
            "repeats": repeats,
            "uncached_s": cold_s,
            "cached_s": hot_s,
            "speedup": speedup,
            "uncached_qps": repeats / cold_s,
            "cached_qps": repeats / hot_s,
        }
        assert_speedup(speedup, 5.0, "serve cached repeated-query")

        # Segment tier under generation churn: after every commit the result
        # tier is cold, so re-querying re-evaluates — uncached over every
        # segment, cached only over the newly committed one.  Commits and
        # polls happen outside the timed region.
        def advance(offset: int) -> None:
            from repro.campaign import synthetic_fleet_batch

            writer_store = ResultStore(serve_store.root)
            with writer_store.writer(
                    rows_per_segment=ROWS_PER_SEGMENT) as writer:
                writer.append_batch(
                    "fleet_events",
                    synthetic_fleet_batch(100 + offset, ROWS_PER_BATCH // 4))
                writer.flush()
            hot_manager.poll()
            cold_manager.poll()

        churn = 4
        cached_churn_s = 0.0
        uncached_churn_s = 0.0
        last = None
        for index in range(churn):
            advance(index)
            last, hot_s_i = timed(hot.query, spec)
            _, cold_s_i = timed(cold.query, spec)
            cached_churn_s += hot_s_i
            uncached_churn_s += cold_s_i
        assert last is not None and last["stats"]["segments_cached"] > 0
        payload["incremental"] = {
            "commits": churn,
            "cached_s": cached_churn_s,
            "uncached_s": uncached_churn_s,
            "speedup": uncached_churn_s / cached_churn_s,
        }

    def test_c_tail_latency_under_concurrency(self, serve_store, payload):
        readers = 8
        requests_each = 25
        app = ServeApp(serve_store.root, port=0, refresh_s=0.5)
        with ServerThread(app) as server:
            host, port = server.url.removeprefix("http://").split(":")
            _get(server.url + "/v1/report/tail_latency")  # warm the caches
            _get(server.url + _BENCH_QUERY)
            latencies_ms: list[float] = []
            lock = threading.Lock()
            errors: list[BaseException] = []

            def reader(index: int) -> None:
                try:
                    connection = http.client.HTTPConnection(
                        host, int(port), timeout=30)
                    mine = []
                    for request_index in range(requests_each):
                        target = (_BENCH_QUERY if (index + request_index) % 2
                                  else "/v1/report/tail_latency")
                        started = time.perf_counter()
                        connection.request("GET", target)
                        response = connection.getresponse()
                        body = response.read()
                        mine.append(
                            (time.perf_counter() - started) * 1e3)
                        assert response.status == 200 and body
                    connection.close()
                    with lock:
                        latencies_ms.extend(mine)
                except BaseException as exc:
                    with lock:
                        errors.append(exc)

            threads = [threading.Thread(target=reader, args=(index,))
                       for index in range(readers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not errors, errors[:1]
        assert len(latencies_ms) == readers * requests_each
        percentiles = np.percentile(latencies_ms, (50, 90, 99))
        payload["latency"] = {
            "readers": readers,
            "requests": len(latencies_ms),
            "p50_ms": float(percentiles[0]),
            "p90_ms": float(percentiles[1]),
            "p99_ms": float(percentiles[2]),
            "max_ms": float(np.max(latencies_ms)),
        }
        # Sanity ceiling, not a perf gate: a wedged server fails loudly.
        assert percentiles[2] < 5_000.0

    def test_write_baseline(self, payload):
        for section in ("identity", "throughput", "incremental", "latency"):
            assert section in payload, f"missing {section} (earlier test failed?)"
        path = write_baseline(
            Path(__file__).resolve().parent.parent / "BENCH_serve.json",
            payload)
        print(f"\nwrote {path}")
        print(f"cached repeated-query speedup: "
              f"{payload['throughput']['speedup']:.1f}x, "
              f"incremental: {payload['incremental']['speedup']:.1f}x, "
              f"p99 @ {payload['latency']['readers']} readers: "
              f"{payload['latency']['p99_ms']:.1f} ms")
