"""Figs. 13 and 14: CPU-runtime and hardware-target optimisations on the Q845 board."""

import numpy as np
from conftest import write_result

from repro.devices.device import device_by_name
from repro.runtime import Backend, Executor


def _relative_to_cpu(executor, models, backends):
    cpu_results = {r.model_name: r for r in executor.run_many(models, Backend.CPU,
                                                              num_inferences=3)}
    table = {}
    for backend in backends:
        results = executor.run_many(models, backend, num_inferences=3)
        paired = [(cpu_results[r.model_name], r) for r in results
                  if r.model_name in cpu_results]
        if not paired:
            continue
        speedups = [cpu.latency_ms / other.latency_ms for cpu, other in paired]
        efficiency = [other.efficiency_mflops_per_sw / cpu.efficiency_mflops_per_sw
                      for cpu, other in paired]
        table[backend] = {
            "models": len(paired),
            "speedup": float(np.mean(speedups)),
            "efficiency": float(np.mean(efficiency)),
            "median_latency_ms": float(np.median([r.latency_ms for _, r in paired])),
        }
    return table


def test_fig13_cpu_runtimes(benchmark, unique_graphs, q845=None):
    """Fig. 13: plain CPU vs XNNPACK vs NNAPI on TFLite models."""
    executor = Executor(device_by_name("Q845"), seed=0)
    models = [g for g in unique_graphs if g.framework == "tflite"]

    table = benchmark.pedantic(
        _relative_to_cpu, args=(executor, models, (Backend.XNNPACK, Backend.NNAPI)),
        iterations=1, rounds=1)

    lines = ["Fig. 13: TFLite CPU runtimes on Q845 (relative to plain CPU)",
             "backend   models  speedup  relative_efficiency"]
    for backend, row in table.items():
        lines.append(f"{backend.value:<9} {row['models']:<7} {row['speedup']:.2f}x   "
                     f"{row['efficiency']:.2f}x")
    lines.append("")
    lines.append("paper: XNNPACK 1.03x faster / 1.13x more efficient; "
                 "NNAPI 0.49x speed / 1.66x less efficient")
    write_result("fig13_cpu_runtimes", lines)

    assert table[Backend.XNNPACK]["speedup"] > 1.0
    assert table[Backend.XNNPACK]["efficiency"] > 1.0
    assert table[Backend.NNAPI]["speedup"] < 1.0
    assert table[Backend.NNAPI]["efficiency"] < 1.0


def test_fig14_snpe_hardware_targets(benchmark, unique_graphs):
    """Fig. 14: SNPE CPU/GPU/DSP vs plain CPU and GPU on the Q845 board."""
    executor = Executor(device_by_name("Q845"), seed=0)
    models = [g for g in unique_graphs if g.framework in ("tflite", "caffe")]
    backends = (Backend.GPU, Backend.SNPE_CPU, Backend.SNPE_GPU, Backend.SNPE_DSP)

    table = benchmark.pedantic(_relative_to_cpu, args=(executor, models, backends),
                               iterations=1, rounds=1)

    lines = ["Fig. 14: SNPE hardware targets on Q845 (relative to plain CPU)",
             "backend    models  speedup  relative_efficiency"]
    for backend, row in table.items():
        lines.append(f"{backend.value:<10} {row['models']:<7} {row['speedup']:.2f}x   "
                     f"{row['efficiency']:.2f}x")
    gpu_speed = table[Backend.GPU]["speedup"]
    lines.append("")
    lines.append(f"SNPE DSP vs plain GPU speedup: "
                 f"{table[Backend.SNPE_DSP]['speedup'] / gpu_speed:.2f}x (paper: 2.97x)")
    lines.append("paper: SNPE DSP 5.72x faster / 20.3x more efficient than CPU; "
                 "SNPE GPU 2.28x / 8.39x")
    write_result("fig14_snpe_targets", lines)

    # Orderings the paper reports: DSP > SNPE GPU > GPU > CPU in both speed and
    # efficiency; SNPE CPU is no better than the plain CPU path.
    assert table[Backend.SNPE_DSP]["speedup"] > table[Backend.SNPE_GPU]["speedup"] \
        > table[Backend.GPU]["speedup"] > 1.0
    assert table[Backend.SNPE_DSP]["efficiency"] > table[Backend.SNPE_GPU]["efficiency"] \
        > 1.0
    assert table[Backend.SNPE_CPU]["speedup"] <= 1.05
