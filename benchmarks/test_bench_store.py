"""Perf baseline for the persistent results store (`repro.store`).

Measures, on a scale-``REPRO_BENCH_SCALE`` zoo sweep over the whole fleet:

* **ingest throughput** — streaming the sweep through
  :meth:`SweepRunner.run_to_store` versus the pure in-memory run, i.e. what
  durability costs per row;
* **query-vs-recompute** — producing the paper's figure tables (latency
  ECDFs, energy distributions) from the persisted store versus the naive
  baseline that recomputes the result list from scratch (re-runs the sweep)
  and rebuilds the tables, both on a cold open and on a repeated (warm,
  incremental) report;
* **predicate pushdown** — how many segments a selective query touches.

The acceptance gates mirror ``test_bench_sweep.py``: the tables served from
the store must equal the in-memory tables **bit-for-bit** for the same
seeds, and the repeated query path must beat naive recomputation by at least
``MIN_QUERY_SPEEDUP``x.  Results land in ``BENCH_store.json`` at the repo
root, next to ``BENCH_sweep.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest
from conftest import (BENCH_SCALE, assert_speedup,
                      write_baseline, write_result)

from repro.core import reports
from repro.devices.device import DEVICE_FLEET
from repro.runtime import Backend, SweepRunner, SweepSpec
from repro.store import ReportServer, ResultStore

#: Where the machine-readable baseline lands (repo root, BENCH_* trajectory).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

#: Minimum repeated-report speedup of the store query path over naive
#: list recomputation (acceptance criterion of the store subsystem).
MIN_QUERY_SPEEDUP = 5.0

#: Segment size used for the campaign (several segments at bench scale, so
#: pushdown and incremental loading actually have shards to work with).
ROWS_PER_SEGMENT = 256

#: Module-level accumulator; the final test writes it out as JSON.
RESULTS: dict = {}


@pytest.fixture(scope="module")
def sweep_spec(unique_graphs):
    """The zoo-wide fleet sweep whose results get persisted."""
    return SweepSpec(
        devices=tuple(DEVICE_FLEET),
        graphs=tuple(unique_graphs),
        backends=(Backend.CPU, Backend.XNNPACK),
        num_inferences=3,
        seed=0,
    )


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    return tmp_path_factory.mktemp("bench_store") / "campaign.store"


@pytest.fixture(scope="module")
def in_memory_results(sweep_spec):
    return SweepRunner(sweep_spec, max_workers=1).run()


def _figure_tables(results_by_device):
    """The two benchmark-derived figure tables (Figs. 9 and 10)."""
    return (reports.latency_ecdf_by_device(results_by_device),
            reports.energy_distributions(results_by_device))


def test_bench_ingest_throughput(sweep_spec, store_path, in_memory_results):
    """Streaming the sweep into the store vs. the pure in-memory run."""
    run_start = time.perf_counter()
    SweepRunner(sweep_spec, max_workers=1).run(collect=False)
    run_seconds = time.perf_counter() - run_start

    ingest_start = time.perf_counter()
    rows = SweepRunner(sweep_spec, max_workers=1).run_to_store(
        store_path, rows_per_segment=ROWS_PER_SEGMENT)
    ingest_seconds = time.perf_counter() - ingest_start

    store = ResultStore(store_path)
    assert rows == len(in_memory_results)
    assert store.num_rows("executions") == rows
    assert store.verify_integrity() == len(store.segments)

    RESULTS["ingest"] = {
        "rows": rows,
        "segments": len(store.segments),
        "rows_per_segment": ROWS_PER_SEGMENT,
        "sweep_only_seconds": run_seconds,
        "sweep_plus_ingest_seconds": ingest_seconds,
        "ingest_overhead_seconds": max(0.0, ingest_seconds - run_seconds),
        "rows_per_second": rows / ingest_seconds,
    }


def test_bench_store_tables_bit_identical(store_path, in_memory_results):
    """Acceptance: store-served figure tables == in-memory tables, bit for bit."""
    by_device = SweepRunner.results_by_device(in_memory_results)
    memory_ecdf, memory_energy = _figure_tables(by_device)

    store = ResultStore(store_path)
    server = ReportServer(store)
    store_ecdf = server.latency_ecdf_by_device()
    store_energy = server.energy_distributions()

    assert store_ecdf == memory_ecdf  # Ecdf equality is exact tuple equality
    assert store_energy == memory_energy
    # The persisted rows themselves round-trip exactly as well.
    assert store.query("executions").objects() == in_memory_results
    RESULTS["fidelity"] = {
        "rows_round_trip_exact": True,
        "latency_ecdf_bit_identical": True,
        "energy_distributions_bit_identical": True,
    }


def test_bench_query_vs_recompute(benchmark, sweep_spec, store_path,
                                  in_memory_results):
    """Repeated figure-table generation: store query path vs. naive recompute."""
    def naive_tables():
        # Seed behaviour: results lived in a transient list, so every report
        # regeneration re-ran the sweep and rebuilt the tables from scratch.
        results = SweepRunner(sweep_spec, max_workers=1).run()
        return _figure_tables(SweepRunner.results_by_device(results))

    def cold_store_tables():
        server = ReportServer(ResultStore(store_path))
        return server.latency_ecdf_by_device(), server.energy_distributions()

    naive_start = time.perf_counter()
    naive = naive_tables()
    naive_seconds = time.perf_counter() - naive_start

    cold_start = time.perf_counter()
    cold = cold_store_tables()
    cold_seconds = time.perf_counter() - cold_start

    # Warm path: the server already holds every segment extract in memory —
    # the regime of repeated report generation over a long campaign.
    server = ReportServer(ResultStore(store_path))
    server.refresh()
    warm_start = time.perf_counter()
    warm = server.latency_ecdf_by_device(), server.energy_distributions()
    warm_seconds = time.perf_counter() - warm_start

    assert cold == naive
    assert warm == naive
    cold_speedup = naive_seconds / cold_seconds
    warm_speedup = naive_seconds / warm_seconds
    assert_speedup(warm_speedup, MIN_QUERY_SPEEDUP, "repeated report")

    RESULTS["query_vs_recompute"] = {
        "rows": len(in_memory_results),
        "naive_recompute_seconds": naive_seconds,
        "store_cold_open_seconds": cold_seconds,
        "store_repeated_seconds": warm_seconds,
        "cold_speedup": cold_speedup,
        "repeated_speedup": warm_speedup,
        "tables_identical": True,
    }
    benchmark(cold_store_tables)


def test_bench_predicate_pushdown(store_path):
    """A selective query must prune most segments from its scan."""
    store = ResultStore(store_path)
    device = DEVICE_FLEET[0].name
    query = store.query("executions").where(device_name=device)
    count = query.count()
    assert count > 0
    RESULTS["pushdown"] = {
        "filter": f"device_name == {device}",
        "rows_matched": count,
        "segments_total": query.stats.segments_total,
        "segments_skipped": query.stats.segments_skipped,
        "segments_scanned": query.stats.segments_scanned,
    }


def test_write_store_baseline():
    """Persist the measured baseline to BENCH_store.json and a results table."""
    if not RESULTS:  # pragma: no cover - only when run in isolation
        pytest.skip("timing tests of this module did not run")
    payload = {
        "benchmark": "store_perf_baseline",
        "scale": BENCH_SCALE,
        "min_required_query_speedup": MIN_QUERY_SPEEDUP,
        **RESULTS,
    }
    write_baseline(BASELINE_PATH, payload)

    lines = [f"Store perf baseline (scale {BENCH_SCALE}):"]
    for name, entry in RESULTS.items():
        fields = ", ".join(f"{key}={value:.4g}" if isinstance(value, float)
                           else f"{key}={value}" for key, value in entry.items())
        lines.append(f"{name}: {fields}")
    write_result("bench_store_baseline", lines)

    assert_speedup(RESULTS["query_vs_recompute"]["repeated_speedup"],
                   MIN_QUERY_SPEEDUP, "repeated report")
