"""Perf baseline for columnar store ingestion (format v3).

The fleet and cloud simulators produce events as NumPy arrays at millions of
events per second, but before this gate existed every persisted run was
throttled by the row path: array -> per-row dict -> per-row ``json.dumps``
-> re-pivot into column arrays at seal time.  The batch-native path
(:meth:`StoreWriter.append_batch` sealing packed columnar segments) keeps
the arrays columnar end to end.  This module measures and enforces:

* **store-layer speedup** — ingesting the same pre-simulated event stream
  through ``append_batch`` must beat per-row ``append_row`` ingestion by
  >= 10x, with the two stores' full column arrays **bit-identical**;
* **end-to-end speedup** — ``FleetSimulator.run_to_store`` (simulate +
  batch-ingest) must beat the pre-PR simulate + row-ingest loop >= 5x;
* **mixed-format identity** — the acceptance gate: queries and fleet report
  tables over a store mixing v2 JSONL and v3 columnar segments are
  bit-identical to a pure-JSONL store, for any worker count, chunk size or
  pool kind, and survive compaction unchanged.

Results land in ``BENCH_ingest.json`` at the repo root, next to the other
``BENCH_*.json`` baselines.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest
from conftest import (BENCH_SCALE, assert_speedup,
                      write_baseline, write_result)

from repro.core.pipeline import GaugeNN
from repro.fleet import FleetSimulator, FleetSpec, zoo_population
from repro.fleet.reports import (battery_drain_ecdf, offload_summary,
                                 tail_latency_table)
from repro.store import ResultStore, compact_store, kind_for

#: Where the machine-readable baseline lands (repo root, BENCH_* trajectory).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"

#: Acceptance: minimum batch-vs-row speedup of the store layer alone.
MIN_COLUMNAR_SPEEDUP = 10.0

#: Acceptance: minimum end-to-end run_to_store speedup over the pre-PR path.
MIN_END_TO_END_SPEEDUP = 5.0

#: Population size / virtual horizon of the benchmark fleet (matches
#: BENCH_fleet so the event counts line up across baselines).
NUM_USERS = 150
HORIZON_S = 12 * 3600.0

#: Store segment size used by every ingestion in this module.
ROWS_PER_SEGMENT = 16384

#: Module-level accumulator; the final test writes it out as JSON.
RESULTS: dict = {}


@pytest.fixture(scope="module")
def fleet_spec(analysis_2021):
    """Snapshot models (where scenario-compatible) plus the zoo reference set."""
    pairs = tuple(GaugeNN.graphs_with_tasks(analysis_2021)) + zoo_population()
    return FleetSpec(graphs_with_tasks=pairs, num_users=NUM_USERS,
                     horizon_s=HORIZON_S, seed=0)


@pytest.fixture(scope="module")
def traces(fleet_spec):
    """The benchmark fleet's full trace set, simulated once."""
    return FleetSimulator(fleet_spec, max_workers=2).collect()


def _ingest_rows(traces, store_path) -> tuple[ResultStore, float, int]:
    """The pre-PR row path: per-event dicts through ``append_row``."""
    store = ResultStore(store_path)
    kind = kind_for("fleet_events")
    start = time.perf_counter()
    with store.writer(rows_per_segment=ROWS_PER_SEGMENT) as writer:
        for trace in traces:
            for row in trace.rows():
                writer.append_row(kind, row)
    return store, time.perf_counter() - start, writer.rows_committed


def _ingest_batches(traces, store_path) -> tuple[ResultStore, float, int]:
    """The batch-native path: column arrays through ``append_batch``."""
    store = ResultStore(store_path)
    kind = kind_for("fleet_events")
    start = time.perf_counter()
    with store.writer(rows_per_segment=ROWS_PER_SEGMENT) as writer:
        for trace in traces:
            writer.append_batch(kind, trace.column_batch())
    return store, time.perf_counter() - start, writer.rows_committed


@pytest.fixture(scope="module")
def row_store(traces, tmp_path_factory):
    """Pure-JSONL reference store (also the row-path timing measurement)."""
    path = tmp_path_factory.mktemp("bench_ingest") / "rows.store"
    store, seconds, rows = _ingest_rows(traces, path)
    RESULTS["row_ingest"] = {
        "rows": rows,
        "segments": len(store.segments),
        "seconds": seconds,
        "rows_per_second": rows / seconds,
    }
    return store


@pytest.fixture(scope="module")
def columnar_store(traces, tmp_path_factory):
    """Columnar store of the same events (the batch-path measurement)."""
    path = tmp_path_factory.mktemp("bench_ingest") / "columnar.store"
    store, seconds, rows = _ingest_batches(traces, path)
    RESULTS["columnar_ingest"] = {
        "rows": rows,
        "segments": len(store.segments),
        "seconds": seconds,
        "rows_per_second": rows / seconds,
    }
    return store


def _all_columns(store) -> dict[str, np.ndarray]:
    """Every fleet_events column of a store, concatenated in scan order."""
    return store.query("fleet_events").arrays()


def test_bench_columnar_vs_row_ingest(traces, row_store, columnar_store):
    """Acceptance: batch ingestion >= 10x row ingestion, bit-identical."""
    total = sum(t.num_events for t in traces)
    assert total >= 100_000, "benchmark fleet too small to be meaningful"
    assert RESULTS["row_ingest"]["rows"] == total
    assert RESULTS["columnar_ingest"]["rows"] == total
    assert row_store.verify_integrity() == len(row_store.segments)
    assert columnar_store.verify_integrity() == len(columnar_store.segments)
    assert {m.format for m in row_store.segments} == {"jsonl"}
    assert {m.format for m in columnar_store.segments} == {"columnar"}

    rows_arrays = _all_columns(row_store)
    col_arrays = _all_columns(columnar_store)
    for name, array in rows_arrays.items():
        assert np.array_equal(array, col_arrays[name]), \
            f"column {name} differs between formats"
        assert array.dtype == col_arrays[name].dtype

    speedup = RESULTS["row_ingest"]["seconds"] \
        / RESULTS["columnar_ingest"]["seconds"]
    RESULTS["store_layer"] = {
        "rows": total,
        "speedup": speedup,
        "bit_identical_columns": True,
    }
    assert_speedup(speedup, MIN_COLUMNAR_SPEEDUP, "columnar store ingest")


def test_bench_fleet_end_to_end(fleet_spec, traces, tmp_path_factory):
    """Acceptance: run_to_store (simulate + batch-ingest) >= 5x the pre-PR loop."""
    base = tmp_path_factory.mktemp("bench_ingest_e2e")
    total = sum(t.num_events for t in traces)

    # Pre-PR end-to-end: simulate and push per-event dicts through append_row.
    legacy_store = ResultStore(base / "legacy.store")
    kind = kind_for("fleet_events")
    start = time.perf_counter()
    simulator = FleetSimulator(fleet_spec, max_workers=2)
    with legacy_store.writer(rows_per_segment=ROWS_PER_SEGMENT) as writer:
        for trace in simulator.iter_traces():
            for row in trace.rows():
                writer.append_row(kind, row)
    legacy_seconds = time.perf_counter() - start
    assert writer.rows_committed == total

    start = time.perf_counter()
    rows = FleetSimulator(fleet_spec, max_workers=2).run_to_store(
        base / "columnar.store", rows_per_segment=ROWS_PER_SEGMENT)
    columnar_seconds = time.perf_counter() - start
    assert rows == total

    speedup = legacy_seconds / columnar_seconds
    RESULTS["end_to_end"] = {
        "events": total,
        "legacy_seconds": legacy_seconds,
        "legacy_events_per_second": total / legacy_seconds,
        "columnar_seconds": columnar_seconds,
        "columnar_events_per_second": total / columnar_seconds,
        "speedup": speedup,
    }
    assert_speedup(speedup, MIN_END_TO_END_SPEEDUP, "fleet run_to_store")


def test_bench_mixed_store_identity(fleet_spec, traces, row_store,
                                    tmp_path_factory):
    """Acceptance: mixed v2+v3 stores query bit-identically to pure JSONL,
    for any worker count, chunk size or pool kind, before and after
    compaction."""
    base = tmp_path_factory.mktemp("bench_ingest_mixed")
    kind = kind_for("fleet_events")

    # Mixed store: alternate row-mode and batch-mode ingestion per user, so
    # JSONL and columnar segments interleave within one kind.
    mixed = ResultStore(base / "mixed.store")
    with mixed.writer(rows_per_segment=ROWS_PER_SEGMENT) as writer:
        for trace in traces:
            if trace.user.user_id % 2:
                for row in trace.rows():
                    writer.append_row(kind, row)
            else:
                writer.append_batch(kind, trace.column_batch())
    formats = {m.format for m in mixed.segments}
    assert formats == {"jsonl", "columnar"}, "store is not actually mixed"

    def report_tables(store):
        return (
            tail_latency_table(store, group_by=("device_name", "scenario")),
            battery_drain_ecdf(store),
            offload_summary(store),
            (store.query("fleet_events")
             .group_by("scenario", "target")
             .agg(n=("latency_ms", "count"),
                  mean_ms=("latency_ms", "mean"),
                  p999=("latency_ms", "p999"),
                  energy=("energy_mj", "sum"))
             .aggregate()),
        )

    reference_tables = report_tables(row_store)
    reference_arrays = _all_columns(row_store)

    def assert_identical(store, label):
        assert report_tables(store) == reference_tables, \
            f"{label}: report tables differ from the pure-JSONL store"
        arrays = _all_columns(store)
        for name, array in reference_arrays.items():
            assert np.array_equal(array, arrays[name]), \
                f"{label}: column {name} differs"

    assert_identical(mixed, "mixed")

    # Fan-out variants of the production path: every (workers, chunk, pool)
    # combination must land the identical store.
    variants = {
        "threads_4": dict(max_workers=4),
        "threads_3_chunked": dict(max_workers=3, chunk_size=7),
        "processes_2": dict(max_workers=2, use_processes=True),
    }
    for name, kwargs in variants.items():
        store_path = base / f"{name}.store"
        FleetSimulator(fleet_spec, **kwargs).run_to_store(
            store_path, rows_per_segment=ROWS_PER_SEGMENT)
        assert_identical(ResultStore(store_path), name)

    # Compaction merges the mixed segments (converging to columnar) without
    # perturbing a single value.
    stats = compact_store(mixed)
    assert "fleet_events" in stats.kinds_compacted
    assert {m.format for m in mixed.segments_for("fleet_events")} \
        == {"columnar"}
    assert_identical(ResultStore(mixed.root), "compacted mixed")

    RESULTS["mixed_identity"] = {
        "events": int(reference_arrays["latency_ms"].size),
        "bit_identical": True,
        "variants_checked": sorted(variants) + ["mixed", "compacted"],
    }


def test_write_ingest_baseline():
    """Persist the measured baseline to BENCH_ingest.json and a results table."""
    if not RESULTS:  # pragma: no cover - only when run in isolation
        pytest.skip("timing tests of this module did not run")
    payload = {
        "benchmark": "ingest_perf_baseline",
        "scale": BENCH_SCALE,
        "min_required_columnar_speedup": MIN_COLUMNAR_SPEEDUP,
        "min_required_end_to_end_speedup": MIN_END_TO_END_SPEEDUP,
        **RESULTS,
    }
    write_baseline(BASELINE_PATH, payload)

    lines = [f"Columnar ingest perf baseline (scale {BENCH_SCALE}):"]
    for name, entry in RESULTS.items():
        fields = ", ".join(f"{key}={value:.4g}" if isinstance(value, float)
                           else f"{key}={value}" for key, value in entry.items())
        lines.append(f"{name}: {fields}")
    write_result("bench_ingest_baseline", lines)

    assert RESULTS["store_layer"]["bit_identical_columns"]
    assert RESULTS["mixed_identity"]["bit_identical"]
    assert_speedup(RESULTS["store_layer"]["speedup"],
                   MIN_COLUMNAR_SPEEDUP, "columnar store ingest")
    assert_speedup(RESULTS["end_to_end"]["speedup"],
                   MIN_END_TO_END_SPEEDUP, "fleet run_to_store")
