"""Fig. 7: FLOPs and parameters per DNN task."""

from conftest import write_result

from repro.core import reports


def test_fig7_flops_and_parameters_per_task(benchmark, analysis_2021):
    """Fig. 7: per-task FLOP and parameter ranges of the traced models."""
    table = benchmark(reports.flops_and_parameters_by_task, analysis_2021)

    lines = ["Fig. 7: FLOPs and parameters per task (median [min, max])"]
    for task, row in table.items():
        lines.append(
            f"{task:<24} n={int(row['models']):<4} "
            f"FLOPs {row['flops_median']:.2e} [{row['flops_min']:.1e}, {row['flops_max']:.1e}]  "
            f"params {row['parameters_median']:.2e} "
            f"[{row['parameters_min']:.1e}, {row['parameters_max']:.1e}]"
        )
    write_result("fig7_flops_params", lines)

    all_flops = [row["flops_median"] for row in table.values()]
    all_params = [row["parameters_median"] for row in table.values()]
    # The paper observes ~4 orders of magnitude of variance across tasks.
    assert max(all_flops) / max(1.0, min(all_flops)) > 1e2
    assert max(all_params) / max(1.0, min(all_params)) > 1e1
    # Segmentation-style tasks are among the heaviest deployed vision models.
    heavy_tasks = list(table)[:6]
    assert any(task in heavy_tasks
               for task in ("semantic segmentation", "hair reconstruction", "style transfer",
                            "image classification", "photo beauty"))
