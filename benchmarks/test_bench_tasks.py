"""Table 3: DNN task classification of the models found in the wild."""

from conftest import write_result

from repro.core import reports


def test_table3_task_classification(benchmark, analysis_2021):
    """Table 3: model counts per task, grouped by input modality."""
    table = benchmark(reports.task_classification_table, analysis_2021)

    lines = ["Table 3: DNN task classification"]
    for modality, tasks in table.items():
        total = sum(tasks.values())
        lines.append(f"-- {modality} ({total} models)")
        for task, count in tasks.items():
            lines.append(f"   {task:<24} {count:>5} ({100.0 * count / total:.1f}%)")
    write_result("table3_tasks", lines)

    total_models = sum(count for tasks in table.values() for count in tasks.values())
    vision_models = sum(table.get("image", {}).values())
    # Vision dominates (the paper reports > 89% of identified models).
    assert vision_models / total_models > 0.8
    # Object detection is the single most common vision task.
    image_tasks = table.get("image", {})
    assert max(image_tasks, key=image_tasks.get) == "object detection"
