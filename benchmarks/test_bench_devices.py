"""Table 1: device fleet specifications and accelerator-trace statistics (Sec. 6.3)."""

from conftest import write_result

from repro.devices.device import DEVICE_FLEET, device_by_name


def test_table1_device_fleet(benchmark):
    """Table 1: the six benchmark devices with SoC, RAM and battery capacity."""
    fleet = benchmark(lambda: list(DEVICE_FLEET))

    lines = ["Table 1: device specifications",
             "device  model                 SoC               RAM  battery"]
    for device in fleet:
        battery = f"{device.battery_capacity_mah}mAh" if device.battery_capacity_mah else "N/A"
        lines.append(f"{device.name:<7} {device.model_code:<21} {device.soc.name:<17} "
                     f"{device.ram_gb}GB  {battery}")
    write_result("table1_devices", lines)

    assert len(fleet) == 6
    assert device_by_name("A20").soc.name == "Exynos 7884"
    assert device_by_name("Q888").soc.name == "Snapdragon 888"
    assert device_by_name("A70").battery_capacity_mah == 4500


def test_sec63_accelerator_traces(benchmark, analysis_2021):
    """Sec. 6.3: a minority of ML apps carry NNAPI traces; XNNPACK/SNPE are rare."""
    def count_traces():
        counts = {"nnapi": 0, "xnnpack": 0, "snpe": 0}
        ml_apps = [app for app in analysis_2021.apps if app.has_models]
        for app in ml_apps:
            for accelerator in app.accelerators:
                if accelerator in counts:
                    counts[accelerator] += 1
        return counts, len(ml_apps)

    counts, ml_app_count = benchmark(count_traces)

    lines = ["Sec. 6.3: hardware-specific acceleration traces in ML apps",
             f"ML apps analysed: {ml_app_count}"]
    for name, count in counts.items():
        share = 100.0 * count / max(1, ml_app_count)
        lines.append(f"{name:<8} {count} apps ({share:.1f}%)")
    lines.append("")
    lines.append("paper: 71 apps (23.8%) with NNAPI, 1 with XNNPACK, 3 with SNPE")
    write_result("sec63_accelerator_traces", lines)

    assert counts["nnapi"] > counts["snpe"] >= 0
    assert counts["nnapi"] / max(1, ml_app_count) < 0.6
