"""Fig. 11: inference throughput versus batch size across the three phones."""

import numpy as np
from conftest import write_result

from repro.devices.device import PHONES
from repro.devices.scheduler import ThreadConfig
from repro.runtime import Backend, Executor

BATCH_SIZES = (1, 2, 5, 10, 25)


def test_fig11_throughput_vs_batch_size(benchmark, unique_graphs):
    """Fig. 11: throughput scales with batch size; S21 > A70 > A20 throughout."""
    # Only TFLite models that run everywhere participate (149 in the paper).
    models = [g for g in unique_graphs if g.framework == "tflite"][:40]

    def sweep():
        table = {}
        for device in PHONES:
            executor = Executor(device, seed=0)
            for batch in BATCH_SIZES:
                results = executor.run_many(models, Backend.CPU, batch_size=batch,
                                            threads=ThreadConfig(4), num_inferences=2)
                throughputs = [r.throughput_ips for r in results]
                table[(device.name, batch)] = float(np.mean(throughputs))
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)

    lines = ["Fig. 11: mean throughput (inf/s) vs batch size (4 threads)",
             "device  " + "  ".join(f"b={b:<5}" for b in BATCH_SIZES)]
    for device in PHONES:
        row = "  ".join(f"{table[(device.name, b)]:7.1f}" for b in BATCH_SIZES)
        lines.append(f"{device.name:<7} {row}")
    ratio_a70 = table[("S21", 25)] / table[("A70", 25)]
    ratio_a20 = table[("S21", 25)] / table[("A20", 25)]
    lines.append("")
    lines.append(f"S21 vs A70 at batch 25: {ratio_a70:.2f}x (paper: 2.14x)")
    lines.append(f"S21 vs A20 at batch 25: {ratio_a20:.2f}x (paper: 5.42x)")
    write_result("fig11_batching", lines)

    for device in PHONES:
        throughputs = [table[(device.name, batch)] for batch in BATCH_SIZES]
        # Throughput grows monotonically with batch size (no bottleneck yet).
        assert all(b >= a for a, b in zip(throughputs, throughputs[1:]))
    # Device ordering at the largest batch size.
    assert table[("S21", 25)] > table[("A70", 25)] > table[("A20", 25)]
    assert ratio_a20 > ratio_a70 > 1.0
