"""Fig. 5 / Sec. 4.6: temporal analysis across the two snapshots."""

from conftest import write_result

from repro.core.temporal import compare_snapshots


def test_fig5_models_added_removed_per_category(benchmark, analysis_2020, analysis_2021):
    """Fig. 5: individual models removed/added per category between snapshots."""
    comparison = benchmark(compare_snapshots, analysis_2020, analysis_2021)

    lines = ["Fig. 5: individual models removed/added per category (sorted by net change)"]
    for churn in comparison.churn_sorted_by_net_change():
        lines.append(f"{churn.category:<22} added={churn.added:<4} removed={churn.removed:<4} "
                     f"net={churn.net_change:+d}")
    lines.append("")
    lines.append(f"model growth: {comparison.model_growth:.2f}x "
                 f"({comparison.earlier_total_models} -> {comparison.later_total_models})")
    lines.append(f"apps w/ frameworks: {comparison.earlier_apps_with_frameworks} -> "
                 f"{comparison.later_apps_with_frameworks}")
    lines.append(f"cloud-ML apps growth: {comparison.cloud_growth:.2f}x")
    lines.append("framework growth: " + ", ".join(
        f"{fw}={mult:.2f}x" for fw, mult in comparison.framework_growth.items()
        if mult != float('inf')))
    write_result("fig5_temporal", lines)

    # Models roughly double within a year; cloud usage grows > 2x (Sec. 4.6).
    assert comparison.model_growth > 1.5
    assert comparison.cloud_growth > 1.5
    assert any(churn.added > 0 for churn in comparison.category_churn)
    assert any(churn.removed > 0 for churn in comparison.category_churn)
