"""Shared fixtures for the benchmark harness.

Every paper table/figure has a benchmark module that (a) times the code that
regenerates it via pytest-benchmark and (b) writes the reproduced rows/series
to ``benchmarks/results/`` so they can be compared against the paper's values
(EXPERIMENTS.md records that comparison).

The store snapshots are generated at ``REPRO_BENCH_SCALE`` (default 0.15) of
the paper's dataset size so the whole suite completes in minutes; set the
environment variable to 1.0 to regenerate at full scale.

``REPRO_BENCH_SCALE`` also parameterises the perf baseline written by
``test_bench_sweep.py``: the timings and speedups recorded in
``BENCH_sweep.json`` scale with the snapshot size (more models = more cache
reuse, so larger scales report *higher* cached-vs-seed speedups).  Compare
baselines across PRs only at the same scale — the recorded ``scale`` field
makes mismatches detectable.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

import pytest

from repro.android.appgen import AppGenerator, GeneratorConfig, ModelPool
from repro.android.playstore import PlayStore
from repro.core.pipeline import GaugeNN
from repro.devices.device import DEVICE_FLEET, DEV_BOARDS, device_by_name
from repro.obs.timing import Stopwatch
from repro.runtime import Backend, Executor

#: Fraction of the paper's dataset size used for benchmark runs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

#: Whether the >= Nx speedup acceptance gates are enforced.  The CI smoke
#: job runs the whole benchmark suite at a scaled-down snapshot with
#: ``REPRO_BENCH_NO_GATE=1``: timings are still measured and recorded in the
#: ``BENCH_*.json`` baselines, but shared-runner jitter cannot fail the
#: build.  Correctness gates (bit-identity, equivalence, conservation)
#: always apply.
SPEEDUP_GATES = os.environ.get("REPRO_BENCH_NO_GATE", "") != "1"

#: Directory where reproduced tables/figures are written.
RESULTS_DIR = Path(__file__).parent / "results"

#: Layout version stamped into every ``BENCH_*.json`` payload.  Bumped only
#: when the payload shape changes incompatibly; the drift observatory
#: (``repro obs drift --bench``) keys its trajectory rows on it.
BENCH_SCHEMA_VERSION = 1


def bench_run_id() -> str:
    """Stable identifier for this benchmark run's ``BENCH_*.json`` stamps.

    Resolution order: ``REPRO_BENCH_RUN_ID`` (CI sets this to the build
    id), the current git commit, then ``"local"``.  The id keys
    ``bench_runs`` ingestion — re-ingesting a payload whose
    ``(benchmark, run_id)`` pair is already in the trajectory store is a
    no-op, so repeated local runs don't pollute the perf history.
    """
    run_id = os.environ.get("REPRO_BENCH_RUN_ID", "")
    if run_id:
        return run_id
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent, capture_output=True, text=True,
            timeout=10)
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except OSError:
        pass
    return "local"


def write_baseline(path: Path, payload: dict) -> Path:
    """Write a ``BENCH_*.json`` payload stamped for drift ingestion.

    Adds ``schema_version`` and ``run_id`` right after the payload's
    ``benchmark`` key so every baseline is well-keyed for
    ``repro obs drift --bench`` (idempotent re-ingestion, last-two-runs
    comparison).  Use this instead of dumping the payload directly.
    """
    path = Path(path)
    stamped = {"benchmark": payload.get("benchmark", path.stem),
               "schema_version": BENCH_SCHEMA_VERSION,
               "run_id": bench_run_id()}
    stamped.update((key, value) for key, value in payload.items()
                   if key != "benchmark")
    path.write_text(json.dumps(stamped, indent=2) + "\n")
    return path


#: Shared timing helper: ``result, seconds = timed(fn, *args)``.  One
#: perf_counter convention for every benchmark module (monotonic, not
#: wall-clock) instead of ad-hoc start/stop pairs.
timed = Stopwatch.time_call

#: ``min_seconds = best_of(repeats, fn, *args)[1]`` — the standard
#: best-of-N measurement for jitter-sensitive gates.
best_of = Stopwatch.best_of


def assert_speedup(measured: float, minimum: float, label: str = "") -> None:
    """Enforce a speedup gate (no-op under ``REPRO_BENCH_NO_GATE=1``)."""
    if SPEEDUP_GATES:
        assert measured >= minimum, \
            f"{label or 'speedup'}: {measured:.2f}x < required {minimum:.1f}x"


def write_result(name: str, lines) -> Path:
    """Write a reproduced table/figure to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    return path


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def model_pool() -> ModelPool:
    return ModelPool(pool_seed=7)


@pytest.fixture(scope="session")
def store(model_pool) -> PlayStore:
    snapshots = [
        AppGenerator(GeneratorConfig.snapshot_2020(scale=BENCH_SCALE), model_pool).generate(),
        AppGenerator(GeneratorConfig.snapshot_2021(scale=BENCH_SCALE), model_pool).generate(),
    ]
    return PlayStore(snapshots)


@pytest.fixture(scope="session")
def gauge(store) -> GaugeNN:
    return GaugeNN(store)


@pytest.fixture(scope="session")
def analysis_2021(gauge):
    return gauge.analyze_snapshot("2021")


@pytest.fixture(scope="session")
def analysis_2020(gauge):
    return gauge.analyze_snapshot("2020")


@pytest.fixture(scope="session")
def unique_graphs(analysis_2021):
    """Graphs of the unique models found in the 2021 snapshot."""
    return GaugeNN.unique_graphs(analysis_2021)


@pytest.fixture(scope="session")
def fleet_cpu_results(unique_graphs):
    """CPU benchmark results of the unique models on the full device fleet."""
    results = {}
    for device in DEVICE_FLEET:
        executor = Executor(device, seed=0)
        results[device.name] = executor.run_many(unique_graphs, Backend.CPU,
                                                 num_inferences=3)
    return results


@pytest.fixture(scope="session")
def board_cpu_results(fleet_cpu_results):
    """The subset of results for the three Qualcomm development boards."""
    return {device.name: fleet_cpu_results[device.name] for device in DEV_BOARDS}
