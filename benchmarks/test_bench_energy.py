"""Fig. 10: inference energy, power and efficiency across Snapdragon generations."""

from conftest import write_result

from repro.core import reports


def test_fig10_energy_power_efficiency(benchmark, board_cpu_results):
    """Fig. 10: energy similar across boards, power rising, efficiency improving."""
    table = benchmark(reports.energy_distributions, board_cpu_results)

    lines = ["Fig. 10: inference energy / power / efficiency per board",
             "board  energy_median_mJ  power_median_W  efficiency_median_MFLOP/sW"]
    for name in ("Q845", "Q855", "Q888"):
        row = table[name]
        lines.append(f"{name:<6} {row['energy_median_mj']:17.1f} "
                     f"{row['power_median_w']:15.2f} "
                     f"{row['efficiency_median_mflops_per_sw']:27.0f}")
    lines.append("")
    lines.append("paper: median efficiency 730 / 765 / 873 MFLOP/sW; "
                 "newer generations draw more power; energy stays similar")
    write_result("fig10_energy", lines)

    # Power rises with each generation (Fig. 10b).
    assert table["Q845"]["power_median_w"] < table["Q855"]["power_median_w"] \
        < table["Q888"]["power_median_w"]
    # Efficiency improves mildly with newer hardware (Fig. 10c).
    assert table["Q888"]["efficiency_median_mflops_per_sw"] >= \
        table["Q845"]["efficiency_median_mflops_per_sw"]
    # Energy per inference stays in the same ballpark across generations (Fig. 10a).
    energies = [table[name]["energy_median_mj"] for name in ("Q845", "Q855", "Q888")]
    assert max(energies) / min(energies) < 2.0
