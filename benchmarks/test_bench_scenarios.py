"""Table 4: scenario-driven energy consumption (sound recognition, typing, segmentation)."""

from conftest import write_result

from repro.core.pipeline import GaugeNN
from repro.core.scenarios import STANDARD_SCENARIOS, run_scenario, summarize
from repro.devices.device import DEV_BOARDS


def test_table4_scenario_energy(benchmark, analysis_2021):
    """Table 4: battery discharge per use case on the three Qualcomm boards."""
    pairs = GaugeNN.graphs_with_tasks(analysis_2021)

    def run_all():
        summaries = {}
        for device in DEV_BOARDS:
            for scenario in STANDARD_SCENARIOS:
                results = run_scenario(scenario, device, pairs)
                summary = summarize(results)
                if summary is not None:
                    summaries[(device.name, scenario.name)] = summary
        return summaries

    summaries = benchmark.pedantic(run_all, iterations=1, rounds=1)

    lines = ["Table 4: scenario-driven battery discharge (mAh)",
             "device  scenario   n     avg          median      min         max"]
    for (device, scenario), summary in summaries.items():
        lines.append(
            f"{device:<7} {scenario:<9} {summary.model_count:<5} "
            f"{summary.mean_mah:>9.3f} +-{summary.std_mah:<9.3f} "
            f"{summary.median_mah:>9.3f} {summary.min_mah:>10.4f} {summary.max_mah:>10.3f}")
    lines.append("")
    lines.append("paper (Q845): Sound R. avg 0.635 mAh, Typing avg 0.075 mAh, "
                 "Segm. avg 1221.7 mAh")
    write_result("table4_scenarios", lines)

    # Each board must have the segmentation scenario dominating by orders of
    # magnitude over typing, with sound recognition in between (Table 4's shape).
    for device in DEV_BOARDS:
        segmentation = summaries.get((device.name, "Segm."))
        typing = summaries.get((device.name, "Typing"))
        sound = summaries.get((device.name, "Sound R."))
        if segmentation is None or typing is None:
            continue
        assert segmentation.mean_mah > 100 * typing.mean_mah
        if sound is not None:
            assert typing.mean_mah < segmentation.mean_mah
    # Heavy segmentation models can approach a large chunk of a 4000 mAh battery.
    heaviest = max((s.max_mah for (d, name), s in summaries.items() if name == "Segm."),
                   default=0.0)
    assert heaviest > 200.0
