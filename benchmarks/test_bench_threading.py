"""Fig. 12: throughput versus thread count and core affinity."""

import numpy as np
from conftest import write_result

from repro.devices.device import PHONES
from repro.devices.scheduler import ThreadConfig
from repro.runtime import Backend, Executor

CONFIGS = (
    ThreadConfig(2),
    ThreadConfig(2, 2),
    ThreadConfig(4),
    ThreadConfig(4, 2),
    ThreadConfig(4, 4),
    ThreadConfig(8),
    ThreadConfig(8, 4),
)


def test_fig12_throughput_vs_threads_and_affinity(benchmark, unique_graphs):
    """Fig. 12: optimal thread count varies per device; oversubscription hurts."""
    models = [g for g in unique_graphs if g.framework == "tflite"][:25]

    def sweep():
        table = {}
        for device in PHONES:
            executor = Executor(device, seed=0)
            for config in CONFIGS:
                results = executor.run_many(models, Backend.CPU, threads=config,
                                            num_inferences=2)
                table[(device.name, config.label)] = float(
                    np.mean([r.throughput_ips for r in results]))
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)

    lines = ["Fig. 12: mean throughput (inf/s) per thread/affinity configuration",
             "device  " + "  ".join(f"{c.label:>6}" for c in CONFIGS)]
    best = {}
    for device in PHONES:
        row = "  ".join(f"{table[(device.name, c.label)]:6.1f}" for c in CONFIGS)
        lines.append(f"{device.name:<7} {row}")
        plain = {c.label: table[(device.name, c.label)] for c in CONFIGS if c.affinity is None}
        best[device.name] = max(plain, key=plain.get)
    lines.append("")
    lines.append(f"best plain thread count per device: {best} (paper: A20=4, A70=2, S21=4)")
    write_result("fig12_threading", lines)

    # Per-device optima from the paper.
    assert best["A20"] == "4"
    assert best["A70"] == "2"
    assert best["S21"] == "4"
    for device in PHONES:
        # Oversubscription (4a2, 8a4) degrades performance badly.
        assert table[(device.name, "4a2")] < table[(device.name, "2")]
        assert table[(device.name, "8a4")] < table[(device.name, "4")]
        # Pinning to the same number of cores gives no gain.
        assert table[(device.name, "4a4")] <= table[(device.name, "4")] * 1.01
