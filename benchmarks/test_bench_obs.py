"""Perf + correctness gates for the observability layer (`repro.obs`).

Three acceptance properties, measured on the fleet event loop (the
hottest instrumented path):

* **disabled-mode overhead** — with no collector installed the
  instrumented chunk loop must stay within ``MAX_DISABLED_OVERHEAD`` of
  the raw per-user loop: disabled telemetry costs one attribute check
  per chunk, nothing per event;
* **enabled-mode overhead** — with a collector installed (spans +
  counters recorded per chunk) the loop must stay within
  ``MAX_ENABLED_OVERHEAD`` of raw;
* **bit-identity** — simulation output must be byte-identical with
  telemetry on vs off, and the deterministic counters must be
  bit-identical across worker counts / chunk sizes / pool kinds.

Timings are best-of-``REPEATS`` to shave scheduler noise; the overhead
gates are skipped (but still recorded) under ``REPRO_BENCH_NO_GATE=1``
like every other speedup gate.  Results land in ``BENCH_obs.json`` at
the repo root, and the traced run's sidecar store is kept under
``benchmarks/results/obs_telemetry.store`` for ``repro obs report``.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np
import pytest
from conftest import (BENCH_SCALE, RESULTS_DIR, SPEEDUP_GATES, best_of,
                      timed, write_baseline, write_result)

from repro import obs
from repro.fleet import FleetSimulator, FleetSpec, zoo_population
from repro.obs.report import metrics_table, run_timeline, stage_breakdown
from repro.obs.sink import write_telemetry
from repro.store import ResultStore

#: Where the machine-readable baseline lands (repo root, BENCH_* trajectory).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: Where the traced run's sidecar telemetry store is kept (CI artifact).
TELEMETRY_STORE = RESULTS_DIR / "obs_telemetry.store"

#: Acceptance: maximum fractional slowdown of the fleet chunk loop.
MAX_DISABLED_OVERHEAD = 0.02
MAX_ENABLED_OVERHEAD = 0.10

#: Best-of-N repeats per timed variant.
REPEATS = 5

#: Population size / virtual horizon.  Scaled so the CI smoke run
#: (REPRO_BENCH_SCALE=0.05) still simulates tens of thousands of events.
NUM_USERS = max(24, int(80 * BENCH_SCALE / 0.15))
HORIZON_S = 12 * 3600.0

#: Trace columns compared for bit-identity.
TRACE_COLUMNS = ("times_s", "latency_ms", "energy_mj", "throttle",
                 "battery_fraction", "discharge_mah", "offloaded")

#: Module-level accumulator; the final test writes it out as JSON.
RESULTS: dict = {}


def assert_overhead(measured: float, maximum: float, label: str) -> None:
    """Enforce an overhead ceiling (no-op under ``REPRO_BENCH_NO_GATE=1``)."""
    if SPEEDUP_GATES:
        assert measured <= maximum, \
            f"{label}: {measured * 100:.2f}% > allowed {maximum * 100:.0f}%"


@pytest.fixture(scope="module")
def fleet_spec():
    return FleetSpec(graphs_with_tasks=zoo_population(), num_users=NUM_USERS,
                     horizon_s=HORIZON_S, seed=0)


@pytest.fixture(scope="module")
def baseline_traces(fleet_spec):
    """Telemetry-off single-worker reference run."""
    assert not obs.enabled()
    return FleetSimulator(fleet_spec, max_workers=1).collect()


def test_bench_overhead_gates(fleet_spec, baseline_traces):
    """Acceptance: disabled <= 2% and enabled <= 10% over the raw loop."""
    simulator = FleetSimulator(fleet_spec, max_workers=1)
    user_ids = list(range(fleet_spec.num_users))
    events = sum(t.num_events for t in baseline_traces)
    assert events > 10_000, "population too small to measure overhead on"

    def raw():
        return [simulator.simulate_user(uid) for uid in user_ids]

    def disabled():
        return simulator._simulate_chunk(user_ids)

    def enabled():
        obs.enable()
        try:
            return simulator._simulate_chunk(user_ids)
        finally:
            obs.disable()

    raw()  # warm every per-user cache before any timing
    # Interleave the repeats round-robin and gate on the best *per-round*
    # overhead ratio: the three variants of one round run back to back
    # under the same machine load, so their ratio stays honest even when
    # every round is somewhat loaded — whereas a ratio of cross-round
    # minima can pair a quiet raw round with a never-quiet disabled one
    # and report phantom overhead.  Scheduler noise only ever inflates a
    # round's ratio, so the minimum is the least-noisy estimate.
    raw_seconds = disabled_seconds = enabled_seconds = float("inf")
    disabled_overhead = enabled_overhead = float("inf")
    for _ in range(REPEATS):
        raw_t = timed(raw)[1]
        disabled_t = timed(disabled)[1]
        enabled_t = timed(enabled)[1]
        raw_seconds = min(raw_seconds, raw_t)
        disabled_seconds = min(disabled_seconds, disabled_t)
        enabled_seconds = min(enabled_seconds, enabled_t)
        disabled_overhead = min(disabled_overhead, disabled_t / raw_t - 1.0)
        enabled_overhead = min(enabled_overhead, enabled_t / raw_t - 1.0)
    RESULTS["overhead"] = {
        "users": fleet_spec.num_users,
        "events": events,
        "repeats": REPEATS,
        "raw_seconds": raw_seconds,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
        "gates_enforced": SPEEDUP_GATES,
    }
    assert_overhead(disabled_overhead, MAX_DISABLED_OVERHEAD,
                    "disabled-mode overhead")
    assert_overhead(enabled_overhead, MAX_ENABLED_OVERHEAD,
                    "enabled-mode overhead")


def test_bench_bit_identity_with_telemetry(fleet_spec, baseline_traces):
    """Acceptance: telemetry cannot change a single output bit, and the
    deterministic counters are identical for every fan-out shape."""
    variants = {
        "serial": dict(max_workers=1),
        "threads_3_chunked": dict(max_workers=3, chunk_size=7),
        "processes_2": dict(max_workers=2, use_processes=True),
    }
    counters = {}
    for name, kwargs in variants.items():
        obs.enable()
        traces = FleetSimulator(fleet_spec, **kwargs).collect()
        counters[name] = obs.disable().counters
        assert len(traces) == len(baseline_traces)
        for ours, reference in zip(traces, baseline_traces):
            assert ours.user.user_id == reference.user.user_id
            for column in TRACE_COLUMNS:
                assert np.array_equal(getattr(ours, column),
                                      getattr(reference, column)), \
                    f"{name}: user {reference.user.user_id} column {column}"

    reference = counters["serial"]
    assert reference["fleet.users_simulated"] == fleet_spec.num_users
    assert reference["fleet.events_simulated"] == \
        sum(t.num_events for t in baseline_traces)
    for name, observed in counters.items():
        assert observed == reference, f"{name}: counters drifted"

    RESULTS["bit_identity"] = {
        "events": sum(t.num_events for t in baseline_traces),
        "outputs_bit_identical": True,
        "counters_bit_identical": True,
        "variants_checked": sorted(variants),
        "deterministic_counters": dict(sorted(reference.items())),
    }


def test_bench_traced_run_persists_and_reports(fleet_spec, tmp_path_factory):
    """A traced store-backed run, persisted to the sidecar and re-served."""
    if TELEMETRY_STORE.exists():
        shutil.rmtree(TELEMETRY_STORE)
    fleet_store = tmp_path_factory.mktemp("bench_obs") / "fleet.store"

    collector = obs.enable()
    with collector.span("bench.run", items=fleet_spec.num_users):
        rows = FleetSimulator(fleet_spec, max_workers=2).run_to_store(
            fleet_store, rows_per_segment=16384)
    persisted = write_telemetry(TELEMETRY_STORE, run_id="bench")
    obs.disable()
    assert rows > 0 and persisted > 0

    store = ResultStore(TELEMETRY_STORE)
    timeline = run_timeline(store, run_id="bench")
    assert timeline and timeline[0]["name"] == "bench.run"
    ids = {row["span_id"] for row in timeline}
    assert all(row["parent_id"] == 0 or row["parent_id"] in ids
               for row in timeline), "orphan spans in the persisted tree"
    stages = {row["name"] for row in stage_breakdown(store, run_id="bench")}
    assert {"fleet.run_to_store", "fleet.simulate_chunk",
            "store.flush"} <= stages
    metrics = {row["metric"]: row["value_i"]
               for row in metrics_table(store, run_id="bench",
                                        metric_class="deterministic")}
    assert metrics["store.rows_committed"] == rows

    RESULTS["traced_run"] = {
        "fleet_rows": rows,
        "telemetry_rows": persisted,
        "spans_persisted": len(timeline),
        "stages": sorted(stages),
        "store": str(TELEMETRY_STORE.relative_to(
            Path(__file__).resolve().parent.parent)),
    }


def test_write_obs_baseline():
    """Persist the measured baseline to BENCH_obs.json and a results table."""
    if not RESULTS:  # pragma: no cover - only when run in isolation
        pytest.skip("timing tests of this module did not run")
    payload = {
        "benchmark": "obs_overhead_baseline",
        "scale": BENCH_SCALE,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
        **RESULTS,
    }
    write_baseline(BASELINE_PATH, payload)

    lines = [f"Obs overhead baseline (scale {BENCH_SCALE}):"]
    for name, entry in RESULTS.items():
        fields = ", ".join(f"{key}={value:.4g}" if isinstance(value, float)
                           else f"{key}={value}" for key, value in entry.items()
                           if not isinstance(value, dict))
        lines.append(f"{name}: {fields}")
    write_result("bench_obs_baseline", lines)

    assert RESULTS["bit_identity"]["outputs_bit_identical"]
    assert RESULTS["bit_identity"]["counters_bit_identical"]
    if SPEEDUP_GATES:
        assert RESULTS["overhead"]["disabled_overhead"] <= \
            MAX_DISABLED_OVERHEAD
        assert RESULTS["overhead"]["enabled_overhead"] <= MAX_ENABLED_OVERHEAD
