"""Perf baseline for the fleet traffic simulator (`repro.fleet`).

Measures, on a population mixing the scale-``REPRO_BENCH_SCALE`` snapshot's
scenario-compatible models with the zoo reference set:

* **event throughput** — the vectorised event loop's events/second, single
  worker and fanned out;
* **determinism** — the acceptance gate: a >= 100k-event simulation must be
  **bit-identical** across worker counts, chunk sizes and pool kinds
  (threads vs processes), because every user derives from their own seed;
* **vectorised vs naive** — the same users through the per-event reference
  loop (stateful thermal/battery objects, per-event roofline evaluation)
  versus the vectorised loop; equivalence within float tolerance and a
  >= ``MIN_EVENT_LOOP_SPEEDUP``x speedup are both enforced;
* **store ingestion** — streaming the event stream into a ``fleet_events``
  store segment-by-segment, with row counts and integrity verified.

Results land in ``BENCH_fleet.json`` at the repo root, next to
``BENCH_sweep.json`` and ``BENCH_store.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from conftest import (BENCH_SCALE, assert_speedup, timed,
                      write_baseline, write_result)

from repro.obs.timing import Stopwatch

from repro.core.pipeline import GaugeNN
from repro.fleet import (FleetSimulator, FleetSpec, simulate_user_naive,
                         zoo_population)
from repro.fleet.reports import (battery_drain_ecdf, offload_summary,
                                 tail_latency_table)
from repro.store import ResultStore

#: Where the machine-readable baseline lands (repo root, BENCH_* trajectory).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Acceptance: minimum speedup of the vectorised event loop over the
#: per-event reference.
MIN_EVENT_LOOP_SPEEDUP = 5.0

#: Acceptance: the determinism check must cover at least this many events.
MIN_DETERMINISM_EVENTS = 100_000

#: Population size / virtual horizon of the benchmark fleet.
NUM_USERS = 150
HORIZON_S = 12 * 3600.0

#: Users pushed through the naive per-event reference (it is the slow side).
NAIVE_USERS = 30

#: Trace columns compared for bit-identity.
TRACE_COLUMNS = ("times_s", "latency_ms", "energy_mj", "throttle",
                 "battery_fraction", "discharge_mah", "offloaded")

#: Module-level accumulator; the final test writes it out as JSON.
RESULTS: dict = {}


def _user_key(user):
    """User identity by coordinates (graph objects differ across processes)."""
    return (user.user_id, user.device.name, user.graph.name,
            user.scenario.name, user.backend, user.seed)


@pytest.fixture(scope="module")
def fleet_spec(analysis_2021):
    """Snapshot models (where scenario-compatible) plus the zoo reference set."""
    pairs = tuple(GaugeNN.graphs_with_tasks(analysis_2021)) + zoo_population()
    return FleetSpec(graphs_with_tasks=pairs, num_users=NUM_USERS,
                     horizon_s=HORIZON_S, seed=0)


@pytest.fixture(scope="module")
def baseline_traces(fleet_spec):
    """Single-worker reference run (also the throughput measurement)."""
    simulator = FleetSimulator(fleet_spec, max_workers=1)
    traces, seconds = timed(simulator.collect)
    RESULTS["throughput"] = {
        "users": fleet_spec.num_users,
        "horizon_hours": HORIZON_S / 3600.0,
        "events": sum(t.num_events for t in traces),
        "offloaded": sum(t.num_offloaded for t in traces),
        "single_worker_seconds": seconds,
        "events_per_second": sum(t.num_events for t in traces) / seconds,
    }
    return traces


def test_bench_population_scale(baseline_traces):
    """The determinism gate needs a >= 100k-event simulation to bite on."""
    total = sum(t.num_events for t in baseline_traces)
    assert total >= MIN_DETERMINISM_EVENTS
    assert any(t.num_offloaded for t in baseline_traces)
    assert any(t.num_events and float(t.throttle.min()) < 0.95
               for t in baseline_traces), "no thermal throttling exercised"


def test_bench_determinism_across_workers(fleet_spec, baseline_traces):
    """Acceptance: bit-identical event streams for any fan-out configuration."""
    variants = {
        "threads_4": FleetSimulator(fleet_spec, max_workers=4),
        "threads_3_chunked": FleetSimulator(fleet_spec, max_workers=3,
                                            chunk_size=7),
        "processes_2": FleetSimulator(fleet_spec, max_workers=2,
                                      use_processes=True),
    }
    timings = {}
    for name, simulator in variants.items():
        traces, timings[name] = timed(simulator.collect)
        assert len(traces) == len(baseline_traces)
        for ours, reference in zip(traces, baseline_traces):
            assert _user_key(ours.user) == _user_key(reference.user)
            for column in TRACE_COLUMNS:
                assert np.array_equal(getattr(ours, column),
                                      getattr(reference, column)), \
                    f"{name}: user {reference.user.user_id} column {column}"
    RESULTS["determinism"] = {
        "events": sum(t.num_events for t in baseline_traces),
        "bit_identical": True,
        "variants_checked": sorted(variants),
        **{f"{name}_seconds": secs for name, secs in timings.items()},
    }


def test_bench_vectorized_vs_naive(fleet_spec, baseline_traces):
    """Acceptance: the vectorised event loop beats the per-event reference >= 5x."""
    user_ids = [t.user.user_id for t in baseline_traces
                if t.num_events][:NAIVE_USERS]
    events = sum(baseline_traces[uid].num_events for uid in user_ids)
    assert events > 1_000

    naive, naive_seconds = timed(
        lambda: [simulate_user_naive(fleet_spec, uid) for uid in user_ids])

    simulator = FleetSimulator(fleet_spec, max_workers=1)
    vectorized, vectorized_seconds = timed(
        lambda: [simulator.simulate_user(uid) for uid in user_ids])

    for fast, slow in zip(vectorized, naive):
        assert np.array_equal(fast.offloaded, slow.offloaded)
        for column in ("latency_ms", "energy_mj", "throttle",
                       "battery_fraction", "discharge_mah"):
            np.testing.assert_allclose(getattr(fast, column),
                                       getattr(slow, column),
                                       rtol=1e-9, atol=1e-9)

    speedup = naive_seconds / vectorized_seconds
    RESULTS["event_loop"] = {
        "users": len(user_ids),
        "events": events,
        "naive_seconds": naive_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": speedup,
        "naive_events_per_second": events / naive_seconds,
        "vectorized_events_per_second": events / vectorized_seconds,
    }
    assert_speedup(speedup, MIN_EVENT_LOOP_SPEEDUP, "fleet event loop")


def test_bench_store_ingest(fleet_spec, baseline_traces, tmp_path_factory):
    """Streaming the fleet into a fleet_events store, then serving reports."""
    store_path = tmp_path_factory.mktemp("bench_fleet") / "fleet.store"
    simulator = FleetSimulator(fleet_spec, max_workers=2)

    rows, ingest_seconds = timed(simulator.run_to_store, store_path,
                                 rows_per_segment=16384)

    store = ResultStore(store_path)
    total = sum(t.num_events for t in baseline_traces)
    assert rows == total
    assert store.num_rows("fleet_events") == total
    assert store.verify_integrity() == len(store.segments)

    with Stopwatch() as watch:
        table = tail_latency_table(store, group_by=("device_name", "scenario"))
        drains = battery_drain_ecdf(store)
        offload = offload_summary(store)
    report_seconds = watch.elapsed_s
    assert table and offload["events"] == total

    RESULTS["store_ingest"] = {
        "rows": rows,
        "segments": len(store.segments),
        "ingest_seconds": ingest_seconds,
        "rows_per_second": rows / ingest_seconds,
        "report_seconds": report_seconds,
        "offload_fraction": offload["offload_fraction"],
        "median_drain_mah": drains.median,
    }


def test_write_fleet_baseline():
    """Persist the measured baseline to BENCH_fleet.json and a results table."""
    if not RESULTS:  # pragma: no cover - only when run in isolation
        pytest.skip("timing tests of this module did not run")
    payload = {
        "benchmark": "fleet_perf_baseline",
        "scale": BENCH_SCALE,
        "min_required_event_loop_speedup": MIN_EVENT_LOOP_SPEEDUP,
        "min_determinism_events": MIN_DETERMINISM_EVENTS,
        **RESULTS,
    }
    write_baseline(BASELINE_PATH, payload)

    lines = [f"Fleet perf baseline (scale {BENCH_SCALE}):"]
    for name, entry in RESULTS.items():
        fields = ", ".join(f"{key}={value:.4g}" if isinstance(value, float)
                           else f"{key}={value}" for key, value in entry.items())
        lines.append(f"{name}: {fields}")
    write_result("bench_fleet_baseline", lines)

    assert RESULTS["determinism"]["bit_identical"]
    assert RESULTS["determinism"]["events"] >= MIN_DETERMINISM_EVENTS
    assert_speedup(RESULTS["event_loop"]["speedup"],
                   MIN_EVENT_LOOP_SPEEDUP, "fleet event loop")
