"""Perf baseline for the cached accounting + vectorised sweep subsystem.

Unlike the figure/table benchmarks, this module tracks the *performance
trajectory* of the reproduction itself: it times zoo-wide latency evaluation,
snapshot uniqueness analysis and a parallel fleet sweep, compares the cached +
vectorised hot paths against seed behaviour (cold objects that recompute every
derived quantity, as the code did before the caching layer existed), verifies
the numbers are unchanged, and records the measurements in a machine-readable
``BENCH_sweep.json`` at the repository root so future PRs can detect
regressions against this baseline.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest
from conftest import (BENCH_SCALE, assert_speedup, timed,
                      write_baseline, write_result)

from repro.core.uniqueness import analyze_finetuning, analyze_uniqueness
from repro.devices.device import DEVICE_FLEET
from repro.dnn.graph import Graph
from repro.dnn.layers import Layer
from repro.dnn.tensor import TensorSpec, WeightTensor
from repro.runtime import Backend, Executor, SweepRunner, SweepSpec

#: Where the machine-readable baseline lands (repo root, BENCH_* trajectory).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: Speedup the cached + vectorised implementation must sustain over seed
#: behaviour on the zoo-wide sweep microbenchmark (acceptance criterion).
MIN_SWEEP_SPEEDUP = 5.0

#: Module-level accumulator; the final test writes it out as JSON.
RESULTS: dict = {}


def cold_copy(graph: Graph) -> Graph:
    """Rebuild a graph with fresh layers/tensors, i.e. every cache cold.

    Running a hot path over a cold copy reproduces the seed implementation's
    behaviour, which re-derived aggregates, samples and checksums on every
    call instead of memoising them.
    """
    layers = [
        Layer(
            name=layer.name,
            op=layer.op,
            inputs=layer.inputs,
            output_spec=TensorSpec(layer.output_spec.shape, layer.output_spec.dtype)
            if layer.output_spec else None,
            weights=tuple(
                WeightTensor(w.shape, w.dtype, w.seed, w.sparsity, w.name)
                for w in layer.weights
            ),
            attrs=dict(layer.attrs),
            activation_dtype=layer.activation_dtype,
            fused_activation=layer.fused_activation,
        )
        for layer in graph.layers
    ]
    return Graph(graph.metadata, graph.input_specs, layers)


def _fleet_cpu_sweep(zoos) -> list:
    """One CPU pass of every device of the fleet over its zoo copy."""
    results = []
    for device, zoo in zip(DEVICE_FLEET, zoos):
        executor = Executor(device, seed=0)
        results.extend(executor.run_many(zoo, Backend.CPU, num_inferences=3))
    return results


def test_bench_zoo_latency_sweep(benchmark, unique_graphs):
    """Zoo-wide fleet latency sweep: cached + vectorised vs. seed behaviour."""
    warm_zoos = [list(unique_graphs)] * len(DEVICE_FLEET)
    warm_results = _fleet_cpu_sweep(warm_zoos)  # populate every cache
    _, warm_seconds = timed(_fleet_cpu_sweep, warm_zoos)

    # Seed behaviour: every device pass recomputes everything from scratch.
    cold_zoos = [[cold_copy(g) for g in unique_graphs] for _ in DEVICE_FLEET]
    cold_results, cold_seconds = timed(_fleet_cpu_sweep, cold_zoos)

    # The caches must not change any number: identical accounting, identical
    # noise draws (same executor seeds), so identical ExecutionResults up to
    # float summation order in the vectorised roofline.
    assert len(cold_results) == len(warm_results)
    for cold, warm in zip(cold_results, warm_results):
        assert cold.model_name == warm.model_name
        assert cold.flops == warm.flops
        assert cold.parameters == warm.parameters
        assert cold.peak_memory_bytes == warm.peak_memory_bytes
        assert cold.latency_ms == pytest.approx(warm.latency_ms, rel=1e-9)
        assert cold.energy_mj == pytest.approx(warm.energy_mj, rel=1e-9)

    speedup = cold_seconds / warm_seconds
    assert_speedup(speedup, MIN_SWEEP_SPEEDUP, "zoo sweep")
    RESULTS["zoo_latency_sweep"] = {
        "models": len(unique_graphs),
        "devices": len(DEVICE_FLEET),
        "seed_seconds": cold_seconds,
        "cached_seconds": warm_seconds,
        "speedup": speedup,
        "results_identical": True,
    }
    benchmark(_fleet_cpu_sweep, warm_zoos)


def test_bench_uniqueness_cached(benchmark, analysis_2021):
    """Sec. 4.5 uniqueness + fine-tuning analyses with cached checksums."""
    def analyses(models):
        return (analyze_uniqueness(models), analyze_finetuning(models))

    warm_uniq, warm_fine = analyses(analysis_2021.models)  # populate caches
    _, warm_seconds = timed(analyses, analysis_2021.models)

    cold_models = [
        dataclasses.replace(record, graph=cold_copy(record.graph))
        for record in analysis_2021.models
    ]
    (cold_uniq, cold_fine), cold_seconds = timed(analyses, cold_models)

    assert cold_uniq == warm_uniq
    assert cold_fine == warm_fine

    RESULTS["uniqueness_analysis"] = {
        "model_instances": len(analysis_2021.models),
        "seed_seconds": cold_seconds,
        "cached_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "reports_identical": True,
    }
    benchmark(analyses, analysis_2021.models)


def test_bench_parallel_fleet_sweep(benchmark, unique_graphs):
    """SweepRunner: pruned parallel fan-out vs. single-worker execution."""
    spec = SweepSpec(
        devices=tuple(DEVICE_FLEET),
        graphs=tuple(unique_graphs),
        backends=(Backend.CPU, Backend.XNNPACK, Backend.GPU),
        batch_sizes=(1,),
        num_inferences=3,
        seed=0,
    )
    runner = SweepRunner(spec, max_workers=4)
    jobs = runner.compatible_jobs()

    serial = SweepRunner(spec, max_workers=1)
    serial_results, serial_seconds = timed(serial.run)

    parallel_results, parallel_seconds = timed(runner.run)

    assert parallel_results == serial_results  # worker-count independent

    RESULTS["parallel_fleet_sweep"] = {
        "combinations": spec.num_combinations,
        "runnable_after_pruning": len(jobs),
        "results": len(parallel_results),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": 4,
        "deterministic_across_workers": True,
    }
    benchmark(runner.run)


def test_write_sweep_baseline():
    """Persist the measured baseline to BENCH_sweep.json and a results table."""
    if not RESULTS:  # pragma: no cover - only when run in isolation
        pytest.skip("timing tests of this module did not run")
    payload = {
        "benchmark": "sweep_perf_baseline",
        "scale": BENCH_SCALE,
        "min_required_sweep_speedup": MIN_SWEEP_SPEEDUP,
        **RESULTS,
    }
    write_baseline(BASELINE_PATH, payload)

    lines = [f"Perf baseline (scale {BENCH_SCALE}):"]
    for name, entry in RESULTS.items():
        fields = ", ".join(f"{key}={value:.4g}" if isinstance(value, float)
                           else f"{key}={value}" for key, value in entry.items())
        lines.append(f"{name}: {fields}")
    write_result("bench_sweep_baseline", lines)

    assert_speedup(RESULTS["zoo_latency_sweep"]["speedup"],
                   MIN_SWEEP_SPEEDUP, "zoo sweep")
