"""Cloud-layer benchmarks: Fig. 15 API usage plus the `repro.cloud`
shared-capacity interference baseline (``BENCH_cloud.json``).

The interference suite measures and *enforces*, on a population mixing the
scale-``REPRO_BENCH_SCALE`` snapshot's scenario-compatible models with the
zoo reference set and the queue-congesting segmentation variant:

* **bounded fixed point** — the damped two-pass interference simulation must
  converge within the configured pass cap, and visibly inflate loaded cloud
  service times above the unloaded constant;
* **determinism** — the acceptance gate: the *entire multi-pass run* (final
  service table, load profile, traces) must be **bit-identical** across
  worker counts, chunk sizes and pool kinds;
* **queue conservation** — ``arrived == device + cloud + shed + queued``
  holds exactly, per user and audited again through the results store;
* **vectorised vs naive** — the vectorised event loop under a frozen
  service table beats the per-event reference >= ``MIN_CLOUD_SPEEDUP``x
  while producing equivalent traces.

Results land in ``BENCH_cloud.json`` at the repo root, next to the sweep,
store and fleet baselines.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from conftest import (BENCH_SCALE, assert_speedup, timed,
                      write_baseline, write_result)

from repro.cloud import (ApiCapacity, CapacityModel, CloudRegion,
                         InterferenceConfig, InterferenceSimulator,
                         LoadProfile)
from repro.core import reports
from repro.core.pipeline import GaugeNN
from repro.fleet import (FleetSimulator, FleetSpec, congested_population,
                         queue_summary, simulate_user_naive, zoo_population)
from repro.store import ResultStore

#: Where the machine-readable baseline lands (repo root, BENCH_* trajectory).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_cloud.json"

#: Acceptance: minimum speedup of the vectorised event loop over the
#: per-event reference, both running under the converged frozen table.
MIN_CLOUD_SPEEDUP = 5.0

#: Population size / virtual horizon of the interference fleet.
NUM_USERS = 100
HORIZON_S = 8 * 3600.0

#: Users pushed through the naive per-event reference (the slow side).
NAIVE_USERS = 25

#: Deliberately tight regional capacity so the benchmark fleet congests it.
CAPACITY = CapacityModel(
    regions=(CloudRegion("us-central"), CloudRegion("eu-west", 0.7),
             CloudRegion("apac-se", 0.5)),
    default=ApiCapacity(base_service_ms=45.0, servers=3, per_server_rps=2.0),
)

CONFIG = InterferenceConfig(bin_seconds=900.0)

#: Module-level accumulator; the final test writes it out as JSON.
RESULTS: dict = {}


def test_fig15_cloud_api_usage(benchmark, analysis_2021, analysis_2020):
    """Fig. 15: apps per cloud ML API category, Google vs AWS."""
    usage = benchmark(reports.cloud_api_usage, analysis_2021)

    cloud_apps_2021 = len(analysis_2021.apps_using_cloud())
    cloud_apps_2020 = len(analysis_2020.apps_using_cloud())
    google_apps = sum(1 for app in analysis_2021.apps_using_cloud()
                      if "Google" in app.cloud_providers)
    aws_apps = sum(1 for app in analysis_2021.apps_using_cloud()
                   if "AWS" in app.cloud_providers)

    lines = ["Fig. 15: number of apps invoking cloud ML APIs (2021 snapshot)",
             "api                                   provider  apps"]
    for name, entry in usage.items():
        lines.append(f"{name:<37} {entry['provider']:<9} {entry['apps']}")
    lines.append("")
    lines.append(f"total cloud-ML apps: {cloud_apps_2021} "
                 f"(2020: {cloud_apps_2020}, growth {cloud_apps_2021 / max(1, cloud_apps_2020):.2f}x; "
                 "paper: 524 apps, 2.33x)")
    lines.append(f"Google apps: {google_apps}, AWS apps: {aws_apps} (paper: 452 vs 72)")
    write_result("fig15_cloud_apis", lines)

    assert cloud_apps_2021 > cloud_apps_2020
    assert google_apps > aws_apps
    # Vision APIs dominate the top of the ranking.
    top_apis = list(usage)[:5]
    assert any(name.startswith("Vision/") for name in top_apis)


# --------------------------------------------------------------------------- #
# repro.cloud interference baseline
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def cloud_spec(analysis_2021):
    """Snapshot models plus the zoo set plus the queue-congesting variant."""
    pairs = (tuple(GaugeNN.graphs_with_tasks(analysis_2021))
             + zoo_population() + congested_population())
    return FleetSpec(graphs_with_tasks=pairs, num_users=NUM_USERS,
                     horizon_s=HORIZON_S, seed=0)


@pytest.fixture(scope="module")
def baseline_run(cloud_spec):
    """Single-worker two-pass run (also the fixed-point measurement)."""
    simulator = InterferenceSimulator(cloud_spec, CAPACITY, config=CONFIG,
                                      max_workers=1)
    result, seconds = timed(simulator.run)
    RESULTS["fixed_point"] = {
        "users": cloud_spec.num_users,
        "horizon_hours": HORIZON_S / 3600.0,
        "bin_seconds": CONFIG.bin_seconds,
        "passes": result.passes,
        "max_passes": CONFIG.max_passes,
        "converged": result.converged,
        "deltas_ms": [round(d, 4) for d in result.deltas_ms],
        "total_seconds": seconds,
        "offloaded_requests": result.profile.total_requests,
        "peak_offered_rps": result.profile.peak_rps(),
    }
    return simulator, result


def test_bench_fixed_point_bounded_and_interfering(cloud_spec, baseline_run):
    """Acceptance: convergence within the pass cap, with real interference."""
    _, result = baseline_run
    assert result.converged, "fixed point must converge within the pass cap"
    assert result.passes <= CONFIG.max_passes + 1  # iterations + final pass
    nominal = cloud_spec.policy.cloud.service_ms
    assert result.profile.total_requests > 0
    assert result.peak_service_ms > nominal * 1.5, \
        "the tight capacity model should visibly inflate service times"
    RESULTS["interference"] = {
        "nominal_service_ms": nominal,
        "peak_service_ms": result.peak_service_ms,
        "inflation": result.peak_service_ms / nominal,
    }


def test_bench_determinism_across_pool_kinds(cloud_spec, baseline_run):
    """Acceptance: the whole multi-pass run is bit-identical for any fan-out."""
    _, reference = baseline_run
    variants = {
        "threads_4": dict(max_workers=4),
        "threads_3_chunked": dict(max_workers=3, chunk_size=7),
        "processes_2": dict(max_workers=2, use_processes=True),
    }
    timings = {}
    for name, kwargs in variants.items():
        result, timings[name] = timed(
            InterferenceSimulator(cloud_spec, CAPACITY, config=CONFIG,
                                  **kwargs).run)
        assert result.passes == reference.passes, name
        assert result.converged == reference.converged, name
        assert np.array_equal(result.table.service_ms,
                              reference.table.service_ms), name
        assert np.array_equal(result.profile.requests,
                              reference.profile.requests), name
        assert np.array_equal(result.profile.payload_bytes,
                              reference.profile.payload_bytes), name
        for ours, ref in zip(result.traces, reference.traces):
            assert ours.user.user_id == ref.user.user_id
            for column in ("times_s", "latency_ms", "energy_mj", "throttle",
                           "battery_fraction", "discharge_mah", "wait_ms",
                           "route"):
                assert np.array_equal(getattr(ours, column),
                                      getattr(ref, column)), \
                    f"{name}: user {ref.user.user_id} column {column}"
    RESULTS["determinism"] = {
        "events": sum(t.num_events for t in reference.traces),
        "passes_each": reference.passes,
        "bit_identical": True,
        "variants_checked": sorted(variants),
        **{f"{name}_seconds": secs for name, secs in timings.items()},
    }


def test_bench_queue_conservation_exact(baseline_run):
    """Acceptance: arrived == device + cloud + shed + queued, exactly."""
    _, result = baseline_run
    totals = {"device": 0, "cloud": 0, "shed": 0, "queued": 0}
    for trace in result.traces:
        counts = trace.route_counts()
        assert sum(counts.values()) == trace.num_events, \
            f"user {trace.user.user_id} leaks events"
        for key in totals:
            totals[key] += counts[key]
    arrived = sum(t.num_events for t in result.traces)
    assert arrived == sum(totals.values())
    assert totals["shed"] > 0, \
        "the congested population should overflow the device queue"
    RESULTS["queue_conservation"] = {
        "arrived": arrived, **totals, "exact": True,
    }


def test_bench_vectorized_vs_naive_under_load(cloud_spec, baseline_run):
    """Acceptance: the vectorised loop beats the per-event reference >= 5x
    while running against the converged frozen service table."""
    simulator, result = baseline_run
    spec = simulator.spec  # region-aligned copy
    user_ids = [t.user.user_id for t in result.traces
                if t.num_events][:NAIVE_USERS]
    events = sum(result.traces[uid].num_events for uid in user_ids)
    assert events > 1_000

    naive, naive_seconds = timed(
        lambda: [simulate_user_naive(spec, uid, service_table=result.table)
                 for uid in user_ids])

    vectorized_sim = FleetSimulator(spec, max_workers=1,
                                    service_table=result.table)
    vectorized, vectorized_seconds = timed(
        lambda: [vectorized_sim.simulate_user(uid) for uid in user_ids])

    for fast, slow in zip(vectorized, naive):
        assert np.array_equal(fast.route, slow.route)
        for column in ("latency_ms", "energy_mj", "throttle",
                       "battery_fraction", "discharge_mah", "wait_ms"):
            np.testing.assert_allclose(getattr(fast, column),
                                       getattr(slow, column),
                                       rtol=1e-9, atol=1e-9)

    speedup = naive_seconds / vectorized_seconds
    RESULTS["event_loop"] = {
        "users": len(user_ids),
        "events": events,
        "naive_seconds": naive_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": speedup,
        "vectorized_events_per_second": events / vectorized_seconds,
    }
    assert_speedup(speedup, MIN_CLOUD_SPEEDUP, "cloud event loop")


def test_bench_store_ingest_and_audit(cloud_spec, tmp_path_factory):
    """Streaming the final pass into a store, then auditing it from disk."""
    store_path = tmp_path_factory.mktemp("bench_cloud") / "cloud.store"
    store = ResultStore(store_path)
    simulator = InterferenceSimulator(cloud_spec, CAPACITY, config=CONFIG,
                                      max_workers=2)
    (rows, result), ingest_seconds = timed(simulator.run_to_store, store)

    events = store.num_rows("fleet_events")
    load_rows = store.num_rows("fleet_load")
    assert rows == events + load_rows
    assert load_rows > 0
    assert store.verify_integrity() == len(store.segments)

    # The persisted profile reconstructs the in-memory grid exactly.
    rebuilt = LoadProfile.from_store(store, simulator.spec.regions,
                                     HORIZON_S, CONFIG.bin_seconds)
    assert np.array_equal(rebuilt.requests, result.profile.requests)

    # Conservation again, audited externally: the simulator's streamed
    # arrival count against the store's per-target classification.
    summary = queue_summary(store, expected_arrived=result.arrived)
    assert summary["conserved"]
    assert summary["arrived"] == result.arrived == events
    RESULTS["store_ingest"] = {
        "rows": rows,
        "fleet_events": events,
        "fleet_load": load_rows,
        "segments": len(store.segments),
        "ingest_seconds": ingest_seconds,
        "rows_per_second": rows / ingest_seconds,
        "by_target": summary["by_target"],
    }


def test_write_cloud_baseline():
    """Persist the measured baseline to BENCH_cloud.json and a results table."""
    if not RESULTS:  # pragma: no cover - only when run in isolation
        pytest.skip("timing tests of this module did not run")
    payload = {
        "benchmark": "cloud_interference_baseline",
        "scale": BENCH_SCALE,
        "min_required_event_loop_speedup": MIN_CLOUD_SPEEDUP,
        **RESULTS,
    }
    write_baseline(BASELINE_PATH, payload)

    lines = [f"Cloud interference baseline (scale {BENCH_SCALE}):"]
    for name, entry in RESULTS.items():
        fields = ", ".join(f"{key}={value:.4g}" if isinstance(value, float)
                           else f"{key}={value}" for key, value in entry.items())
        lines.append(f"{name}: {fields}")
    write_result("bench_cloud_baseline", lines)

    assert RESULTS["fixed_point"]["converged"]
    assert RESULTS["determinism"]["bit_identical"]
    assert RESULTS["queue_conservation"]["exact"]
    assert_speedup(RESULTS["event_loop"]["speedup"], MIN_CLOUD_SPEEDUP,
                   "cloud event loop")
