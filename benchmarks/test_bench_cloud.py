"""Fig. 15: cloud-based ML API usage across apps."""

from conftest import write_result

from repro.core import reports


def test_fig15_cloud_api_usage(benchmark, analysis_2021, analysis_2020):
    """Fig. 15: apps per cloud ML API category, Google vs AWS."""
    usage = benchmark(reports.cloud_api_usage, analysis_2021)

    cloud_apps_2021 = len(analysis_2021.apps_using_cloud())
    cloud_apps_2020 = len(analysis_2020.apps_using_cloud())
    google_apps = sum(1 for app in analysis_2021.apps_using_cloud()
                      if "Google" in app.cloud_providers)
    aws_apps = sum(1 for app in analysis_2021.apps_using_cloud()
                   if "AWS" in app.cloud_providers)

    lines = ["Fig. 15: number of apps invoking cloud ML APIs (2021 snapshot)",
             "api                                   provider  apps"]
    for name, entry in usage.items():
        lines.append(f"{name:<37} {entry['provider']:<9} {entry['apps']}")
    lines.append("")
    lines.append(f"total cloud-ML apps: {cloud_apps_2021} "
                 f"(2020: {cloud_apps_2020}, growth {cloud_apps_2021 / max(1, cloud_apps_2020):.2f}x; "
                 "paper: 524 apps, 2.33x)")
    lines.append(f"Google apps: {google_apps}, AWS apps: {aws_apps} (paper: 452 vs 72)")
    write_result("fig15_cloud_apis", lines)

    assert cloud_apps_2021 > cloud_apps_2020
    assert google_apps > aws_apps
    # Vision APIs dominate the top of the ranking.
    top_apis = list(usage)[:5]
    assert any(name.startswith("Vision/") for name in top_apis)
