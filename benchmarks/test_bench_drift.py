"""Perf + correctness gates for the drift observatory (`repro.store.diff`).

Three acceptance properties on a large synthetic two-store campaign pair:

* **vectorised diff speed** — :func:`repro.store.diff.diff_stores` (radix
  key encoding + reduceat/bincount group reductions over the column
  caches) must beat the per-row Python reference
  (:func:`diff_kind_reference`) by at least ``MIN_DIFF_SPEEDUP``x;
* **bit-exact equivalence** — the vectorised engine's changed groups,
  per-metric values, and added/removed entity sets must equal the
  reference's *bit for bit* (same float reduction order, not approx);
* **self-diff is zero** — a store diffed against itself reports no
  deltas at all, and deterministic telemetry counters snapshot-compare
  exact across worker/chunk/pool fan-out variants (only wall-clock
  drift may appear).

Results land in ``BENCH_drift.json`` at the repo root; the speedup gate
is skipped (but still recorded) under ``REPRO_BENCH_NO_GATE=1``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from conftest import (BENCH_SCALE, assert_speedup, best_of, timed,
                      write_baseline, write_result)

from repro import obs
from repro.fleet import FleetSimulator, FleetSpec, zoo_population
from repro.obs.drift import diff_snapshots
from repro.obs.snapshot import build_snapshot
from repro.store import ResultStore, diff_kind_reference, diff_stores
from repro.store.diff import spec_for

#: Where the machine-readable baseline lands (repo root, BENCH_* trajectory).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_drift.json"

#: Minimum vectorised-diff speedup over the per-row reference.
MIN_DIFF_SPEEDUP = 5.0

#: Rows per synthetic store.  Scaled so the CI smoke run
#: (REPRO_BENCH_SCALE=0.05) still diffs ~200k rows total.
NUM_ROWS = max(100_000, int(300_000 * BENCH_SCALE / 0.15))

#: Best-of-N repeats for the vectorised side (the reference runs once —
#: it is the slow path being beaten).
REPEATS = 3

#: Fleet-sim population for the cross-variant snapshot check.
NUM_USERS = max(16, int(48 * BENCH_SCALE / 0.15))

#: Module-level accumulator; the final test writes it out as JSON.
RESULTS: dict = {}

DEVICES = np.array(["S21", "A20", "pixel4", "Q845", "Q855", "Q865",
                    "mate30", "redmi9"], dtype="U16")
SCENARIOS = np.array(["photo", "typing", "assistant", "ar"], dtype="U16")
REGIONS = np.array(["amer", "emea", "apac", "mena"], dtype="U16")


def synthetic_batch(n, seed, *, region_pool=REGIONS, latency_mult=None):
    """A deterministic fleet_events batch spread over ~250 group keys."""
    rng = np.random.default_rng(seed)
    latency = rng.uniform(1, 80, n)
    if latency_mult is not None:
        latency = latency * latency_mult
    return {
        "user_id": rng.integers(0, n, n),
        "time_s": rng.uniform(0, 86400, n),
        "device_name": DEVICES[rng.integers(0, DEVICES.size, n)],
        "model_name": np.array(["mobilenet"] * n, dtype="U16"),
        "scenario": SCENARIOS[rng.integers(0, SCENARIOS.size, n)],
        "backend": np.array(["cpu"] * n, dtype="U8"),
        "region": region_pool[rng.integers(0, region_pool.size, n)],
        "target": np.where(rng.random(n) < 0.1, "cloud", "local").astype("U8"),
        "latency_ms": latency,
        "wait_ms": rng.uniform(0, 10, n),
        "energy_mj": rng.uniform(1, 50, n),
        "throttle_factor": np.ones(n),
        "battery_fraction": rng.uniform(0.2, 1.0, n),
        "discharge_mah": rng.uniform(0, 1, n),
        "cloud_api": np.array([""] * n, dtype="U16"),
        "cloud_bytes": rng.integers(0, 1000, n),
    }


@pytest.fixture(scope="module")
def store_pair(tmp_path_factory):
    """Two NUM_ROWS stores: same seed, perturbed latencies, shifted regions.

    Side B drops one region and gains another, so the pair exercises the
    matched/changed path *and* the added/removed entity sets at scale.
    """
    root = tmp_path_factory.mktemp("bench_drift")
    store_a = ResultStore(root / "a.store")
    with store_a.writer() as writer:
        writer.append_batch("fleet_events", synthetic_batch(NUM_ROWS, 42))
    store_b = ResultStore(root / "b.store")
    shifted = np.array(["amer", "emea", "apac", "anta"], dtype="U16")
    with store_b.writer() as writer:
        writer.append_batch(
            "fleet_events",
            synthetic_batch(NUM_ROWS, 42, region_pool=shifted,
                            latency_mult=1.001))
    return store_a, store_b


def test_bench_vectorised_vs_reference(store_pair):
    """Acceptance: vectorised diff == per-row reference, >= 5x faster."""
    store_a, store_b = store_pair
    spec = spec_for("fleet_events")

    fast_diff, fast_seconds = best_of(
        REPEATS, lambda: diff_stores(store_a, store_b))
    reference, reference_seconds = timed(
        diff_kind_reference, store_a, store_b, spec)

    kind = fast_diff.kinds["fleet_events"]
    assert kind.matched == reference["matched"]
    fast_changed = {}
    for row in kind.changed_rows(limit=None):
        key = tuple(row[name] for name in spec.keys)
        fast_changed[key] = {
            metric: (row[metric]["a"], row[metric]["b"])
            for metric in kind.metrics
            if row[metric]["a"] != row[metric]["b"]}
    assert set(fast_changed) == set(reference["changed"])
    mismatched = 0
    for key, cells in reference["changed"].items():
        for metric, (ref_a, ref_b, _) in cells.items():
            fast_a, fast_b = fast_changed[key][metric]
            # Bit-exact: the engine's reductions accumulate in row order,
            # exactly like the sequential reference.
            if fast_a != ref_a or fast_b != ref_b:
                mismatched += 1
    assert mismatched == 0
    assert {tuple(row[name] for name in spec.keys)
            for row in kind.added_rows(limit=None)} == reference["added"]
    assert {tuple(row[name] for name in spec.keys)
            for row in kind.removed_rows(limit=None)} == reference["removed"]

    speedup = reference_seconds / fast_seconds
    RESULTS["diff"] = {
        "rows_per_store": NUM_ROWS,
        "groups_matched": kind.matched,
        "groups_changed": kind.num_changed,
        "groups_added": kind.num_added,
        "groups_removed": kind.num_removed,
        "reference_seconds": reference_seconds,
        "vectorised_seconds": fast_seconds,
        "speedup": speedup,
        "bit_identical": True,
    }
    assert_speedup(speedup, MIN_DIFF_SPEEDUP, "vectorised store diff")


def test_bench_self_diff_is_zero(store_pair):
    """Acceptance: a store diffed against itself has zero deltas."""
    store_a, _ = store_pair
    diff, seconds = timed(diff_stores, store_a, store_a)
    assert diff.identical
    kind = diff.kinds["fleet_events"]
    assert kind.num_changed == kind.num_added == kind.num_removed == 0
    for metric in kind.metrics:
        assert not kind.delta[metric].any()
    RESULTS["self_diff"] = {
        "rows": NUM_ROWS,
        "groups": kind.matched,
        "seconds": seconds,
        "zero_deltas": True,
    }


def test_bench_counters_snapshot_exact_across_variants(tmp_path_factory):
    """Deterministic counters snapshot-compare exact for every fan-out
    shape; only wall-clock sections may drift between variants."""
    root = tmp_path_factory.mktemp("bench_drift_variants")
    spec = FleetSpec(graphs_with_tasks=zoo_population(), num_users=NUM_USERS,
                     horizon_s=6 * 3600.0, seed=0)
    variants = {
        "serial": dict(max_workers=1),
        "threads_3_chunked": dict(max_workers=3, chunk_size=5),
        "processes_2": dict(max_workers=2, use_processes=True),
    }
    snapshots = {}
    for name, kwargs in variants.items():
        obs.enable()
        FleetSimulator(spec, **kwargs).collect()
        telemetry = root / f"{name}.store"
        obs.write_telemetry(telemetry, run_id=name)
        obs.disable()
        snapshots[name] = build_snapshot(telemetry=telemetry, run_id=name)

    reference = snapshots["serial"]
    worst_exact = 0
    for name, snapshot in snapshots.items():
        assert snapshot["counters"] == reference["counters"], \
            f"{name}: deterministic counters drifted"
        report = diff_snapshots(reference, snapshot)
        exact_findings = [f for f in report.findings
                          if f["severity"] == "exact"]
        assert not exact_findings, f"{name}: {exact_findings}"
        worst_exact = max(worst_exact, len(exact_findings))
    RESULTS["variant_exactness"] = {
        "users": NUM_USERS,
        "variants_checked": sorted(variants),
        "counters": len(reference["counters"]),
        "counters_bit_identical": True,
        "exact_findings": worst_exact,
    }


def test_write_drift_baseline():
    """Persist the measured baseline to BENCH_drift.json and a results table."""
    if not RESULTS:  # pragma: no cover - only when run in isolation
        pytest.skip("timing tests of this module did not run")
    payload = {
        "benchmark": "drift_perf_baseline",
        "scale": BENCH_SCALE,
        "min_required_diff_speedup": MIN_DIFF_SPEEDUP,
        **RESULTS,
    }
    write_baseline(BASELINE_PATH, payload)

    lines = [f"Drift observatory baseline (scale {BENCH_SCALE}):"]
    for name, entry in RESULTS.items():
        fields = ", ".join(f"{key}={value:.4g}" if isinstance(value, float)
                           else f"{key}={value}" for key, value in entry.items()
                           if not isinstance(value, dict))
        lines.append(f"{name}: {fields}")
    write_result("bench_drift_baseline", lines)

    assert RESULTS["diff"]["bit_identical"]
    assert RESULTS["self_diff"]["zero_deltas"]
    assert_speedup(RESULTS["diff"]["speedup"], MIN_DIFF_SPEEDUP,
                   "vectorised store diff")
