"""Sec. 4.5: model uniqueness and fine-tuning analysis."""

from conftest import write_result

from repro.core.uniqueness import analyze_finetuning, analyze_uniqueness


def test_uniqueness_analysis(benchmark, analysis_2021):
    """Only a small fraction of model instances are unique; most are shared."""
    report = benchmark(analyze_uniqueness, analysis_2021.models)
    lines = [
        "Sec. 4.5: model uniqueness",
        f"total model instances  : {report.total_models}",
        f"unique models          : {report.unique_models} ({100 * report.unique_fraction:.1f}%)",
        f"instances shared across apps: {report.models_shared_across_apps} "
        f"({100 * report.shared_fraction:.1f}%)",
        "most duplicated models : " + ", ".join(
            f"{name} (x{count})" for name, count in report.most_duplicated),
    ]
    write_result("sec45_uniqueness", lines)
    assert report.unique_fraction < 0.5
    assert report.shared_fraction > 0.4


def test_finetuning_analysis(benchmark, analysis_2021):
    """A small fraction of unique models are fine-tuned derivatives of another."""
    report = benchmark.pedantic(analyze_finetuning, args=(analysis_2021.models,),
                                iterations=1, rounds=1)
    lines = [
        "Sec. 4.5: fine-tuning (layer-level checksums)",
        f"unique models                     : {report.unique_models}",
        f"sharing >= 20% of weights         : {report.models_sharing_weights} "
        f"({100 * report.sharing_fraction:.2f}%)",
        f"differing in <= 3 layers          : {report.models_differing_few_layers} "
        f"({100 * report.few_layer_fraction:.2f}%)",
    ]
    write_result("sec45_finetuning", lines)
    assert 0.0 < report.sharing_fraction < 0.5
    assert report.few_layer_fraction <= report.sharing_fraction
