"""Query engine v2 benchmark: kernels, coded predicates, parallel scans.

The PR 10 acceptance measurements, recorded in ``BENCH_query.json``:

(a) **Grouped-aggregation kernels** — the vectorised
    :class:`repro.store.kernels.GroupedReducer` against the per-group
    reference loop over the same gathered arrays, gated at >= 5x
    (:func:`conftest.assert_speedup`, so ``REPRO_BENCH_NO_GATE=1``
    records without failing); the end-to-end ``aggregate()`` speedup is
    recorded alongside.  Correctness gate (always on): ``engine="kernel"``
    equals ``engine="reference"`` exactly, every reduction.
(b) **Dictionary-coded predicates** — evaluating a low-cardinality
    string filter against the vocabulary + integer codes vs decoding the
    unicode column and masking it, over the same columnar payloads,
    gated at >= 5x.  Correctness gate: identical match masks.
(c) **Parallel segment scans** — cold-store (empty column cache) query
    latency sequential vs thread fan-out on a compressed multi-segment
    campaign store; speedups *recorded* (threads pay off with
    GIL-releasing decompression/decode work, but this is not gated), and
    ``arrays()``/``aggregate()``/``QueryStats`` asserted bit-identical
    across 1/2/8 workers and both pool kinds.
(d) **Served byte-identity** — ``/v1/query`` responses (including an
    ``in`` textual predicate) byte-equal to the offline engine at the
    same generation, the CLI grammar on both sides.
"""

from __future__ import annotations

import json
import urllib.parse
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_SCALE, assert_speedup, best_of, write_baseline
from repro.campaign import synthetic_fleet_batch
from repro.serve import QuerySpec, ServeApp, ServerThread
from repro.store import ResultStore, columnar, kernels
from repro.store.query import Predicate
from repro.store.schema import kind_for

#: Total rows in the kernel-bench store, scaled with the snapshot size.
ROWS = max(int(400_000 * BENCH_SCALE), 12_000)
ALL_FNS = ("count", "sum", "mean", "std", "median", "min", "max",
           "p50", "p90", "p99", "p999")


@pytest.fixture(scope="module")
def query_store(tmp_path_factory) -> ResultStore:
    """Uncompressed columnar store: 6 segments, ``ROWS`` fleet events."""
    root = tmp_path_factory.mktemp("bench_query") / "query.store"
    store = ResultStore(root)
    with store.writer(rows_per_segment=max(ROWS // 6, 1000)) as writer:
        for index in range(6):
            writer.append_batch("fleet_events",
                                synthetic_fleet_batch(index, ROWS // 6))
    store.refresh()
    return store


@pytest.fixture(scope="module")
def coded_store(tmp_path_factory) -> ResultStore:
    """Two large columnar segments (decode cost dominates parse cost)."""
    root = tmp_path_factory.mktemp("bench_query") / "coded.store"
    store = ResultStore(root)
    with store.writer(rows_per_segment=max(ROWS // 2, 2000)) as writer:
        for index in range(2):
            writer.append_batch("fleet_events",
                                synthetic_fleet_batch(10 + index, ROWS // 2))
    store.refresh()
    return store


@pytest.fixture(scope="module")
def compressed_store(tmp_path_factory) -> ResultStore:
    """Compressed campaign store: 12 segments for the parallel-scan section.

    Each segment holds ``ROWS // 3`` rows (4x the kernel store's total
    row count across the 12 segments) so the per-segment decompress +
    decode work is large enough for thread fan-out to overlap it.
    """
    root = tmp_path_factory.mktemp("bench_query") / "campaign.store"
    store = ResultStore(root)
    rows = max(ROWS // 3, 2000)
    with store.writer(rows_per_segment=rows, compress=True) as writer:
        for index in range(12):
            writer.append_batch("fleet_events",
                                synthetic_fleet_batch(20 + index, rows))
    store.refresh()
    return store


@pytest.fixture(scope="module")
def payload() -> dict:
    return {"benchmark": "query", "scale": BENCH_SCALE, "rows": ROWS}


def _grouped(store, engine="kernel"):
    return (store.query("fleet_events")
            .group_by("device_name", "backend")
            .agg(**{f"lat_{fn}": ("latency_ms", fn) for fn in ALL_FNS},
                 bytes_sum=("cloud_bytes", "sum"),
                 bytes_mean=("cloud_bytes", "mean"),
                 model_min=("model_name", "min"))
            .aggregate(engine=engine))


class TestQueryBench:
    def test_a_grouped_kernels(self, query_store, payload):
        # Correctness gate first: the kernels ARE the reference, bit for bit.
        reference_rows = _grouped(query_store, engine="reference")
        kernel_rows = _grouped(query_store, engine="kernel")
        assert kernel_rows == reference_rows and len(kernel_rows) >= 8

        # Isolated stage timing over the same gathered arrays: exactly the
        # work the kernels replaced (scan/gather cost is identical on both
        # engines and excluded).
        arrays = query_store.query("fleet_events").arrays(
            "device_name", "backend", "latency_ms")
        key = np.zeros(arrays["latency_ms"].size, dtype=np.int64)
        for name in ("device_name", "backend"):
            uniques, inverse = np.unique(arrays[name], return_inverse=True)
            key = key * uniques.size + inverse
        group_keys, key_inverse = np.unique(key, return_inverse=True)
        values = arrays["latency_ms"]

        def run_kernel():
            reducer = kernels.GroupedReducer(key_inverse, group_keys.size)
            return [reducer.reduce("latency_ms", values, fn)
                    for fn in ALL_FNS]

        def run_reference():
            order = np.argsort(key_inverse, kind="stable")
            bounds = np.searchsorted(key_inverse[order],
                                     np.arange(group_keys.size))
            bounds = np.append(bounds, key_inverse.size)
            columns = [[] for _ in ALL_FNS]
            for index in range(group_keys.size):
                rows = values[order[bounds[index]:bounds[index + 1]]]
                for column, fn in zip(columns, ALL_FNS):
                    column.append(kernels.REFERENCE_REDUCERS[fn](rows))
            return columns

        assert run_kernel() == run_reference()
        _, kernel_s = best_of(5, run_kernel)
        _, reference_s = best_of(5, run_reference)
        speedup = reference_s / kernel_s

        _, end_kernel_s = best_of(3, _grouped, query_store, "kernel")
        _, end_reference_s = best_of(3, _grouped, query_store, "reference")
        payload["grouped_kernels"] = {
            "rows": int(values.size),
            "groups": int(group_keys.size),
            "reductions": len(ALL_FNS),
            "reference_s": reference_s,
            "kernel_s": kernel_s,
            "speedup": speedup,
            "end_to_end_reference_s": end_reference_s,
            "end_to_end_kernel_s": end_kernel_s,
            "end_to_end_speedup": end_reference_s / end_kernel_s,
        }
        assert_speedup(speedup, 5.0, "grouped-aggregation kernels")

    def test_b_dict_coded_predicates(self, coded_store, payload):
        kind = kind_for("fleet_events")
        metas = coded_store.segments_for("fleet_events")
        payloads = [
            ((coded_store.segments_dir / meta.data_filename).read_bytes(),
             meta.rows)
            for meta in metas
        ]
        vocabulary = np.unique(
            coded_store.columns_for(metas[0])["model_name"])
        predicate = Predicate("model_name", "in",
                              tuple(vocabulary[:2].tolist()))

        def decoded_eval():
            matched = 0
            for blob, rows in payloads:
                columns = columnar.open_columns(blob, kind,
                                                expected_rows=rows)
                matched += int(predicate.mask(columns["model_name"]).sum())
            return matched

        def coded_eval():
            matched = 0
            for blob, rows in payloads:
                columns = columnar.open_columns(blob, kind,
                                                expected_rows=rows)
                view = columns.coded("model_name")
                matched += int(
                    predicate.mask(view.values)[view.codes].sum())
            return matched

        # Correctness gate: identical masks, and a real (non-trivial) match.
        assert decoded_eval() == coded_eval() > 0

        _, decoded_s = best_of(5, decoded_eval)
        _, coded_s = best_of(5, coded_eval)
        speedup = decoded_s / coded_s
        payload["dict_predicates"] = {
            "segments": len(payloads),
            "rows": int(sum(rows for _, rows in payloads)),
            "vocabulary": int(vocabulary.size),
            "decoded_s": decoded_s,
            "coded_s": coded_s,
            "speedup": speedup,
        }
        assert_speedup(speedup, 5.0, "dict-coded predicate evaluation")

    def test_c_parallel_scan_identity_and_speedup(self, compressed_store,
                                                  payload):
        def cold_query(max_workers, use_processes=False):
            # Fresh store object = empty column cache: every segment pays
            # its read + decompress + decode, the work threads overlap.
            fresh = ResultStore(compressed_store.root)
            query = (fresh.query("fleet_events", max_workers=max_workers,
                                 use_processes=use_processes)
                     .where("target", "==", "device")
                     .where("latency_ms", "<", 200.0))
            arrays = query.arrays("latency_ms", "energy_mj", "device_name",
                                  "model_name")
            return arrays, query.stats

        expected, expected_stats = cold_query(1)
        for workers, processes in ((2, False), (8, False), (2, True)):
            actual, stats = cold_query(workers, processes)
            label = f"workers={workers} processes={processes}"
            for name in expected:
                assert expected[name].dtype == actual[name].dtype, label
                assert np.array_equal(expected[name], actual[name]), label
            assert stats == expected_stats, label

        def grouped_at(workers, processes=False):
            fresh = ResultStore(compressed_store.root)
            return (fresh.query("fleet_events", max_workers=workers,
                                use_processes=processes)
                    .group_by("device_name")
                    .agg(p99=("latency_ms", "p99"),
                         total=("energy_mj", "sum")).aggregate())

        assert grouped_at(1) == grouped_at(8) == grouped_at(2, True)

        def cold_scan(max_workers, use_processes=False):
            # Timed variant without predicates: the per-segment work is
            # read + decompress + decode (all GIL-releasing), which is
            # what thread fan-out can actually overlap.
            fresh = ResultStore(compressed_store.root)
            return (fresh.query("fleet_events", max_workers=max_workers,
                                use_processes=use_processes)
                    .arrays("latency_ms", "energy_mj", "device_name",
                            "model_name"))

        _, sequential_s = best_of(3, cold_scan, 1)
        _, threads2_s = best_of(3, cold_scan, 2)
        _, threads8_s = best_of(3, cold_scan, 8)
        _, processes2_s = best_of(2, cold_scan, 2, True)
        payload["parallel_scans"] = {
            "segments": len(compressed_store.segments_for("fleet_events")),
            "rows": compressed_store.num_rows("fleet_events"),
            "sequential_s": sequential_s,
            "threads2_s": threads2_s,
            "threads8_s": threads8_s,
            "processes2_s": processes2_s,
            "threads2_speedup": sequential_s / threads2_s,
            "threads8_speedup": sequential_s / threads8_s,
            "processes2_speedup": sequential_s / processes2_s,
        }
        # Recorded, not gated: thread wins ride on GIL-releasing
        # decompress/decode work and vary with segment size and core count.

    def test_d_served_byte_identity(self, query_store, payload):
        params = [("kind", "fleet_events"),
                  ("where", "target in device|cloud"),
                  ("where", "latency_ms<200"),
                  ("group_by", "device_name,backend"),
                  ("agg", "latency_ms:mean,p99"),
                  ("agg", "energy_mj:sum")]
        spec = QuerySpec.from_params(params)
        query_string = urllib.parse.urlencode(params)
        app = ServeApp(query_store.root, port=0, refresh_s=5.0)
        with ServerThread(app) as server:
            with urllib.request.urlopen(
                    f"{server.url}/v1/query?{query_string}",
                    timeout=30) as response:
                served = json.loads(response.read())
        snapshot = ResultStore(query_store.root).open_snapshot(
            generation=served["generation"])
        offline = snapshot.query(spec.kind)
        spec.apply(offline)
        assert json.dumps(served["rows"], sort_keys=True) \
            == json.dumps(offline.aggregate(), sort_keys=True)
        assert served["stats"]["rows_matched"] == offline.stats.rows_matched
        payload["served_identity"] = {
            "generation": served["generation"],
            "groups": len(served["rows"]),
            "rows_matched": served["stats"]["rows_matched"],
        }

    def test_write_baseline(self, payload):
        for section in ("grouped_kernels", "dict_predicates",
                        "parallel_scans", "served_identity"):
            assert section in payload, \
                f"missing {section} (earlier test failed?)"
        path = write_baseline(
            Path(__file__).resolve().parent.parent / "BENCH_query.json",
            payload)
        print(f"\nwrote {path}")
        print(f"grouped kernels: "
              f"{payload['grouped_kernels']['speedup']:.1f}x, "
              f"dict predicates: "
              f"{payload['dict_predicates']['speedup']:.1f}x, "
              f"parallel threads x8: "
              f"{payload['parallel_scans']['threads8_speedup']:.2f}x")
