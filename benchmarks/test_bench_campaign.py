"""Perf baseline for out-of-core sharded campaigns (the 10M-user day).

The campaign coordinator (:mod:`repro.campaign`) shards a population
into contiguous user ranges, simulates each shard into its own store,
and merges by **segment adoption** — hard links plus one manifest
commit — instead of rewriting rows.  The read side maps v3 columnar
payloads directly (``mmap`` + per-column ``frombuffer`` views) instead
of materialising ``.npy`` sidecars.  This module measures and enforces:

* **adoption merge speedup** — merging the shard stores by segment
  adoption must beat the row-rewrite alternative (read every shard's
  arrays, re-ingest through ``append_batch``, re-checksum every byte)
  by >= 5x, with bit-identical query results.  The gap is algorithmic:
  adoption is O(segments), re-ingestion O(rows).
* **zero-copy read speedup** — cold reads of columnar segments through
  the mmap path must beat the sidecar-materialisation baseline
  (decode all columns, write ``.npy`` mirrors, read them back) by
  >= 5x, bit-identically.
* **sharded end-to-end wall time** — recorded, *not* gated: on a
  single-core box (this repo's CI floor) sharding cannot beat one
  process on wall clock, so gating it would measure the machine, not
  the code.  The per-shard process isolation it buys — flat memory in
  population size — is what makes the 10M-user record below possible
  at all.  On multi-core hardware the same numbers show the near-linear
  scaling.

The ``ten_million_user_day`` section of ``BENCH_campaign.json`` records
the one-box 10M-user Ambient-workload day (produced by a full-scale
``repro campaign run``); benchmark runs at smaller scales carry the
committed record forward rather than overwriting it.

Results land in ``BENCH_campaign.json`` at the repo root, next to the
other ``BENCH_*.json`` baselines.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path

import numpy as np
import pytest
from conftest import (BENCH_SCALE, assert_speedup,
                      write_baseline, write_result)

from repro.campaign import ambient_spec, run_campaign
from repro.fleet import FleetSimulator
from repro.store import ResultStore, kind_for, merge_stores
from repro.store.segment import materialise_sidecar, mmap_sidecar_dir

#: Where the machine-readable baseline lands (repo root, BENCH_* trajectory).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

#: Acceptance: adoption merge vs row-rewrite re-ingestion merge.
MIN_MERGE_SPEEDUP = 5.0

#: Acceptance: zero-copy mmap columnar reads vs sidecar materialisation.
MIN_READ_SPEEDUP = 5.0

#: Benchmark population (Ambient workload, ~4 events/user/day), scaled like
#: every other baseline; REPRO_BENCH_CAMPAIGN_USERS overrides the base size.
CAMPAIGN_USERS = max(
    int(int(os.environ.get("REPRO_BENCH_CAMPAIGN_USERS", "40000"))
        * BENCH_SCALE), 200)
SHARDS = 8
HORIZON_S = 86400.0
BIN_S = 900.0

#: Module-level accumulator; the final test writes it out as JSON.
RESULTS: dict = {}


@pytest.fixture(scope="module")
def spec():
    return ambient_spec(CAMPAIGN_USERS, seed=0, horizon_s=HORIZON_S)


@pytest.fixture(scope="module")
def campaign(spec, tmp_path_factory):
    """The sharded campaign run (also the sharded timing measurement)."""
    root = tmp_path_factory.mktemp("bench_campaign") / "sharded"
    started = time.perf_counter()
    result = run_campaign(spec, root, shards=SHARDS, bin_seconds=BIN_S)
    wall = time.perf_counter() - started
    RESULTS["sharded_campaign"] = {
        "users": result.users,
        "shards": SHARDS,
        "events": result.events,
        "offloaded": result.offloaded,
        "simulate_seconds": result.simulate_seconds,
        "merge_seconds": result.merge_seconds,
        "wall_seconds": wall,
        "events_per_second": result.events / wall,
    }
    return result


@pytest.fixture(scope="module")
def single_store(spec, tmp_path_factory):
    """Unsharded single-process reference (the ungated wall-time baseline)."""
    path = tmp_path_factory.mktemp("bench_campaign") / "single.store"
    started = time.perf_counter()
    rows = FleetSimulator(spec, max_workers=1).run_to_store(path)
    seconds = time.perf_counter() - started
    RESULTS["single_process"] = {
        "users": spec.num_users,
        "events": rows,
        "seconds": seconds,
        "events_per_second": rows / seconds,
    }
    return ResultStore(path)


def test_bench_sharded_bit_identical(campaign, single_store):
    """Acceptance: the sharded merged store equals the unsharded run exactly.

    The wall-time ratio is recorded ungated (see module docstring): on one
    core it hovers near process-spawn overhead; on N cores it approaches N.
    """
    merged = campaign.store
    assert merged.verify_integrity() == len(merged.segments)
    reference = single_store.query("fleet_events").arrays()
    sharded = merged.query("fleet_events").arrays()
    for name, array in reference.items():
        assert np.array_equal(sharded[name], array), \
            f"column {name} differs between sharded and unsharded runs"
        assert sharded[name].dtype == array.dtype
    RESULTS["sharded_vs_single"] = {
        "events": int(reference["user_id"].size),
        "bit_identical_columns": True,
        "wall_ratio_ungated": RESULTS["single_process"]["seconds"]
        / RESULTS["sharded_campaign"]["wall_seconds"],
    }


def _shard_stores(campaign):
    root = Path(campaign.store_root).parent
    stores = [ResultStore(path) for path in sorted(root.glob("shard-*.store"))]
    assert len(stores) == SHARDS
    return stores


def test_bench_adoption_merge_vs_reingest(campaign, tmp_path_factory):
    """Acceptance: segment-adoption merge >= 5x re-ingestion, bit-identical."""
    base = tmp_path_factory.mktemp("bench_campaign_merge")
    shard_stores = _shard_stores(campaign)
    total_rows = sum(store.num_rows("fleet_events") for store in shard_stores)

    # Row-rewrite baseline: read every shard's columns, push them back
    # through append_batch (decode + re-pack + re-checksum every byte).
    reingested = ResultStore(base / "reingest.store")
    kind = kind_for("fleet_events")
    started = time.perf_counter()
    with reingested.writer(rows_per_segment=65536) as writer:
        for store in shard_stores:
            for meta in store.segments_for("fleet_events"):
                writer.append_batch(kind, dict(store.columns_for(meta)))
    reingest_seconds = time.perf_counter() - started
    assert writer.rows_committed == total_rows

    # The adoption path: hard links + one manifest commit.
    adopted = ResultStore(base / "adopt.store")
    started = time.perf_counter()
    stats = merge_stores(adopted, shard_stores, kinds=("fleet_events",))
    adopt_seconds = time.perf_counter() - started
    assert stats.rows_adopted == total_rows
    assert stats.files_copied == 0, "same filesystem: everything hard-links"

    left = adopted.query("fleet_events").arrays()
    right = reingested.query("fleet_events").arrays()
    for name, array in left.items():
        assert np.array_equal(array, right[name]), \
            f"column {name} differs between merge strategies"

    speedup = reingest_seconds / adopt_seconds
    RESULTS["merge"] = {
        "rows": total_rows,
        "segments_adopted": stats.segments_adopted,
        "files_linked": stats.files_linked,
        "reingest_seconds": reingest_seconds,
        "adopt_seconds": adopt_seconds,
        "speedup": speedup,
        "bit_identical_columns": True,
    }
    assert_speedup(speedup, MIN_MERGE_SPEEDUP, "adoption merge")


def test_bench_zero_copy_reads(campaign):
    """Acceptance: mmap columnar reads >= 5x sidecar materialisation, cold."""
    merged = campaign.store
    metas = merged.segments_for("fleet_events")
    kind = kind_for("fleet_events")

    def touch(columns):
        total = 0
        for column in kind.columns:
            array = np.asarray(columns[column.name])
            total += array.size
        return total

    def clear_sidecars():
        for meta in metas:
            sidecar = mmap_sidecar_dir(merged.segments_dir, meta)
            if sidecar.is_dir():
                shutil.rmtree(sidecar)

    # Baseline: the pre-PR mmap story — decode all columns, mirror them to
    # .npy sidecar files, serve memmaps of the mirror.  Cold every round.
    sidecar_seconds = []
    for _ in range(3):
        clear_sidecars()
        started = time.perf_counter()
        rows = sum(
            touch(materialise_sidecar(merged.segments_dir, meta, kind))
            for meta in metas)
        sidecar_seconds.append(time.perf_counter() - started)
    clear_sidecars()

    # Zero-copy: map the .colseg payload, expose frombuffer views.
    mmap_seconds = []
    for _ in range(3):
        store = ResultStore(merged.root, mmap=True)  # cold: no column cache
        started = time.perf_counter()
        mapped_rows = sum(touch(store.columns_for(meta)) for meta in metas)
        mmap_seconds.append(time.perf_counter() - started)
    assert mapped_rows == rows

    # Identity: both paths serve the same values.
    mapped_store = ResultStore(merged.root, mmap=True)
    for meta in metas[:2]:
        mirrored = materialise_sidecar(merged.segments_dir, meta, kind)
        mapped = mapped_store.columns_for(meta)
        for column in kind.columns:
            assert np.array_equal(np.asarray(mapped[column.name]),
                                  np.asarray(mirrored[column.name]))
    clear_sidecars()

    speedup = min(sidecar_seconds) / min(mmap_seconds)
    RESULTS["zero_copy_reads"] = {
        "segments": len(metas),
        "rows": int(rows / len(kind.columns)),
        "sidecar_seconds": min(sidecar_seconds),
        "mmap_seconds": min(mmap_seconds),
        "speedup": speedup,
        "bit_identical_columns": True,
    }
    assert_speedup(speedup, MIN_READ_SPEEDUP, "zero-copy columnar reads")


def test_bench_compressed_campaign_round_trip(spec, campaign,
                                              tmp_path_factory):
    """Compressed campaigns stay bit-identical; the size ratio is recorded."""
    root = tmp_path_factory.mktemp("bench_campaign_z") / "compressed"
    result = run_campaign(spec, root, shards=2, bin_seconds=BIN_S,
                          compress=True, use_processes=False)

    def store_bytes(store):
        return sum((store.segments_dir / meta.data_filename).stat().st_size
                   for meta in store.segments)

    reference = campaign.store.query("fleet_events").arrays()
    compressed = result.store.query("fleet_events").arrays()
    for name, array in reference.items():
        assert np.array_equal(compressed[name], array), name
    plain, packed = store_bytes(campaign.store), store_bytes(result.store)
    RESULTS["compression"] = {
        "plain_bytes": plain,
        "compressed_bytes": packed,
        "ratio": packed / plain,
    }
    assert packed <= plain


def test_write_campaign_baseline():
    """Persist the baseline, carrying forward the committed 10M-user record."""
    if not RESULTS:  # pragma: no cover - only when run in isolation
        pytest.skip("timing tests of this module did not run")
    payload = {
        "benchmark": "campaign_perf_baseline",
        "scale": BENCH_SCALE,
        "users": CAMPAIGN_USERS,
        "shards": SHARDS,
        "min_required_merge_speedup": MIN_MERGE_SPEEDUP,
        "min_required_read_speedup": MIN_READ_SPEEDUP,
        **RESULTS,
    }
    if BASELINE_PATH.exists():
        previous = json.loads(BASELINE_PATH.read_text())
        record = previous.get("ten_million_user_day")
        # The full-scale record outranks anything a scaled-down run saw.
        if record and record.get("users", 0) > CAMPAIGN_USERS:
            payload["ten_million_user_day"] = record
    write_baseline(BASELINE_PATH, payload)

    lines = [f"Campaign perf baseline (scale {BENCH_SCALE}, "
             f"{CAMPAIGN_USERS} users, {SHARDS} shards):"]
    for name, entry in RESULTS.items():
        fields = ", ".join(f"{key}={value:.4g}" if isinstance(value, float)
                           else f"{key}={value}"
                           for key, value in entry.items())
        lines.append(f"{name}: {fields}")
    write_result("bench_campaign_baseline", lines)

    assert RESULTS["sharded_vs_single"]["bit_identical_columns"]
    assert RESULTS["merge"]["bit_identical_columns"]
    assert RESULTS["zero_copy_reads"]["bit_identical_columns"]
    assert_speedup(RESULTS["merge"]["speedup"], MIN_MERGE_SPEEDUP,
                   "adoption merge")
    assert_speedup(RESULTS["zero_copy_reads"]["speedup"], MIN_READ_SPEEDUP,
                   "zero-copy columnar reads")
