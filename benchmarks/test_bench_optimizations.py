"""Sec. 6.1: adoption of model-level optimisations in the wild."""

from conftest import write_result

from repro.core.optimizations import analyze_optimizations


def test_sec61_optimization_adoption(benchmark, analysis_2021):
    """Sec. 6.1: clustering/pruning absent; quantisation is the only adopted pass."""
    adoption = benchmark(analyze_optimizations, analysis_2021.models)

    lines = [
        "Sec. 6.1: model-level optimisation adoption",
        f"models analysed              : {adoption.total_models}",
        f"weight clustering (cluster_) : {adoption.clustered_models} "
        f"({100 * adoption.clustering_fraction:.2f}%)  [paper: 0]",
        f"pruning (prune_)             : {adoption.pruned_models} "
        f"({100 * adoption.pruning_fraction:.2f}%)  [paper: 0]",
        f"dequantize layers            : {adoption.dequantize_models} "
        f"({100 * adoption.dequantize_fraction:.2f}%)  [paper: 10.3%]",
        f"int8 weights                 : {adoption.int8_weight_models} "
        f"({100 * adoption.int8_weight_fraction:.2f}%)  [paper: 20.27%]",
        f"int8 activations             : {adoption.int8_activation_models} "
        f"({100 * adoption.int8_activation_fraction:.2f}%)  [paper: 10.31%]",
        f"near-zero weights            : {100 * adoption.mean_near_zero_weight_fraction:.2f}% "
        "[paper: 3.15%]",
    ]
    write_result("sec61_optimizations", lines)

    assert adoption.clustered_models == 0
    assert adoption.pruned_models == 0
    assert 0.03 < adoption.dequantize_fraction < 0.30
    assert adoption.int8_weight_fraction >= adoption.dequantize_fraction
    assert adoption.int8_activation_fraction <= adoption.int8_weight_fraction
    assert 0.005 < adoption.mean_near_zero_weight_fraction < 0.10
