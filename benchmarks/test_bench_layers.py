"""Fig. 6: model layer composition per input modality."""

from conftest import write_result

from repro.core import reports


def test_fig6_layer_composition(benchmark, analysis_2021):
    """Fig. 6: average layer-category share per modality (image / text / audio)."""
    composition = benchmark(reports.layer_composition_by_modality, analysis_2021)

    lines = ["Fig. 6: layer composition per input modality (% of layers)"]
    for modality, categories in composition.items():
        lines.append(f"-- {modality}")
        for category, share in sorted(categories.items(), key=lambda i: -i[1]):
            lines.append(f"   {category:<12} {share:5.1f}%")
    write_result("fig6_layer_composition", lines)

    image = composition["image"]
    # Convolutions dominate vision models (paper: conv is the top category).
    conv_share = image.get("conv", 0.0) + image.get("depth_conv", 0.0)
    assert conv_share > 25.0
    # Text/audio models have a larger dense share than vision models.
    if "text" in composition:
        assert composition["text"].get("dense", 0.0) > image.get("dense", 0.0)
