"""Figs. 8 and 9: on-device latency across the six-device fleet."""

import numpy as np
from conftest import write_result

from repro.core import reports


def test_fig8_latency_vs_flops(benchmark, fleet_cpu_results):
    """Fig. 8: latency vs FLOPs is correlated but far from linear per device."""
    points_by_device = benchmark(
        lambda: {name: reports.latency_vs_flops(results)
                 for name, results in fleet_cpu_results.items()})

    lines = ["Fig. 8: latency vs FLOPs (Pearson correlation of log-log points per device)"]
    for name, points in points_by_device.items():
        latencies = np.log10([max(1e-3, p[0]) for p in points])
        flops = np.log10([max(1.0, p[1]) for p in points])
        correlation = float(np.corrcoef(latencies, flops)[0, 1])
        lines.append(f"{name:<6} models={len(points):<4} log-log corr={correlation:.3f}")
    write_result("fig8_latency_vs_flops", lines)

    for name, points in points_by_device.items():
        latencies = np.log10([max(1e-3, p[0]) for p in points])
        flops = np.log10([max(1.0, p[1]) for p in points])
        correlation = float(np.corrcoef(latencies, flops)[0, 1])
        # Correlated (FLOPs matter) but imperfect (FLOPs are not a good proxy).
        assert 0.3 < correlation < 0.999


def test_fig9_latency_ecdf_per_device(benchmark, fleet_cpu_results):
    """Fig. 9: latency ECDFs; tier and generation orderings must hold."""
    ecdfs = benchmark(reports.latency_ecdf_by_device, fleet_cpu_results)

    means = {name: float(np.mean(ecdf.values)) for name, ecdf in ecdfs.items()}
    lines = ["Fig. 9: latency per device",
             "device  mean_ms  median_ms  p90_ms"]
    for name, ecdf in ecdfs.items():
        lines.append(f"{name:<6} {means[name]:8.1f} {ecdf.median:9.1f} "
                     f"{ecdf.quantile(0.9):8.1f}")
    lines.append("")
    lines.append(f"A20 vs S21 slowdown: {means['A20'] / means['S21']:.2f}x (paper: 3.4x)")
    lines.append(f"A70 vs S21 slowdown: {means['A70'] / means['S21']:.2f}x (paper: 1.51x)")
    lines.append(f"Q845/Q855/Q888 mean latency: {means['Q845']:.0f}/{means['Q855']:.0f}/"
                 f"{means['Q888']:.0f} ms (paper: 76/58/35 ms)")
    write_result("fig9_latency_ecdf", lines)

    # Tier ordering: low < mid < high; generation ordering: 845 < 855 < 888.
    assert means["A20"] > means["A70"] > means["S21"]
    assert means["Q845"] > means["Q855"] > means["Q888"]
    # The open-deck Q888 board edges out the S21 phone with the same SoC.
    assert means["Q888"] <= means["S21"]
    # Low tier is several times slower than high end.
    assert means["A20"] / means["S21"] > 2.0
