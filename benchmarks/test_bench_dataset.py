"""Table 2 (dataset snapshots), Fig. 4 (models per framework/category) and the
Appendix Table 5 format registry."""

from conftest import write_result

from repro.core import reports
from repro.formats.registry import FORMAT_REGISTRY, total_format_count


def test_table2_dataset_snapshots(benchmark, gauge, analysis_2020, analysis_2021, bench_scale):
    """Table 2: total apps, apps w/ frameworks, apps w/ models, total and unique models."""
    row_2021 = benchmark(reports.dataset_table, analysis_2021)
    row_2020 = reports.dataset_table(analysis_2020)

    lines = [f"Table 2 (scale={bench_scale})",
             "metric                | 2020        | 2021"]
    for label, getter in (
        ("Total apps", lambda r: f"{r.total_apps}"),
        ("Apps w/ frameworks", lambda r: f"{r.apps_with_frameworks} ({r.apps_with_frameworks_pct:.1f}%)"),
        ("Apps w/ models", lambda r: f"{r.apps_with_models} ({r.apps_with_models_pct:.1f}%)"),
        ("Total models", lambda r: f"{r.total_models}"),
        ("Unique models", lambda r: f"{r.unique_models} ({r.unique_models_pct:.1f}%)"),
    ):
        lines.append(f"{label:<21} | {getter(row_2020):<11} | {getter(row_2021)}")
    write_result("table2_dataset", lines)

    assert row_2021.total_models > row_2020.total_models
    assert row_2021.apps_with_frameworks >= row_2021.apps_with_models
    assert 0 < row_2021.unique_models_pct < 50


def test_fig4_models_per_framework_and_category(benchmark, analysis_2021):
    """Fig. 4: model counts per Play category, broken down by framework."""
    table = benchmark(reports.models_per_framework_and_category, analysis_2021)

    lines = ["Fig. 4: models per framework and category"]
    for category, frameworks in table.items():
        total = sum(frameworks.values())
        breakdown = ", ".join(f"{fw}={count}" for fw, count in sorted(frameworks.items()))
        lines.append(f"{category:<22} total={total:<4} ({breakdown})")
    write_result("fig4_models_per_category", lines)

    by_framework = analysis_2021.models_by_framework()
    assert by_framework["tflite"] == max(by_framework.values())
    top_categories = list(table)[:6]
    assert any(cat in top_categories for cat in ("COMMUNICATION", "FINANCE", "PHOTOGRAPHY"))


def test_appendix_table5_format_registry(benchmark):
    """Appendix Table 5: the 69 known framework/extension pairs."""
    count = benchmark(total_format_count)
    lines = ["Appendix Table 5: frameworks and validated formats"]
    for spec in FORMAT_REGISTRY:
        lines.append(f"{spec.framework:<12} {', '.join(spec.extensions)}")
    write_result("table5_format_registry", lines)
    assert count == 69
