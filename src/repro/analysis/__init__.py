"""Statistical helpers used by the reports and benchmark harness."""

from repro.analysis.ecdf import Ecdf
from repro.analysis.stats import (
    geometric_mean,
    kernel_density,
    remove_outliers_iqr,
    summary_statistics,
)

__all__ = [
    "Ecdf",
    "geometric_mean",
    "kernel_density",
    "remove_outliers_iqr",
    "summary_statistics",
]
