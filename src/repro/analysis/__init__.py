"""Statistical helpers used by the reports and benchmark harness."""

from repro.analysis.ecdf import Ecdf
from repro.analysis.stats import (
    exponential_decay_scan,
    geometric_mean,
    kernel_density,
    remove_outliers_iqr,
    summary_statistics,
    time_bin_indices,
)

__all__ = [
    "Ecdf",
    "exponential_decay_scan",
    "geometric_mean",
    "kernel_density",
    "remove_outliers_iqr",
    "summary_statistics",
    "time_bin_indices",
]
