"""Empirical cumulative distribution functions (Figs. 9, 13, 14)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Ecdf"]


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF over a sample of values."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("Ecdf requires at least one value")
        object.__setattr__(self, "values", tuple(sorted(float(v) for v in self.values)))

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Ecdf":
        """Build an ECDF from an iterable of samples."""
        return cls(tuple(samples))

    @classmethod
    def from_sorted(cls, samples: Iterable[float]) -> "Ecdf":
        """Build an ECDF from samples already in ascending order.

        Trusts the caller and skips the constructor's re-sort — the fast path
        for the vectorised results store, whose column scans hand over
        ``np.sort``-ed arrays.  Equal inputs produce an ECDF equal to the
        :meth:`from_samples` one.
        """
        values = tuple(float(v) for v in samples)
        if not values:
            raise ValueError("Ecdf requires at least one value")
        ecdf = object.__new__(cls)
        object.__setattr__(ecdf, "values", values)
        return ecdf

    @classmethod
    def from_column(cls, store, kind: str, column: str, **where) -> "Ecdf":
        """Build an ECDF straight from a results-store column.

        ``store`` is a :class:`~repro.store.store.ResultStore`; ``where``
        holds equality filters evaluated with predicate pushdown, e.g.
        ``Ecdf.from_column(store, "executions", "latency_ms",
        device_name="S21")``.
        """
        arrays = store.query(kind).where(**where).arrays(column)
        return cls.from_sorted(np.sort(arrays[column], kind="stable"))

    def __call__(self, value: float) -> float:
        """Fraction of the sample less than or equal to ``value``."""
        return float(np.searchsorted(self.values, value, side="right")) / len(self.values)

    def quantile(self, q: float) -> float:
        """Value below which a fraction ``q`` of the sample lies."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        return float(np.quantile(self.values, q))

    def quantiles(self, qs: Sequence[float]) -> tuple[float, ...]:
        """Several quantiles in one vectorised pass (tail-latency reports)."""
        if any(not 0.0 <= q <= 1.0 for q in qs):
            raise ValueError("every q must be in [0, 1]")
        return tuple(float(v) for v in np.quantile(self.values, list(qs)))

    @property
    def median(self) -> float:
        """Sample median."""
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(np.mean(self.values))

    def curve(self, num_points: int = 100) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(x, y) points of the ECDF curve, suitable for plotting or printing."""
        if num_points <= 1:
            raise ValueError("num_points must be greater than 1")
        xs = np.linspace(self.values[0], self.values[-1], num_points)
        ys = [self(x) for x in xs]
        return tuple(float(x) for x in xs), tuple(ys)
