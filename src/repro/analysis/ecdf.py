"""Empirical cumulative distribution functions (Figs. 9, 13, 14)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Ecdf"]


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF over a sample of values."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("Ecdf requires at least one value")
        object.__setattr__(self, "values", tuple(sorted(float(v) for v in self.values)))

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Ecdf":
        """Build an ECDF from an iterable of samples."""
        return cls(tuple(samples))

    def __call__(self, value: float) -> float:
        """Fraction of the sample less than or equal to ``value``."""
        return float(np.searchsorted(self.values, value, side="right")) / len(self.values)

    def quantile(self, q: float) -> float:
        """Value below which a fraction ``q`` of the sample lies."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        return float(np.quantile(self.values, q))

    @property
    def median(self) -> float:
        """Sample median."""
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(np.mean(self.values))

    def curve(self, num_points: int = 100) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(x, y) points of the ECDF curve, suitable for plotting or printing."""
        if num_points <= 1:
            raise ValueError("num_points must be greater than 1")
        xs = np.linspace(self.values[0], self.values[-1], num_points)
        ys = [self(x) for x in xs]
        return tuple(float(x) for x in xs), tuple(ys)
