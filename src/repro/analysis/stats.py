"""Summary statistics, outlier handling and kernel density estimation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["summary_statistics", "remove_outliers_iqr", "geometric_mean", "kernel_density"]


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean/median/min/max/std of a sample (the shape of the paper's Table 4 rows)."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float


def summary_statistics(values: Iterable[float]) -> SummaryStatistics:
    """Compute the summary statistics of a sample."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SummaryStatistics(
        count=int(data.size),
        mean=float(np.mean(data)),
        median=float(np.median(data)),
        std=float(np.std(data, ddof=1)) if data.size > 1 else 0.0,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
    )


def remove_outliers_iqr(values: Iterable[float], factor: float = 1.5) -> list[float]:
    """Drop values outside ``[Q1 - factor*IQR, Q3 + factor*IQR]``.

    The paper removes outliers before reporting the Fig. 10c efficiency
    medians; this is the standard Tukey fence they imply.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return []
    q1, q3 = np.percentile(data, [25, 75])
    iqr = q3 - q1
    low, high = q1 - factor * iqr, q3 + factor * iqr
    return [float(v) for v in data if low <= v <= high]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot average an empty sample")
    if np.any(data <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(data))))


def kernel_density(values: Iterable[float], num_points: int = 100,
                   log_scale: bool = False) -> tuple[list[float], list[float]]:
    """Gaussian kernel density estimate, as drawn over the Fig. 10 histograms."""
    data = np.asarray(list(values), dtype=float)
    if data.size < 2:
        raise ValueError("kernel density requires at least two samples")
    if log_scale:
        if np.any(data <= 0):
            raise ValueError("log-scale KDE requires positive values")
        data = np.log10(data)
    kde = scipy_stats.gaussian_kde(data)
    xs = np.linspace(float(np.min(data)), float(np.max(data)), num_points)
    ys = kde(xs)
    if log_scale:
        xs = np.power(10.0, xs)
    return [float(x) for x in xs], [float(y) for y in ys]
