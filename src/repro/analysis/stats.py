"""Summary statistics, outlier handling and kernel density estimation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["summary_statistics", "remove_outliers_iqr", "geometric_mean",
           "kernel_density", "exponential_decay_scan", "time_bin_indices"]

#: Per-step log-decay clamp for :func:`exponential_decay_scan`.  A single
#: step decaying by ``e^-30 ~ 1e-13`` already wipes the carried state below
#: float64 relative precision, so larger exponents are indistinguishable from
#: a full reset and clamping them keeps the rescaled prefix sums finite.
DECAY_SCAN_RESET_LOG = 30.0

#: Maximum accumulated log-decay per vectorised chunk of the scan.  Together
#: with the per-step clamp this bounds every intermediate ``exp`` argument by
#: ``DECAY_SCAN_CHUNK_LOG + DECAY_SCAN_RESET_LOG < 709`` (float64 overflow).
DECAY_SCAN_CHUNK_LOG = 500.0


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean/median/min/max/std of a sample (the shape of the paper's Table 4 rows)."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float


def summary_statistics(values: Iterable[float]) -> SummaryStatistics:
    """Compute the summary statistics of a sample."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SummaryStatistics(
        count=int(data.size),
        mean=float(np.mean(data)),
        median=float(np.median(data)),
        std=float(np.std(data, ddof=1)) if data.size > 1 else 0.0,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
    )


def remove_outliers_iqr(values: Iterable[float], factor: float = 1.5) -> list[float]:
    """Drop values outside ``[Q1 - factor*IQR, Q3 + factor*IQR]``.

    The paper removes outliers before reporting the Fig. 10c efficiency
    medians; this is the standard Tukey fence they imply.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return []
    q1, q3 = np.percentile(data, [25, 75])
    iqr = q3 - q1
    low, high = q1 - factor * iqr, q3 + factor * iqr
    return [float(v) for v in data if low <= v <= high]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot average an empty sample")
    if np.any(data <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(data))))


def kernel_density(values: Iterable[float], num_points: int = 100,
                   log_scale: bool = False) -> tuple[list[float], list[float]]:
    """Gaussian kernel density estimate, as drawn over the Fig. 10 histograms."""
    data = np.asarray(list(values), dtype=float)
    if data.size < 2:
        raise ValueError("kernel density requires at least two samples")
    if log_scale:
        if np.any(data <= 0):
            raise ValueError("log-scale KDE requires positive values")
        data = np.log10(data)
    kde = scipy_stats.gaussian_kde(data)
    xs = np.linspace(float(np.min(data)), float(np.max(data)), num_points)
    ys = kde(xs)
    if log_scale:
        xs = np.power(10.0, xs)
    return [float(x) for x in xs], [float(y) for y in ys]


def time_bin_indices(values, width: float,
                     num_bins: Optional[int] = None) -> np.ndarray:
    """Fixed-width bin index of each value (``floor(value / width)``).

    The single binning convention shared by the cloud load profiles, the
    frozen service-table lookup and the store's ``Query.bin`` time-bin
    aggregation — one implementation, so an event lands in the same bin no
    matter which layer asks.  With ``num_bins`` the indices clip into
    ``[0, num_bins - 1]`` (events exactly at the horizon fall into the last
    bin rather than a phantom one).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    bins = (np.asarray(values, dtype=np.float64) // width).astype(np.int64)
    if num_bins is not None:
        if num_bins <= 0:
            raise ValueError("num_bins must be positive when given")
        bins = np.clip(bins, 0, num_bins - 1)
    return bins


def exponential_decay_scan(log_decays: np.ndarray, inputs,
                           initial: float = 0.0) -> np.ndarray:
    """Vectorised first-order decay recurrence ``h[i] = h[i-1]*exp(-z[i]) + b[i]``.

    ``log_decays`` holds the non-negative per-step decay exponents ``z`` and
    ``inputs`` the per-step additions ``b`` (a scalar broadcasts).  Returns
    the full state trajectory ``h`` — the heat accumulator of
    :class:`~repro.devices.thermal.ThermalState` evaluated over a whole event
    vector at once, which is what makes the fleet simulator's event loop a
    handful of array ops instead of a Python loop per event.

    The closed form ``h[i] = exp(-C[i]) * (h0 + sum_j b[j] * exp(C[j]))`` with
    ``C = cumsum(z)`` overflows once ``C`` spreads past ~709, so the scan is
    evaluated over chunks of bounded accumulated decay (boundaries found with
    one ``searchsorted``), carrying the state scalar across chunks.  Per-step
    exponents are clamped at :data:`DECAY_SCAN_RESET_LOG`, which is already a
    full reset within float64 precision.  Dense event streams (small gaps —
    the regime with actual thermal behaviour) collapse to a single chunk.
    """
    z = np.asarray(log_decays, dtype=np.float64)
    if z.ndim != 1:
        raise ValueError("log_decays must be one-dimensional")
    if z.size and float(z.min()) < 0:
        raise ValueError("log_decays must be non-negative")
    b = np.broadcast_to(np.asarray(inputs, dtype=np.float64), z.shape)
    if z.size == 0:
        return np.empty(0, dtype=np.float64)

    z = np.minimum(z, DECAY_SCAN_RESET_LOG)
    cum = np.cumsum(z)
    starts = np.searchsorted(
        cum, np.arange(0.0, float(cum[-1]), DECAY_SCAN_CHUNK_LOG), side="left")
    starts = np.unique(np.append(starts, 0))

    out = np.empty_like(b)
    carry = float(initial)
    for index, lo in enumerate(starts):
        hi = starts[index + 1] if index + 1 < len(starts) else z.size
        base = cum[lo - 1] if lo else 0.0
        local = cum[lo:hi] - base          # in (0, CHUNK_LOG + RESET_LOG]
        growth = np.exp(local)             # bounded: exp(<~530)
        chunk = (carry + np.cumsum(b[lo:hi] * growth)) / growth
        out[lo:hi] = chunk
        carry = float(chunk[-1])
    return out
