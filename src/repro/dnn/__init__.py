"""Deep neural network graph intermediate representation and model zoo.

This subpackage provides a framework-neutral representation of a DNN as a
directed acyclic graph of :class:`~repro.dnn.layers.Layer` objects, together
with per-layer FLOP/parameter accounting, synthetic-but-deterministic weight
tensors, a zoo of mobile architectures found by the paper in the wild
(MobileNet, FSSD, BlazeFace, segmentation nets, text/audio/sensor models),
and model-level transformation passes (quantisation, pruning, clustering,
fine-tuning).
"""

from repro.dnn.tensor import DType, TensorSpec, WeightTensor
from repro.dnn.layers import Layer, LayerCategory, OpType
from repro.dnn.graph import Graph, GraphMetadata, Modality

__all__ = [
    "DType",
    "TensorSpec",
    "WeightTensor",
    "Layer",
    "LayerCategory",
    "OpType",
    "Graph",
    "GraphMetadata",
    "Modality",
]
