"""Weight clustering pass and detection (Sec. 6.1, "Clustering").

Weight clustering replaces distinct weight values by their cluster centroids;
TensorFlow's implementation marks clustered layers with a ``cluster_`` name
prefix.  The paper reports that *no* model in the wild used clustering, which
the adoption analysis in :mod:`repro.core.optimizations` reproduces; this
module still implements the pass so the ablation benchmarks can quantify what
deploying it would (and would not) buy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Graph
from repro.dnn.layers import Layer

__all__ = ["ClusteringReport", "cluster", "clustering_report"]

#: Layer-name prefix added by the TensorFlow model-optimisation toolkit.
CLUSTER_PREFIX = "cluster_"


@dataclass(frozen=True)
class ClusteringReport:
    """Per-model clustering facts."""

    has_cluster_prefix: bool
    clustered_layer_count: int
    num_clusters: int


def cluster(graph: Graph, num_clusters: int = 16) -> Graph:
    """Return a weight-clustered copy of ``graph``.

    Clustering does not change tensor shapes or dtypes — only the number of
    distinct values — so runtime memory and latency are unchanged (which is
    exactly the paper's point: the optimisation targets compressibility only).
    The pass records the cluster count in the layer attributes and prefixes
    clustered layer names with ``cluster_``.
    """
    if num_clusters < 2:
        raise ValueError("num_clusters must be at least 2")

    renames: dict[str, str] = {}

    def convert(layer: Layer) -> Layer:
        new_name = layer.name
        if layer.weights and not layer.name.startswith(CLUSTER_PREFIX):
            new_name = CLUSTER_PREFIX + layer.name
        renames[layer.name] = new_name
        attrs = dict(layer.attrs)
        if layer.weights:
            attrs["num_clusters"] = num_clusters
        return Layer(
            name=new_name,
            op=layer.op,
            inputs=tuple(renames.get(dep, dep) for dep in layer.inputs),
            output_spec=layer.output_spec,
            weights=layer.weights,
            attrs=attrs,
            activation_dtype=layer.activation_dtype,
            fused_activation=layer.fused_activation,
        )

    clustered = graph.map_layers(convert)
    return clustered.with_metadata(
        extra={**graph.metadata.extra, "clustering": str(num_clusters)}
    )


def clustering_report(graph: Graph) -> ClusteringReport:
    """Inspect clustering traces on a graph (Sec. 6.1 analysis)."""
    clustered = [
        layer for layer in graph.layers if layer.name.startswith(CLUSTER_PREFIX)
    ]
    num_clusters = 0
    for layer in clustered:
        num_clusters = max(num_clusters, int(layer.attrs.get("num_clusters", 0)))
    return ClusteringReport(
        has_cluster_prefix=bool(clustered),
        clustered_layer_count=len(clustered),
        num_clusters=num_clusters,
    )
