"""Weight pruning pass and sparsity measurement (Sec. 6.1, "Pruning").

The paper searches for TFLite's ``prune_`` layer-name prefix (present during
training, usually stripped for inference) and, independently, measures how
many weights are near zero (within 1e-9) to gauge the head-room for
magnitude-based pruning — they report 3.15% near-zero weights overall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Graph
from repro.dnn.layers import Layer

__all__ = ["PruningReport", "prune", "measure_sparsity", "pruning_report"]

#: Layer-name prefix added by the TensorFlow model-optimisation toolkit.
PRUNE_PREFIX = "prune_"


@dataclass(frozen=True)
class PruningReport:
    """Per-model pruning facts."""

    has_prune_prefix: bool
    near_zero_weight_fraction: float
    pruned_layer_count: int


def prune(graph: Graph, sparsity: float = 0.5, keep_prefix: bool = True) -> Graph:
    """Return a magnitude-pruned copy of ``graph``.

    Every weighted layer gets its weight tensors re-generated with the target
    ``sparsity`` and, when ``keep_prefix`` is true, the training-time
    ``prune_`` prefix is kept on the layer name (as a model exported without
    stripping would look).
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")

    renames: dict[str, str] = {}

    def convert(layer: Layer) -> Layer:
        new_name = layer.name
        if layer.weights and keep_prefix and not layer.name.startswith(PRUNE_PREFIX):
            new_name = PRUNE_PREFIX + layer.name
        renames[layer.name] = new_name
        new_weights = tuple(
            w.with_sparsity(sparsity) if w.num_parameters > 1 else w
            for w in layer.weights
        )
        return Layer(
            name=new_name,
            op=layer.op,
            inputs=tuple(renames.get(dep, dep) for dep in layer.inputs),
            output_spec=layer.output_spec,
            weights=new_weights,
            attrs=dict(layer.attrs),
            activation_dtype=layer.activation_dtype,
            fused_activation=layer.fused_activation,
        )

    pruned = graph.map_layers(convert)
    return pruned.with_metadata(extra={**graph.metadata.extra, "pruning": f"{sparsity:.2f}"})


def measure_sparsity(graph: Graph, tolerance: float = 1e-9) -> float:
    """Parameter-weighted fraction of near-zero weights across the model."""
    total = 0
    near_zero = 0.0
    for layer in graph.layers:
        for tensor in layer.weights:
            sample_sparsity = tensor.measured_sparsity(tolerance)
            near_zero += sample_sparsity * tensor.num_parameters
            total += tensor.num_parameters
    if total == 0:
        return 0.0
    return near_zero / total


def pruning_report(graph: Graph, tolerance: float = 1e-9) -> PruningReport:
    """Inspect pruning traces on a graph (Sec. 6.1 analysis)."""
    pruned_layers = [
        layer for layer in graph.layers if layer.name.startswith(PRUNE_PREFIX)
    ]
    return PruningReport(
        has_prune_prefix=bool(pruned_layers),
        near_zero_weight_fraction=measure_sparsity(graph, tolerance),
        pruned_layer_count=len(pruned_layers),
    )
