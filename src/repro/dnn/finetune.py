"""Transfer-learning (fine-tuning) derivative generator (Sec. 4.5).

The paper detects fine-tuning by comparing per-layer weight checksums between
models: 9.02% of non-duplicate models share at least 20% of their weights with
another model, and 4.2% differ in at most three layers.  To reproduce that,
the app-store generator needs models that *are* fine-tuned derivatives of a
common base; this module produces them by re-seeding the weights of the last
``k`` weighted layers of a base graph while leaving the feature-extractor
layers untouched.
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.dnn.layers import Layer

__all__ = ["finetune_last_layers", "shared_layer_fraction"]


def finetune_last_layers(graph: Graph, num_layers: int = 2, *, seed_offset: int = 1,
                         name: str | None = None) -> Graph:
    """Return a copy of ``graph`` with the last ``num_layers`` weighted layers retrained.

    Parameters
    ----------
    graph:
        Base (typically off-the-shelf, pre-trained) model.
    num_layers:
        How many trailing weighted layers receive new weights.
    seed_offset:
        Added to the original weight seeds so distinct fine-tunings of the same
        base produce distinct weights.
    name:
        New model name; defaults to ``"<base>_finetuned"``.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be at least 1")
    weighted_names = [layer.name for layer in graph.layers if layer.weights]
    if not weighted_names:
        raise ValueError("graph has no weighted layers to fine-tune")
    retrain = set(weighted_names[-num_layers:])

    def convert(layer: Layer) -> Layer:
        if layer.name not in retrain:
            return layer
        new_weights = tuple(w.with_seed(w.seed + seed_offset) for w in layer.weights)
        return Layer(
            name=layer.name,
            op=layer.op,
            inputs=layer.inputs,
            output_spec=layer.output_spec,
            weights=new_weights,
            attrs=dict(layer.attrs),
            activation_dtype=layer.activation_dtype,
            fused_activation=layer.fused_activation,
        )

    derived = graph.map_layers(convert)
    return derived.with_metadata(
        name=name or f"{graph.name}_finetuned",
        extra={**graph.metadata.extra, "finetuned_from": graph.name,
               "finetuned_layers": str(num_layers)},
    )


def shared_layer_fraction(model: Graph, base: Graph) -> float:
    """Convenience wrapper over :meth:`Graph.shared_weight_fraction`."""
    return model.shared_weight_fraction(base)
