"""Model quantisation passes (Sec. 6.1, "Quantisation").

The paper measures quantisation adoption by (i) the presence of ``dequantize``
layers, (ii) the fraction of models whose weight tensors are stored as int8
and (iii) the fraction whose activations are int8.  It also discusses hybrid
schemes (A16W8) supported by recent NPUs but not found in the wild.  These
passes produce exactly those artefacts on a graph so the adoption analysis has
something real to detect.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.dnn.graph import Graph
from repro.dnn.layers import Layer, OpType
from repro.dnn.tensor import DType, TensorSpec

__all__ = ["QuantizationScheme", "QuantizationReport", "quantize", "quantization_report"]


class QuantizationScheme(str, Enum):
    """Supported post-training quantisation schemes."""

    #: Weights stored as int8, activations remain float (dequantized on load).
    DYNAMIC_RANGE = "dynamic_range"
    #: Weights and activations int8 (full integer quantisation).
    FULL_INT8 = "full_int8"
    #: Weights float16.
    FLOAT16 = "float16"
    #: Hybrid: int8 weights, int16 activations (A16W8 NPU scheme).
    A16W8 = "a16w8"
    #: Weights int8, float interface, no explicit dequantize layers.
    WEIGHT_ONLY = "weight_only"


@dataclass(frozen=True)
class QuantizationReport:
    """Per-model quantisation facts, mirroring the Sec. 6.1 statistics."""

    has_dequantize_layer: bool
    int8_weight_fraction: float
    int8_activation_fraction: float
    weight_dtypes: tuple[str, ...]
    activation_dtypes: tuple[str, ...]

    @property
    def uses_int8_weights(self) -> bool:
        """True when any weight tensor is stored in int8."""
        return self.int8_weight_fraction > 0.0

    @property
    def uses_int8_activations(self) -> bool:
        """True when any layer produces int8 activations."""
        return self.int8_activation_fraction > 0.0


_WEIGHT_DTYPE = {
    QuantizationScheme.DYNAMIC_RANGE: DType.INT8,
    QuantizationScheme.FULL_INT8: DType.INT8,
    QuantizationScheme.FLOAT16: DType.FLOAT16,
    QuantizationScheme.A16W8: DType.INT8,
    QuantizationScheme.WEIGHT_ONLY: DType.INT8,
}

_ACTIVATION_DTYPE = {
    QuantizationScheme.DYNAMIC_RANGE: DType.FLOAT32,
    QuantizationScheme.FULL_INT8: DType.INT8,
    QuantizationScheme.FLOAT16: DType.FLOAT16,
    QuantizationScheme.A16W8: DType.INT16,
    QuantizationScheme.WEIGHT_ONLY: DType.FLOAT32,
}

#: Schemes whose converted models expose a float interface via dequantize nodes.
_SCHEMES_WITH_DEQUANTIZE = (
    QuantizationScheme.DYNAMIC_RANGE,
    QuantizationScheme.FULL_INT8,
    QuantizationScheme.A16W8,
)


def quantize(graph: Graph, scheme: QuantizationScheme = QuantizationScheme.DYNAMIC_RANGE) -> Graph:
    """Return a quantised copy of ``graph`` under the given scheme.

    Weight tensors are re-typed, compute layers' activation dtype is updated,
    and (for schemes that dequantize at runtime) explicit ``dequantize`` layers
    are appended after the graph outputs, matching how converted TFLite models
    expose a float interface over integer internals.
    """
    weight_dtype = _WEIGHT_DTYPE[scheme]
    activation_dtype = _ACTIVATION_DTYPE[scheme]

    def convert(layer: Layer) -> Layer:
        new_weights = tuple(w.with_dtype(weight_dtype) for w in layer.weights)
        new_spec = layer.output_spec
        new_activation = layer.activation_dtype
        if layer.is_compute:
            new_activation = activation_dtype
            if new_spec is not None:
                new_spec = TensorSpec(new_spec.shape, activation_dtype)
        return Layer(
            name=layer.name,
            op=layer.op,
            inputs=layer.inputs,
            output_spec=new_spec,
            weights=new_weights,
            attrs=dict(layer.attrs),
            activation_dtype=new_activation,
            fused_activation=layer.fused_activation,
        )

    quantised = graph.map_layers(convert)

    # Schemes with integer internals expose a float interface via dequantize
    # nodes appended after each graph output.
    if scheme in _SCHEMES_WITH_DEQUANTIZE:
        for index, output in enumerate(quantised.output_layers()):
            if output.output_spec is None:
                continue
            quantised.add_layer(
                Layer(
                    name=f"dequantize_output_{index}",
                    op=OpType.DEQUANTIZE,
                    inputs=(output.name,),
                    output_spec=TensorSpec(output.output_spec.shape, DType.FLOAT32),
                    activation_dtype=DType.FLOAT32,
                )
            )
    return quantised.with_metadata(extra={**graph.metadata.extra, "quantization": scheme.value})


def quantization_report(graph: Graph) -> QuantizationReport:
    """Inspect a graph's weight/activation bit-widths (the Sec. 6.1 analysis)."""
    weighted_layers = [layer for layer in graph.layers if layer.weights]
    compute_layers = [layer for layer in graph.layers if layer.is_compute]
    has_dequantize = any(layer.op == OpType.DEQUANTIZE for layer in graph.layers)

    if weighted_layers:
        int8_weights = sum(1 for layer in weighted_layers if layer.is_quantized)
        weight_fraction = int8_weights / len(weighted_layers)
    else:
        weight_fraction = 0.0

    if compute_layers:
        int8_acts = sum(
            1 for layer in compute_layers if layer.activation_dtype == DType.INT8
        )
        activation_fraction = int8_acts / len(compute_layers)
    else:
        activation_fraction = 0.0

    weight_dtypes = tuple(sorted({
        w.dtype.value for layer in graph.layers for w in layer.weights
    }))
    activation_dtypes = tuple(sorted({
        layer.activation_dtype.value for layer in graph.layers
    }))
    return QuantizationReport(
        has_dequantize_layer=has_dequantize,
        int8_weight_fraction=weight_fraction,
        int8_activation_fraction=activation_fraction,
        weight_dtypes=weight_dtypes,
        activation_dtypes=activation_dtypes,
    )
