"""Layer (operator) definitions with per-layer FLOP / parameter accounting.

Each :class:`Layer` is a vertex of a :class:`~repro.dnn.graph.Graph`.  The
paper estimates a model's total operations "as a function of the cumulative
Multiply-Accumulate (MAC) operations performed by each of the model's layers"
(Sec. 3.2, footnote 3); :meth:`Layer.macs` and :meth:`Layer.flops` implement
exactly that trace-based accounting, and :data:`LayerCategory` reproduces the
layer grouping used in Fig. 6 (activation, conv, dense, depth_conv, math,
other, pooling, quant, resize, slice).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.dnn.tensor import DType, TensorSpec, WeightTensor, memo

__all__ = ["OpType", "LayerCategory", "Layer"]


class OpType(str, Enum):
    """Operator types encountered in mobile DNN graphs."""

    CONV2D = "conv2d"
    DEPTHWISE_CONV2D = "depthwise_conv2d"
    TRANSPOSE_CONV2D = "transpose_conv2d"
    DENSE = "dense"
    LSTM = "lstm"
    GRU = "gru"
    EMBEDDING = "embedding"
    MAX_POOL = "max_pool"
    AVG_POOL = "avg_pool"
    GLOBAL_AVG_POOL = "global_avg_pool"
    RELU = "relu"
    RELU6 = "relu6"
    SIGMOID = "sigmoid"
    TANH = "tanh"
    SOFTMAX = "softmax"
    HARD_SWISH = "hard_swish"
    PRELU = "prelu"
    LEAKY_RELU = "leaky_relu"
    BATCH_NORM = "batch_norm"
    ADD = "add"
    MUL = "mul"
    SUB = "sub"
    DIV = "div"
    MEAN = "mean"
    CONCAT = "concat"
    RESHAPE = "reshape"
    TRANSPOSE = "transpose"
    PAD = "pad"
    RESIZE_BILINEAR = "resize_bilinear"
    RESIZE_NEAREST = "resize_nearest"
    SLICE = "slice"
    STRIDED_SLICE = "strided_slice"
    SPLIT = "split"
    QUANTIZE = "quantize"
    DEQUANTIZE = "dequantize"
    DETECTION_POSTPROCESS = "detection_postprocess"
    ARGMAX = "argmax"
    INPUT = "input"
    OUTPUT = "output"


class LayerCategory(str, Enum):
    """Layer grouping used by the paper's Fig. 6 (layer composition)."""

    ACTIVATION = "activation"
    CONV = "conv"
    DENSE = "dense"
    DEPTH_CONV = "depth_conv"
    MATH = "math"
    OTHER = "other"
    POOLING = "pooling"
    QUANT = "quant"
    RESIZE = "resize"
    SLICE = "slice"


_CATEGORY_BY_OP: dict[OpType, LayerCategory] = {
    OpType.CONV2D: LayerCategory.CONV,
    OpType.TRANSPOSE_CONV2D: LayerCategory.CONV,
    OpType.DEPTHWISE_CONV2D: LayerCategory.DEPTH_CONV,
    OpType.DENSE: LayerCategory.DENSE,
    OpType.LSTM: LayerCategory.DENSE,
    OpType.GRU: LayerCategory.DENSE,
    OpType.EMBEDDING: LayerCategory.DENSE,
    OpType.MAX_POOL: LayerCategory.POOLING,
    OpType.AVG_POOL: LayerCategory.POOLING,
    OpType.GLOBAL_AVG_POOL: LayerCategory.POOLING,
    OpType.RELU: LayerCategory.ACTIVATION,
    OpType.RELU6: LayerCategory.ACTIVATION,
    OpType.SIGMOID: LayerCategory.ACTIVATION,
    OpType.TANH: LayerCategory.ACTIVATION,
    OpType.SOFTMAX: LayerCategory.ACTIVATION,
    OpType.HARD_SWISH: LayerCategory.ACTIVATION,
    OpType.PRELU: LayerCategory.ACTIVATION,
    OpType.LEAKY_RELU: LayerCategory.ACTIVATION,
    OpType.BATCH_NORM: LayerCategory.MATH,
    OpType.ADD: LayerCategory.MATH,
    OpType.MUL: LayerCategory.MATH,
    OpType.SUB: LayerCategory.MATH,
    OpType.DIV: LayerCategory.MATH,
    OpType.MEAN: LayerCategory.MATH,
    OpType.CONCAT: LayerCategory.OTHER,
    OpType.RESHAPE: LayerCategory.OTHER,
    OpType.TRANSPOSE: LayerCategory.OTHER,
    OpType.PAD: LayerCategory.OTHER,
    OpType.RESIZE_BILINEAR: LayerCategory.RESIZE,
    OpType.RESIZE_NEAREST: LayerCategory.RESIZE,
    OpType.SLICE: LayerCategory.SLICE,
    OpType.STRIDED_SLICE: LayerCategory.SLICE,
    OpType.SPLIT: LayerCategory.SLICE,
    OpType.QUANTIZE: LayerCategory.QUANT,
    OpType.DEQUANTIZE: LayerCategory.QUANT,
    OpType.DETECTION_POSTPROCESS: LayerCategory.OTHER,
    OpType.ARGMAX: LayerCategory.OTHER,
    OpType.INPUT: LayerCategory.OTHER,
    OpType.OUTPUT: LayerCategory.OTHER,
}

#: Operators whose arithmetic is dominated by multiply-accumulates.
_MAC_HEAVY_OPS = {
    OpType.CONV2D,
    OpType.DEPTHWISE_CONV2D,
    OpType.TRANSPOSE_CONV2D,
    OpType.DENSE,
    OpType.LSTM,
    OpType.GRU,
}


@dataclass
class Layer:
    """A single operator in a DNN graph.

    Parameters
    ----------
    name:
        Unique layer name within its graph.
    op:
        Operator type.
    inputs:
        Names of producer layers this layer consumes.
    output_spec:
        Shape/dtype of the (single) output tensor.
    weights:
        Trainable parameter tensors attached to the layer.
    attrs:
        Operator attributes (kernel size, stride, axis, ...).
    activation_dtype:
        dtype of the activations produced by this layer; ``int8`` marks a
        quantised execution path.
    fused_activation:
        Optional activation fused into the layer implementation
        (framework-dependent, see Sec. 4.7).
    """

    name: str
    op: OpType
    inputs: tuple[str, ...] = ()
    output_spec: Optional[TensorSpec] = None
    weights: tuple[WeightTensor, ...] = ()
    attrs: dict[str, Any] = field(default_factory=dict)
    activation_dtype: DType = DType.FLOAT32
    fused_activation: Optional[OpType] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Layer requires a non-empty name")
        if not isinstance(self.op, OpType):
            self.op = OpType(self.op)
        self.inputs = tuple(self.inputs)
        self.weights = tuple(self.weights)
        if not isinstance(self.activation_dtype, DType):
            self.activation_dtype = DType(self.activation_dtype)
        # Memo for derived costs/checksums.  Layers are treated as immutable
        # once inserted into a graph (every transform in repro.dnn builds new
        # Layer objects), so the memo is never invalidated.
        self._cache: dict = {}

    # ------------------------------------------------------------------ #
    # Structural properties
    # ------------------------------------------------------------------ #
    @property
    def category(self) -> LayerCategory:
        """Fig. 6 layer category this operator belongs to."""
        return _CATEGORY_BY_OP.get(self.op, LayerCategory.OTHER)

    @property
    def num_parameters(self) -> int:
        """Total trainable parameters attached to the layer."""
        return memo(self._cache, "num_parameters",
                    lambda: sum(w.num_parameters for w in self.weights))

    @property
    def weight_bytes(self) -> int:
        """Storage footprint of the layer's weights in bytes."""
        return sum(w.size_bytes for w in self.weights)

    @property
    def is_compute(self) -> bool:
        """Whether the layer performs MAC-dominated compute."""
        return self.op in _MAC_HEAVY_OPS

    @property
    def is_quantized(self) -> bool:
        """Whether the layer stores its weights in an integer dtype."""
        return any(w.dtype.is_quantized for w in self.weights)

    @property
    def output_elements(self) -> int:
        """Number of elements in the output tensor (0 when unknown)."""
        return self.output_spec.num_elements if self.output_spec else 0

    # ------------------------------------------------------------------ #
    # Cost accounting (trace-based, as in Sec. 3.2 / 4.7)
    # ------------------------------------------------------------------ #
    def macs(self) -> int:
        """Multiply-accumulate operations performed by one forward pass."""
        return memo(self._cache, "macs", self._macs_uncached)

    def _macs_uncached(self) -> int:
        out = self.output_elements
        if self.op == OpType.CONV2D or self.op == OpType.TRANSPOSE_CONV2D:
            kernel = self.attrs.get("kernel_size", (1, 1))
            in_channels = int(self.attrs.get("in_channels", 1))
            return out * int(kernel[0]) * int(kernel[1]) * in_channels
        if self.op == OpType.DEPTHWISE_CONV2D:
            kernel = self.attrs.get("kernel_size", (3, 3))
            return out * int(kernel[0]) * int(kernel[1])
        if self.op == OpType.DENSE:
            in_features = int(self.attrs.get("in_features", 1))
            return out * in_features
        if self.op in (OpType.LSTM, OpType.GRU):
            gates = 4 if self.op == OpType.LSTM else 3
            hidden = int(self.attrs.get("hidden_size", 1))
            input_size = int(self.attrs.get("input_size", hidden))
            steps = int(self.attrs.get("time_steps", 1))
            return gates * hidden * (hidden + input_size) * steps
        if self.op == OpType.EMBEDDING:
            return 0
        return 0

    def flops(self) -> int:
        """Floating-point operations performed by one forward pass.

        MAC-heavy operators count two FLOPs per MAC; element-wise operators
        count one FLOP per output element; data-movement operators count zero.
        """
        return memo(self._cache, "flops", self._flops_uncached)

    def _flops_uncached(self) -> int:
        if self.is_compute:
            return 2 * self.macs()
        if self.category in (LayerCategory.MATH, LayerCategory.ACTIVATION,
                             LayerCategory.POOLING, LayerCategory.RESIZE,
                             LayerCategory.QUANT):
            return self.output_elements
        return 0

    def activation_bytes(self) -> int:
        """Bytes written to memory for the layer's output activations."""
        if self.output_spec is None:
            return 0
        return self.output_elements * self.activation_dtype.bytes_per_element

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def weights_checksum(self) -> str:
        """md5 digest over the layer's weight tensors (empty string if none)."""
        if not self.weights:
            return ""

        def compute() -> str:
            digest = hashlib.md5()
            for tensor in self.weights:
                digest.update(tensor.to_bytes())
            return digest.hexdigest()
        return memo(self._cache, "weights_checksum", compute)

    def structural_signature(self) -> str:
        """Digest of the layer's structure (op, shapes, attrs) ignoring weights."""
        material = "|".join(
            [
                self.op.value,
                str(self.output_spec.shape if self.output_spec else ()),
                str(sorted((k, str(v)) for k, v in self.attrs.items())),
                str(tuple(w.shape for w in self.weights)),
            ]
        )
        return hashlib.md5(material.encode()).hexdigest()

    def rename(self, name: str) -> "Layer":
        """Return a shallow copy of the layer under a new name."""
        return Layer(
            name=name,
            op=self.op,
            inputs=self.inputs,
            output_spec=self.output_spec,
            weights=self.weights,
            attrs=dict(self.attrs),
            activation_dtype=self.activation_dtype,
            fused_activation=self.fused_activation,
        )

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Layer({self.name!r}, {self.op.value}, params={self.num_parameters})"
