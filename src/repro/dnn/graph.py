"""DNN computation graph: a DAG of layers with trace-based accounting.

A :class:`Graph` mirrors what gaugeNN reconstructs when parsing a model file
found inside an app: the ordered set of layers, the data-flow edges between
them, the input/output tensor specifications and framework metadata.  It
offers the aggregate quantities the paper reports per model — total FLOPs,
total parameters, layer-category composition (Fig. 6), model size — plus the
checksums used for the uniqueness and fine-tuning analyses (Sec. 4.5).

Aggregates and checksums are memoised on the graph: they are pure functions of
the layer set, so they are computed once and invalidated only by
:meth:`Graph.add_layer`.  :meth:`Graph.cost_arrays` additionally exposes the
per-layer cost columns (FLOPs, weight parameters, output elements) as NumPy
arrays, which lets :class:`~repro.runtime.latency_model.LatencyModel` evaluate
a whole graph as a handful of vectorised array ops instead of a Python loop.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.dnn.layers import Layer, LayerCategory, OpType
from repro.dnn.tensor import DType, TensorSpec, WeightTensor

__all__ = ["Modality", "GraphMetadata", "Graph", "GraphCostArrays"]


class Modality(str, Enum):
    """Input modality of a model, as used in Fig. 6 and Sec. 4.4."""

    IMAGE = "image"
    TEXT = "text"
    AUDIO = "audio"
    SENSOR = "sensor"

    @classmethod
    def from_input_spec(cls, spec: TensorSpec) -> "Modality":
        """Best-effort modality inference from an input tensor shape.

        Rank-4 tensors with a channel dimension of 1/3/4 are images, rank-2
        integer-ish small tensors are text token ids, long rank-2/3 tensors
        are audio waveforms/spectrograms, and small flat vectors are sensor
        readings.  This mirrors the manual inspection the paper describes.
        """
        shape = spec.shape
        if len(shape) == 4 and shape[-1] in (1, 3, 4) and shape[1] >= 32:
            return cls.IMAGE
        if len(shape) == 4:
            return cls.IMAGE
        if len(shape) <= 2 and spec.num_elements <= 256:
            if spec.dtype in (DType.INT32, DType.INT8):
                return cls.TEXT
            return cls.SENSOR
        if len(shape) in (2, 3) and spec.num_elements > 256:
            return cls.AUDIO
        return cls.SENSOR


@dataclass(frozen=True)
class GraphMetadata:
    """Provenance and descriptive metadata attached to a graph."""

    name: str
    framework: str = "tflite"
    architecture: str = ""
    task: str = ""
    modality: Optional[Modality] = None
    version: str = "1.0"
    extra: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True, eq=False)
class GraphCostArrays:
    """Per-layer cost columns of a graph as read-only NumPy arrays.

    Index ``i`` of every array corresponds to the graph's ``i``-th layer in
    topological order.  The arrays are the inputs of the vectorised roofline
    latency model; they are built once per graph and cached until the graph
    changes.
    """

    flops: np.ndarray
    weight_params: np.ndarray
    output_elements: np.ndarray

    @property
    def num_layers(self) -> int:
        """Number of layers the arrays cover."""
        return int(self.flops.shape[0])


class Graph:
    """A directed acyclic graph of :class:`Layer` objects.

    Layers are stored in insertion order, which must be a valid topological
    order (producers before consumers); :meth:`add_layer` enforces this.

    Aggregates, checksums and cost arrays are memoised in ``self._cache`` and
    invalidated whenever a layer is added.  Concurrent readers (e.g. sweep
    workers) may race to fill an entry; every entry is a deterministic pure
    function of the layer set, so duplicated fills are benign.
    """

    def __init__(
        self,
        metadata: GraphMetadata,
        input_specs: Sequence[TensorSpec],
        layers: Iterable[Layer] = (),
    ) -> None:
        if not input_specs:
            raise ValueError("Graph requires at least one input spec")
        self.metadata = metadata
        self.input_specs = tuple(input_specs)
        self._layers: dict[str, Layer] = {}
        self._order: list[str] = []
        self._input_name_tuple = tuple(
            f"input_{i}" for i in range(len(self.input_specs)))
        self._input_name_set = frozenset(self._input_name_tuple)
        self._cache: dict = {}
        for layer in layers:
            self.add_layer(layer)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_layer(self, layer: Layer) -> Layer:
        """Append a layer; all of its inputs must already be present."""
        if layer.name in self._layers:
            raise ValueError(f"duplicate layer name: {layer.name!r}")
        for dep in layer.inputs:
            if dep not in self._layers and dep not in self._input_name_set:
                raise ValueError(
                    f"layer {layer.name!r} references unknown input {dep!r}"
                )
        self._layers[layer.name] = layer
        self._order.append(layer.name)
        self._cache.clear()
        return layer

    def _input_names(self) -> tuple[str, ...]:
        return self._input_name_tuple

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Model name from the metadata."""
        return self.metadata.name

    @property
    def framework(self) -> str:
        """Framework identifier (``tflite``, ``caffe``, ``ncnn``, ``tf``, ``snpe``)."""
        return self.metadata.framework

    def _memo(self, key: str, compute: Callable):
        cached = self._cache.get(key)
        if cached is None:
            cached = compute()
            self._cache[key] = cached
        return cached

    @property
    def layers(self) -> tuple[Layer, ...]:
        """Layers in topological (insertion) order."""
        return self._memo(
            "layers", lambda: tuple(self._layers[name] for name in self._order))

    @property
    def num_layers(self) -> int:
        """Number of layers in the graph."""
        return len(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        try:
            return self._layers[name]
        except KeyError:
            raise KeyError(f"no layer named {name!r} in graph {self.name!r}") from None

    def _consumed_names(self) -> frozenset[str]:
        """Names consumed as an input by at least one layer (cached)."""
        return self._memo(
            "consumed",
            lambda: frozenset(dep for layer in self.layers for dep in layer.inputs))

    def output_layers(self) -> tuple[Layer, ...]:
        """Layers whose output is not consumed by any other layer."""
        def compute() -> tuple[Layer, ...]:
            consumed = self._consumed_names()
            return tuple(l for l in self.layers if l.name not in consumed)
        return self._memo("output_layers", compute)

    def output_specs(self) -> tuple[TensorSpec, ...]:
        """Tensor specs of the graph outputs."""
        return tuple(
            layer.output_spec for layer in self.output_layers() if layer.output_spec
        )

    @property
    def modality(self) -> Modality:
        """Input modality (explicit metadata, falling back to shape inference)."""
        if self.metadata.modality is not None:
            return self.metadata.modality
        return Modality.from_input_spec(self.input_specs[0])

    def to_networkx(self):
        """Export the data-flow graph as a :class:`networkx.DiGraph`.

        networkx is imported lazily: it is only needed for this export, and
        importing it at module load slows down every consumer of the hot
        accounting paths.
        """
        import networkx as nx

        dag = nx.DiGraph(name=self.name)
        for input_name in self._input_names():
            dag.add_node(input_name, op="input")
        for layer in self.layers:
            dag.add_node(layer.name, op=layer.op.value, category=layer.category.value)
            for dep in layer.inputs:
                dag.add_edge(dep, layer.name)
        return dag

    def is_acyclic(self) -> bool:
        """True when the data-flow graph contains no cycles.

        Insertion order is a topological order (:meth:`add_layer` only accepts
        layers whose producers are already present), so it suffices to verify
        natively that every edge points forward in that order — no networkx
        graph construction needed.
        """
        seen = set(self._input_name_set)
        for name in self._order:
            if any(dep not in seen for dep in self._layers[name].inputs):
                return False
            seen.add(name)
        return True

    # ------------------------------------------------------------------ #
    # Aggregate accounting (Sec. 3.2, 4.7)
    # ------------------------------------------------------------------ #
    def total_flops(self) -> int:
        """Total FLOPs of a single forward pass at the declared input size."""
        return self._memo(
            "total_flops", lambda: sum(layer.flops() for layer in self.layers))

    def total_macs(self) -> int:
        """Total multiply-accumulate operations of a single forward pass."""
        return self._memo(
            "total_macs", lambda: sum(layer.macs() for layer in self.layers))

    def total_parameters(self) -> int:
        """Total trainable parameters across all layers."""
        return self._memo(
            "total_parameters",
            lambda: sum(layer.num_parameters for layer in self.layers))

    def model_size_bytes(self) -> int:
        """Approximate on-disk weight footprint in bytes."""
        return self._memo(
            "model_size_bytes",
            lambda: sum(layer.weight_bytes for layer in self.layers))

    def peak_activation_bytes(self) -> int:
        """Largest single activation tensor produced by any layer, in bytes."""
        if not self._order:
            return 0
        return self._memo(
            "peak_activation_bytes",
            lambda: max(layer.activation_bytes() for layer in self.layers))

    def cost_arrays(self) -> GraphCostArrays:
        """Read-only per-layer cost columns for the vectorised latency model."""
        def compute() -> GraphCostArrays:
            layers = self.layers
            count = len(layers)
            flops = np.fromiter(
                (layer.flops() for layer in layers), dtype=np.int64, count=count)
            weight_params = np.fromiter(
                (layer.num_parameters for layer in layers), dtype=np.int64,
                count=count)
            output_elements = np.fromiter(
                (layer.output_elements for layer in layers), dtype=np.int64,
                count=count)
            for array in (flops, weight_params, output_elements):
                array.setflags(write=False)
            return GraphCostArrays(flops=flops, weight_params=weight_params,
                                   output_elements=output_elements)
        return self._memo("cost_arrays", compute)

    def layer_category_counts(self) -> dict[LayerCategory, int]:
        """Number of layers per Fig. 6 category."""
        counts: dict[LayerCategory, int] = {}
        for layer in self.layers:
            counts[layer.category] = counts.get(layer.category, 0) + 1
        return counts

    def layer_category_fractions(self) -> dict[LayerCategory, float]:
        """Fraction of layers per Fig. 6 category (sums to 1 for non-empty graphs)."""
        counts = self.layer_category_counts()
        total = sum(counts.values())
        if total == 0:
            return {}
        return {category: count / total for category, count in counts.items()}

    def op_counts(self) -> dict[OpType, int]:
        """Number of layers per operator type."""
        counts: dict[OpType, int] = {}
        for layer in self.layers:
            counts[layer.op] = counts.get(layer.op, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Identity and similarity (Sec. 4.5)
    # ------------------------------------------------------------------ #
    def weights_checksum(self) -> str:
        """md5 over all layer weights, i.e. the paper's whole-model checksum."""
        def compute() -> str:
            digest = hashlib.md5()
            for layer in self.layers:
                digest.update(layer.name.encode())
                for tensor in layer.weights:
                    digest.update(tensor.to_bytes())
            return digest.hexdigest()
        return self._memo("weights_checksum", compute)

    def layer_checksums(self) -> dict[str, str]:
        """Per-layer weight checksums, used for fine-tuning detection.

        The returned dict is cached on the graph — treat it as read-only.
        """
        return self._memo(
            "layer_checksums",
            lambda: {
                layer.name: layer.weights_checksum()
                for layer in self.layers
                if layer.weights
            })

    def structural_checksum(self) -> str:
        """Digest over the graph structure, ignoring weight values."""
        def compute() -> str:
            digest = hashlib.md5()
            for layer in self.layers:
                digest.update(layer.structural_signature().encode())
            return digest.hexdigest()
        return self._memo("structural_checksum", compute)

    def shared_weight_fraction(self, other: "Graph") -> float:
        """Fraction of this graph's parameters whose weights also appear in ``other``.

        Matches the paper's layer-level checksum comparison: a layer is
        "shared" when a layer with an identical weight checksum exists in the
        other model, and the fraction is weighted by parameter count.
        """
        own_total = self.total_parameters()
        if own_total == 0:
            return 0.0
        other_checksums = {
            layer.weights_checksum() for layer in other.layers if layer.weights
        }
        shared = sum(
            layer.num_parameters
            for layer in self.layers
            if layer.weights and layer.weights_checksum() in other_checksums
        )
        return shared / own_total

    def differing_layer_count(self, other: "Graph") -> int:
        """Number of weighted layers whose checksum differs between two models.

        Defined for models with the same structure; models with different
        layer sets report the size of the symmetric difference.
        """
        own = self.layer_checksums()
        theirs = other.layer_checksums()
        names = set(own) | set(theirs)
        return sum(1 for name in names if own.get(name) != theirs.get(name))

    # ------------------------------------------------------------------ #
    # Transformation helpers
    # ------------------------------------------------------------------ #
    def map_layers(self, transform: Callable[[Layer], Layer]) -> "Graph":
        """Return a new graph with every layer replaced by ``transform(layer)``."""
        return Graph(self.metadata, self.input_specs,
                     [transform(layer) for layer in self.layers])

    def with_metadata(self, **changes) -> "Graph":
        """Return a copy of the graph with updated metadata fields."""
        return Graph(replace(self.metadata, **changes), self.input_specs, self.layers)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"Graph({self.name!r}, framework={self.framework!r}, "
            f"layers={self.num_layers}, params={self.total_parameters()})"
        )
