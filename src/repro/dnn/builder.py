"""Convenience builder for constructing DNN graphs layer by layer.

The model-zoo architectures (:mod:`repro.dnn.zoo`) are expressed with this
builder, which tracks the current tensor shape, derives per-layer weight
shapes and attributes, and assigns deterministic weight seeds so that two
builds of the same architecture with the same ``weight_seed`` are bit-for-bit
identical (and therefore share checksums), while different seeds model
independently trained instances.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dnn.graph import Graph, GraphMetadata, Modality
from repro.dnn.layers import Layer, OpType
from repro.dnn.tensor import DType, TensorSpec, WeightTensor

__all__ = ["GraphBuilder"]


def _seed_for(base_seed: int, layer_name: str) -> int:
    digest = hashlib.sha256(f"{base_seed}:{layer_name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFFFFFFFFFFFFFF


@dataclass
class _Cursor:
    """Tracks the tensor currently at the head of the builder's main branch."""

    name: str
    spec: TensorSpec


class GraphBuilder:
    """Incrementally construct a :class:`~repro.dnn.graph.Graph`.

    Parameters
    ----------
    name:
        Model name (also used as the model file stem).
    input_shape:
        Shape of the single graph input, including the batch dimension.
    framework:
        Framework the model will be attributed to.
    task:
        Task label hint recorded in metadata.
    modality:
        Input modality; inferred from the input shape when omitted.
    weight_seed:
        Base seed for all weight tensors.
    weight_dtype:
        Storage dtype for the weights (``int8`` builds a quantised model).
    """

    def __init__(
        self,
        name: str,
        input_shape: Sequence[int],
        *,
        framework: str = "tflite",
        architecture: str = "",
        task: str = "",
        modality: Optional[Modality] = None,
        weight_seed: int = 0,
        weight_dtype: DType = DType.FLOAT32,
        activation_dtype: DType = DType.FLOAT32,
        input_dtype: DType = DType.FLOAT32,
    ) -> None:
        self._metadata = GraphMetadata(
            name=name,
            framework=framework,
            architecture=architecture or name,
            task=task,
            modality=modality,
        )
        self._input_spec = TensorSpec(tuple(input_shape), input_dtype)
        self._layers: list[Layer] = []
        self._names: set[str] = set()
        self._seed = weight_seed
        self.weight_dtype = weight_dtype
        self.activation_dtype = activation_dtype
        self._cursor = _Cursor("input_0", self._input_spec)
        self._counter = 0

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> str:
        """Name of the layer currently at the head of the main branch."""
        return self._cursor.name

    @property
    def current_spec(self) -> TensorSpec:
        """Tensor spec at the head of the main branch."""
        return self._cursor.spec

    def _unique(self, prefix: str) -> str:
        self._counter += 1
        name = f"{prefix}_{self._counter}"
        while name in self._names:
            self._counter += 1
            name = f"{prefix}_{self._counter}"
        return name

    def _weight(self, name: str, shape: Sequence[int]) -> WeightTensor:
        return WeightTensor(
            tuple(shape),
            dtype=self.weight_dtype,
            seed=_seed_for(self._seed, name),
            name=name,
        )

    def _emit(
        self,
        op: OpType,
        out_spec: TensorSpec,
        *,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
        weights: Sequence[WeightTensor] = (),
        attrs: Optional[dict] = None,
        advance: bool = True,
    ) -> Layer:
        layer_name = name or self._unique(op.value)
        if layer_name in self._names:
            raise ValueError(f"duplicate layer name {layer_name!r}")
        layer = Layer(
            name=layer_name,
            op=op,
            inputs=tuple(inputs) if inputs is not None else (self._cursor.name,),
            output_spec=out_spec,
            weights=tuple(weights),
            attrs=dict(attrs or {}),
            activation_dtype=self.activation_dtype,
        )
        self._layers.append(layer)
        self._names.add(layer_name)
        if advance:
            self._cursor = _Cursor(layer_name, out_spec)
        return layer

    @staticmethod
    def _conv_output_hw(height: int, width: int, kernel: int, stride: int,
                        padding: str) -> tuple[int, int]:
        if padding == "same":
            return (max(1, -(-height // stride)), max(1, -(-width // stride)))
        out_h = max(1, (height - kernel) // stride + 1)
        out_w = max(1, (width - kernel) // stride + 1)
        return out_h, out_w

    # ------------------------------------------------------------------ #
    # Convolutional layers
    # ------------------------------------------------------------------ #
    def conv2d(self, filters: int, kernel: int = 3, stride: int = 1,
               padding: str = "same", name: Optional[str] = None,
               activation: Optional[OpType] = None) -> Layer:
        """Standard 2D convolution on an NHWC tensor."""
        batch, height, width, channels = self.current_spec.shape
        out_h, out_w = self._conv_output_hw(height, width, kernel, stride, padding)
        layer_name = name or self._unique("conv2d")
        weights = [
            self._weight(f"{layer_name}/kernel", (kernel, kernel, channels, filters)),
            self._weight(f"{layer_name}/bias", (filters,)),
        ]
        layer = self._emit(
            OpType.CONV2D,
            TensorSpec((batch, out_h, out_w, filters), self.activation_dtype),
            name=layer_name,
            weights=weights,
            attrs={
                "kernel_size": (kernel, kernel),
                "stride": stride,
                "padding": padding,
                "in_channels": channels,
                "out_channels": filters,
            },
        )
        if activation is not None:
            self.activation(activation)
        return layer

    def depthwise_conv2d(self, kernel: int = 3, stride: int = 1,
                         padding: str = "same", name: Optional[str] = None,
                         activation: Optional[OpType] = None) -> Layer:
        """Depthwise-separable convolution's depthwise stage."""
        batch, height, width, channels = self.current_spec.shape
        out_h, out_w = self._conv_output_hw(height, width, kernel, stride, padding)
        layer_name = name or self._unique("depthwise_conv2d")
        weights = [
            self._weight(f"{layer_name}/depthwise_kernel", (kernel, kernel, channels, 1)),
            self._weight(f"{layer_name}/bias", (channels,)),
        ]
        layer = self._emit(
            OpType.DEPTHWISE_CONV2D,
            TensorSpec((batch, out_h, out_w, channels), self.activation_dtype),
            name=layer_name,
            weights=weights,
            attrs={
                "kernel_size": (kernel, kernel),
                "stride": stride,
                "padding": padding,
                "in_channels": channels,
            },
        )
        if activation is not None:
            self.activation(activation)
        return layer

    def transpose_conv2d(self, filters: int, kernel: int = 2, stride: int = 2,
                         name: Optional[str] = None) -> Layer:
        """Transposed convolution used by decoder/upsampling paths."""
        batch, height, width, channels = self.current_spec.shape
        out_h, out_w = height * stride, width * stride
        layer_name = name or self._unique("transpose_conv2d")
        weights = [
            self._weight(f"{layer_name}/kernel", (kernel, kernel, filters, channels)),
            self._weight(f"{layer_name}/bias", (filters,)),
        ]
        return self._emit(
            OpType.TRANSPOSE_CONV2D,
            TensorSpec((batch, out_h, out_w, filters), self.activation_dtype),
            name=layer_name,
            weights=weights,
            attrs={
                "kernel_size": (kernel, kernel),
                "stride": stride,
                "in_channels": channels,
                "out_channels": filters,
            },
        )

    # ------------------------------------------------------------------ #
    # Dense / recurrent layers
    # ------------------------------------------------------------------ #
    def dense(self, units: int, name: Optional[str] = None,
              activation: Optional[OpType] = None) -> Layer:
        """Fully-connected layer over the trailing feature dimension."""
        shape = self.current_spec.shape
        in_features = shape[-1]
        layer_name = name or self._unique("dense")
        weights = [
            self._weight(f"{layer_name}/kernel", (in_features, units)),
            self._weight(f"{layer_name}/bias", (units,)),
        ]
        layer = self._emit(
            OpType.DENSE,
            TensorSpec(shape[:-1] + (units,), self.activation_dtype),
            name=layer_name,
            weights=weights,
            attrs={"in_features": in_features, "units": units},
        )
        if activation is not None:
            self.activation(activation)
        return layer

    def embedding(self, vocab_size: int, embedding_dim: int,
                  name: Optional[str] = None) -> Layer:
        """Token embedding lookup for text models."""
        batch, seq_len = self.current_spec.shape[:2]
        layer_name = name or self._unique("embedding")
        weights = [self._weight(f"{layer_name}/table", (vocab_size, embedding_dim))]
        return self._emit(
            OpType.EMBEDDING,
            TensorSpec((batch, seq_len, embedding_dim), self.activation_dtype),
            name=layer_name,
            weights=weights,
            attrs={"vocab_size": vocab_size, "embedding_dim": embedding_dim},
        )

    def lstm(self, hidden_size: int, return_sequences: bool = False,
             name: Optional[str] = None) -> Layer:
        """LSTM over a (batch, time, features) tensor."""
        return self._recurrent(OpType.LSTM, hidden_size, return_sequences, name, gates=4)

    def gru(self, hidden_size: int, return_sequences: bool = False,
            name: Optional[str] = None) -> Layer:
        """GRU over a (batch, time, features) tensor."""
        return self._recurrent(OpType.GRU, hidden_size, return_sequences, name, gates=3)

    def _recurrent(self, op: OpType, hidden_size: int, return_sequences: bool,
                   name: Optional[str], gates: int) -> Layer:
        batch, time_steps, features = self.current_spec.shape
        layer_name = name or self._unique(op.value)
        weights = [
            self._weight(f"{layer_name}/kernel", (features, gates * hidden_size)),
            self._weight(f"{layer_name}/recurrent_kernel", (hidden_size, gates * hidden_size)),
            self._weight(f"{layer_name}/bias", (gates * hidden_size,)),
        ]
        out_shape = (batch, time_steps, hidden_size) if return_sequences else (batch, hidden_size)
        return self._emit(
            op,
            TensorSpec(out_shape, self.activation_dtype),
            name=layer_name,
            weights=weights,
            attrs={
                "hidden_size": hidden_size,
                "input_size": features,
                "time_steps": time_steps,
            },
        )

    # ------------------------------------------------------------------ #
    # Pooling / shape / element-wise layers
    # ------------------------------------------------------------------ #
    def max_pool(self, pool: int = 2, stride: Optional[int] = None,
                 name: Optional[str] = None) -> Layer:
        """Max pooling."""
        return self._pool(OpType.MAX_POOL, pool, stride, name)

    def avg_pool(self, pool: int = 2, stride: Optional[int] = None,
                 name: Optional[str] = None) -> Layer:
        """Average pooling."""
        return self._pool(OpType.AVG_POOL, pool, stride, name)

    def _pool(self, op: OpType, pool: int, stride: Optional[int],
              name: Optional[str]) -> Layer:
        stride = stride or pool
        batch, height, width, channels = self.current_spec.shape
        out_h = max(1, height // stride)
        out_w = max(1, width // stride)
        return self._emit(
            op,
            TensorSpec((batch, out_h, out_w, channels), self.activation_dtype),
            name=name,
            attrs={"pool_size": pool, "stride": stride},
        )

    def global_avg_pool(self, name: Optional[str] = None) -> Layer:
        """Global average pooling reducing spatial dimensions to a vector."""
        batch, _, _, channels = self.current_spec.shape
        return self._emit(
            OpType.GLOBAL_AVG_POOL,
            TensorSpec((batch, channels), self.activation_dtype),
            name=name,
        )

    def activation(self, op: OpType = OpType.RELU, name: Optional[str] = None) -> Layer:
        """Standalone activation layer."""
        return self._emit(op, self.current_spec, name=name)

    def batch_norm(self, name: Optional[str] = None) -> Layer:
        """Batch normalisation with per-channel scale/offset parameters."""
        channels = self.current_spec.shape[-1]
        layer_name = name or self._unique("batch_norm")
        weights = [
            self._weight(f"{layer_name}/gamma", (channels,)),
            self._weight(f"{layer_name}/beta", (channels,)),
        ]
        return self._emit(OpType.BATCH_NORM, self.current_spec, name=layer_name,
                          weights=weights)

    def add(self, other: str, name: Optional[str] = None) -> Layer:
        """Element-wise residual addition of the current branch and ``other``."""
        return self._emit(
            OpType.ADD,
            self.current_spec,
            name=name,
            inputs=(self._cursor.name, other),
        )

    def concat(self, others: Sequence[str], specs: Sequence[TensorSpec],
               name: Optional[str] = None, axis: int = -1) -> Layer:
        """Concatenate the current branch with other branches along ``axis``."""
        total_channels = self.current_spec.shape[-1] + sum(s.shape[-1] for s in specs)
        out_shape = self.current_spec.shape[:-1] + (total_channels,)
        return self._emit(
            OpType.CONCAT,
            TensorSpec(out_shape, self.activation_dtype),
            name=name,
            inputs=(self._cursor.name, *others),
            attrs={"axis": axis},
        )

    def reshape(self, shape: Sequence[int], name: Optional[str] = None) -> Layer:
        """Reshape the current tensor (element count must be preserved)."""
        target = TensorSpec(tuple(shape), self.activation_dtype)
        if target.num_elements != self.current_spec.num_elements:
            raise ValueError(
                f"reshape from {self.current_spec.shape} to {tuple(shape)} changes element count"
            )
        return self._emit(OpType.RESHAPE, target, name=name, attrs={"shape": tuple(shape)})

    def resize(self, scale: int = 2, mode: str = "bilinear",
               name: Optional[str] = None) -> Layer:
        """Spatial upsampling by an integer factor."""
        batch, height, width, channels = self.current_spec.shape
        op = OpType.RESIZE_BILINEAR if mode == "bilinear" else OpType.RESIZE_NEAREST
        return self._emit(
            op,
            TensorSpec((batch, height * scale, width * scale, channels),
                       self.activation_dtype),
            name=name,
            attrs={"scale": scale},
        )

    def slice(self, channels: int, name: Optional[str] = None) -> Layer:
        """Slice the trailing channel dimension down to ``channels``."""
        shape = self.current_spec.shape
        if channels > shape[-1]:
            raise ValueError("cannot slice to more channels than available")
        return self._emit(
            OpType.SLICE,
            TensorSpec(shape[:-1] + (channels,), self.activation_dtype),
            name=name,
            attrs={"channels": channels},
        )

    def softmax(self, name: Optional[str] = None) -> Layer:
        """Softmax over the trailing dimension."""
        return self._emit(OpType.SOFTMAX, self.current_spec, name=name)

    def quantize(self, name: Optional[str] = None) -> Layer:
        """Insert a float→int8 quantize node."""
        spec = TensorSpec(self.current_spec.shape, DType.INT8)
        return self._emit(OpType.QUANTIZE, spec, name=name)

    def dequantize(self, name: Optional[str] = None) -> Layer:
        """Insert an int8→float dequantize node."""
        spec = TensorSpec(self.current_spec.shape, DType.FLOAT32)
        return self._emit(OpType.DEQUANTIZE, spec, name=name)

    def detection_postprocess(self, max_detections: int = 100,
                              name: Optional[str] = None) -> Layer:
        """Non-max-suppression style detection post-processing node."""
        batch = self.current_spec.shape[0]
        return self._emit(
            OpType.DETECTION_POSTPROCESS,
            TensorSpec((batch, max_detections, 4), self.activation_dtype),
            name=name,
            attrs={"max_detections": max_detections},
        )

    # ------------------------------------------------------------------ #
    # Branch management
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> _Cursor:
        """Remember the current branch head so a side branch can be built."""
        return _Cursor(self._cursor.name, self._cursor.spec)

    def restore(self, cursor: _Cursor) -> None:
        """Rewind the builder head to a previously saved checkpoint."""
        self._cursor = _Cursor(cursor.name, cursor.spec)

    def restore_to(self, name: str, spec: TensorSpec) -> None:
        """Rewind the builder head to an arbitrary existing layer output."""
        self._cursor = _Cursor(name, spec)

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #
    def build(self) -> Graph:
        """Finalise and return the constructed graph."""
        return Graph(self._metadata, (self._input_spec,), self._layers)
