"""Audio architectures: ambient sound recognition, ASR and keyword spotting.

The paper finds 15 audio models in the wild, 80% of which perform ambient
sound recognition (Table 3).  Sound recognition over one hour of audio is one
of the three Table 4 energy scenarios.
"""

from __future__ import annotations

from repro.dnn.builder import GraphBuilder
from repro.dnn.graph import Graph, Modality
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType

__all__ = ["sound_recognition", "speech_recognition", "keyword_spotting"]


def sound_recognition(
    name: str = "ambient_sound_classifier",
    *,
    frames: int = 96,
    mel_bins: int = 64,
    num_classes: int = 521,
    framework: str = "tflite",
    task: str = "sound recognition",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """YAMNet-style ambient sound classifier over log-mel spectrogram patches."""
    builder = GraphBuilder(
        name,
        (1, frames, mel_bins, 1),
        framework=framework,
        architecture="sound_cnn",
        task=task,
        modality=Modality.AUDIO,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    builder.conv2d(32, kernel=3, stride=2, activation=OpType.RELU)
    for filters in (64, 128, 128, 256, 256):
        builder.depthwise_conv2d(kernel=3, stride=2 if filters in (64, 128, 256) else 1,
                                 activation=OpType.RELU)
        builder.conv2d(filters, kernel=1, activation=OpType.RELU)
    builder.global_avg_pool()
    builder.dense(num_classes, name="class_logits")
    builder.activation(OpType.SIGMOID)
    return builder.build()


def speech_recognition(
    name: str = "on_device_asr",
    *,
    frames: int = 300,
    features: int = 80,
    vocab_size: int = 128,
    hidden_size: int = 512,
    framework: str = "tflite",
    task: str = "speech recognition",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Streaming ASR acoustic model: convolutional front-end + LSTM stack."""
    builder = GraphBuilder(
        name,
        (1, frames, features, 1),
        framework=framework,
        architecture="asr_conv_lstm",
        task=task,
        modality=Modality.AUDIO,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    builder.conv2d(32, kernel=3, stride=2, activation=OpType.RELU)
    builder.conv2d(32, kernel=3, stride=2, activation=OpType.RELU)
    batch, time_steps, feat, channels = builder.current_spec.shape
    builder.reshape((batch, time_steps, feat * channels), name="to_sequence")
    builder.lstm(hidden_size, return_sequences=True, name="lstm_1")
    builder.lstm(hidden_size, return_sequences=True, name="lstm_2")
    builder.lstm(hidden_size, return_sequences=True, name="lstm_3")
    builder.dense(vocab_size, name="token_logits")
    builder.softmax()
    return builder.build()


def keyword_spotting(
    name: str = "hotword_detector",
    *,
    frames: int = 49,
    mel_bins: int = 40,
    num_keywords: int = 12,
    framework: str = "tflite",
    task: str = "keyword detection",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Tiny always-on keyword spotter (depthwise-separable CNN)."""
    builder = GraphBuilder(
        name,
        (1, frames, mel_bins, 1),
        framework=framework,
        architecture="kws_dscnn",
        task=task,
        modality=Modality.AUDIO,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    builder.conv2d(64, kernel=3, stride=2, activation=OpType.RELU)
    for _ in range(4):
        builder.depthwise_conv2d(kernel=3, activation=OpType.RELU)
        builder.conv2d(64, kernel=1, activation=OpType.RELU)
    builder.global_avg_pool()
    builder.dense(num_keywords, name="keyword_logits")
    builder.softmax()
    return builder.build()
