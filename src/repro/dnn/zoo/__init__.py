"""Model zoo: mobile DNN architectures found in the wild by the paper.

Every builder returns a :class:`~repro.dnn.graph.Graph` whose layer structure,
FLOPs and parameter counts are representative of the real architecture
(MobileNet variants, FSSD detectors, BlazeFace, lightweight segmentation,
text/audio/sensor models, ...).  The :data:`CATALOG` maps the paper's task
taxonomy (Table 3) to the architectures deployed for that task, and is what
the synthetic app-store generator samples from.
"""

from repro.dnn.zoo.mobilenet import mobilenet_v1, mobilenet_v2
from repro.dnn.zoo.detection import blazeface, fssd, ssd_mobilenet
from repro.dnn.zoo.segmentation import deeplab_lite, hair_segmentation, unet_lite
from repro.dnn.zoo.vision_misc import (
    contour_detection,
    face_recognition,
    image_classifier,
    landmark_detection,
    nudity_classifier,
    ocr_crnn,
    photo_beauty,
    pose_estimation,
    style_transfer,
    augmented_reality,
)
from repro.dnn.zoo.nlp import (
    autocomplete_lstm,
    content_filter,
    sentiment_cnn,
    text_classifier,
    translation_seq2seq,
)
from repro.dnn.zoo.audio import keyword_spotting, sound_recognition, speech_recognition
from repro.dnn.zoo.sensor import crash_detection, movement_tracking
from repro.dnn.zoo.catalog import ArchitectureEntry, CATALOG, architectures_for_task, build

__all__ = [
    "mobilenet_v1",
    "mobilenet_v2",
    "blazeface",
    "fssd",
    "ssd_mobilenet",
    "deeplab_lite",
    "hair_segmentation",
    "unet_lite",
    "contour_detection",
    "face_recognition",
    "image_classifier",
    "landmark_detection",
    "nudity_classifier",
    "ocr_crnn",
    "photo_beauty",
    "pose_estimation",
    "style_transfer",
    "augmented_reality",
    "autocomplete_lstm",
    "content_filter",
    "sentiment_cnn",
    "text_classifier",
    "translation_seq2seq",
    "keyword_spotting",
    "sound_recognition",
    "speech_recognition",
    "crash_detection",
    "movement_tracking",
    "ArchitectureEntry",
    "CATALOG",
    "architectures_for_task",
    "build",
]
