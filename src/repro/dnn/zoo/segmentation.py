"""Semantic-segmentation architectures (hair/person segmentation, DeepLab-lite).

The paper highlights segmentation as the most energy-hungry use case: one hour
of 15 FPS person segmentation during a video call can consume 27-96% of a
4000 mAh battery (Table 4, Sec. 5.2.2).
"""

from __future__ import annotations

from repro.dnn.builder import GraphBuilder
from repro.dnn.graph import Graph, Modality
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType

__all__ = ["unet_lite", "deeplab_lite", "hair_segmentation"]


def unet_lite(
    name: str = "unet_lite",
    *,
    resolution: int = 256,
    num_classes: int = 2,
    base_filters: int = 32,
    depth: int = 4,
    framework: str = "tflite",
    task: str = "semantic segmentation",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Lightweight encoder-decoder (U-Net style) segmentation network."""
    builder = GraphBuilder(
        name,
        (1, resolution, resolution, 3),
        framework=framework,
        architecture="unet_lite",
        task=task,
        modality=Modality.IMAGE,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    skips = []
    filters = base_filters
    for level in range(depth):
        builder.conv2d(filters, kernel=3, name=f"enc{level}_conv1", activation=OpType.RELU)
        builder.conv2d(filters, kernel=3, name=f"enc{level}_conv2", activation=OpType.RELU)
        skips.append(builder.checkpoint())
        builder.max_pool(2, name=f"enc{level}_pool")
        filters *= 2

    builder.conv2d(filters, kernel=3, name="bottleneck_conv1", activation=OpType.RELU)
    builder.conv2d(filters, kernel=3, name="bottleneck_conv2", activation=OpType.RELU)

    for level in reversed(range(depth)):
        filters //= 2
        builder.transpose_conv2d(filters, kernel=2, stride=2, name=f"dec{level}_up")
        skip = skips[level]
        builder.concat([skip.name], [skip.spec], name=f"dec{level}_concat")
        builder.conv2d(filters, kernel=3, name=f"dec{level}_conv1", activation=OpType.RELU)
        builder.conv2d(filters, kernel=3, name=f"dec{level}_conv2", activation=OpType.RELU)

    builder.conv2d(num_classes, kernel=1, name="segmentation_logits")
    builder.softmax(name="segmentation_probs")
    return builder.build()


def deeplab_lite(
    name: str = "deeplabv3_mnv2",
    *,
    resolution: int = 257,
    num_classes: int = 21,
    alpha: float = 0.5,
    framework: str = "tflite",
    task: str = "semantic segmentation",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """DeepLabV3-style segmentation head on a MobileNetV2 backbone."""
    from repro.dnn.zoo.mobilenet import mobilenet_backbone

    builder = GraphBuilder(
        name,
        (1, resolution, resolution, 3),
        framework=framework,
        architecture="deeplab_lite",
        task=task,
        modality=Modality.IMAGE,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    mobilenet_backbone(builder, alpha=alpha, version=2)

    # Simplified ASPP: parallel 1x1 and dilated-like 3x3 branches plus pooling.
    backbone_head = builder.checkpoint()
    branch_a = builder.conv2d(256, kernel=1, name="aspp_conv1x1", activation=OpType.RELU)
    builder.restore(backbone_head)
    branch_b = builder.conv2d(256, kernel=3, name="aspp_conv3x3", activation=OpType.RELU)
    builder.restore(backbone_head)
    builder.avg_pool(2, name="aspp_pool")
    builder.conv2d(256, kernel=1, name="aspp_pool_project", activation=OpType.RELU)
    builder.resize(scale=2, name="aspp_pool_upsample")
    builder.concat([branch_a.name, branch_b.name],
                   [branch_a.output_spec, branch_b.output_spec], name="aspp_concat")
    builder.conv2d(256, kernel=1, name="aspp_project", activation=OpType.RELU)
    builder.conv2d(num_classes, kernel=1, name="logits")
    builder.resize(scale=4, name="upsample_logits")
    builder.softmax(name="probs")
    return builder.build()


def hair_segmentation(
    name: str = "hair_segmentation_mobilenet",
    *,
    resolution: int = 512,
    framework: str = "tflite",
    task: str = "semantic segmentation",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Hair-segmentation model of the kind shipped by beauty/photography apps.

    The paper calls out "hair_segmentation_mobilenet.tflite" as an example of a
    model whose file name reveals both architecture and task (Sec. 4.4).
    """
    return unet_lite(
        name,
        resolution=resolution,
        num_classes=2,
        base_filters=16,
        depth=4,
        framework=framework,
        task=task,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
