"""Remaining vision architectures from the paper's task taxonomy (Table 3).

Covers contour/landmark detection, text recognition (OCR), augmented reality,
pose estimation, photo beauty, face recognition, nudity detection, style
transfer and plain image classification heads.
"""

from __future__ import annotations

from repro.dnn.builder import GraphBuilder
from repro.dnn.graph import Graph, Modality
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType

__all__ = [
    "contour_detection",
    "landmark_detection",
    "ocr_crnn",
    "augmented_reality",
    "pose_estimation",
    "photo_beauty",
    "face_recognition",
    "nudity_classifier",
    "style_transfer",
    "image_classifier",
]


def _image_builder(name: str, resolution: int, *, framework: str, architecture: str,
                   task: str, weight_seed: int, weight_dtype: DType,
                   channels: int = 3) -> GraphBuilder:
    return GraphBuilder(
        name,
        (1, resolution, resolution, channels),
        framework=framework,
        architecture=architecture,
        task=task,
        modality=Modality.IMAGE,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )


def contour_detection(
    name: str = "face_contour_detector",
    *,
    resolution: int = 192,
    num_points: int = 133,
    framework: str = "tflite",
    task: str = "contour detection",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Face/object contour regression network (e.g. ML Kit face contours)."""
    builder = _image_builder(name, resolution, framework=framework,
                             architecture="contour_net", task=task,
                             weight_seed=weight_seed, weight_dtype=weight_dtype)
    filters = 16
    while builder.current_spec.shape[1] > 6:
        builder.depthwise_conv2d(kernel=3, stride=2, activation=OpType.RELU6)
        builder.conv2d(filters, kernel=1, activation=OpType.RELU6)
        filters = min(filters * 2, 256)
    builder.global_avg_pool()
    builder.dense(2 * num_points, name="contour_points")
    return builder.build()


def landmark_detection(
    name: str = "face_landmark",
    *,
    resolution: int = 192,
    num_landmarks: int = 468,
    framework: str = "tflite",
    task: str = "contour detection",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Dense facial-landmark regressor (MediaPipe face-mesh style)."""
    builder = _image_builder(name, resolution, framework=framework,
                             architecture="landmark_net", task=task,
                             weight_seed=weight_seed, weight_dtype=weight_dtype)
    builder.conv2d(16, kernel=3, stride=2, activation=OpType.PRELU)
    filters = 32
    for _ in range(5):
        residual = builder.checkpoint()
        builder.depthwise_conv2d(kernel=3, activation=OpType.PRELU)
        builder.conv2d(residual.spec.shape[-1], kernel=1)
        builder.add(residual.name)
        builder.depthwise_conv2d(kernel=3, stride=2, activation=OpType.PRELU)
        builder.conv2d(filters, kernel=1, activation=OpType.PRELU)
        filters = min(filters * 2, 192)
    builder.global_avg_pool()
    builder.dense(3 * num_landmarks, name="landmarks_xyz")
    return builder.build()


def ocr_crnn(
    name: str = "text_recognition_crnn",
    *,
    height: int = 32,
    width: int = 320,
    vocab_size: int = 96,
    framework: str = "tflite",
    task: str = "text recognition",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """CRNN text recogniser: convolutional feature extractor + recurrent decoder.

    Credit-card / ID scanning apps (a surging category in the paper's finance
    findings) ship models of this shape.
    """
    builder = GraphBuilder(
        name,
        (1, height, width, 1),
        framework=framework,
        architecture="crnn",
        task=task,
        modality=Modality.IMAGE,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    for filters in (64, 128, 256):
        builder.conv2d(filters, kernel=3, activation=OpType.RELU)
        builder.max_pool(2)
    builder.conv2d(256, kernel=3, activation=OpType.RELU)
    batch, feat_h, feat_w, feat_c = builder.current_spec.shape
    builder.reshape((batch, feat_w, feat_h * feat_c), name="collapse_height")
    builder.lstm(128, return_sequences=True, name="sequence_lstm_1")
    builder.lstm(128, return_sequences=True, name="sequence_lstm_2")
    builder.dense(vocab_size, name="character_logits")
    builder.softmax()
    return builder.build()


def augmented_reality(
    name: str = "ar_plane_tracker",
    *,
    resolution: int = 224,
    framework: str = "tflite",
    task: str = "augmented reality",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Plane/anchor tracking feature network used by AR filters."""
    builder = _image_builder(name, resolution, framework=framework,
                             architecture="ar_tracker", task=task,
                             weight_seed=weight_seed, weight_dtype=weight_dtype)
    builder.conv2d(32, kernel=3, stride=2, activation=OpType.RELU6)
    for filters in (64, 96, 128, 160):
        builder.depthwise_conv2d(kernel=3, stride=2, activation=OpType.RELU6)
        builder.conv2d(filters, kernel=1, activation=OpType.RELU6)
    builder.conv2d(64, kernel=1, name="descriptor_head")
    builder.global_avg_pool()
    builder.dense(7, name="pose_quaternion_translation")
    return builder.build()


def pose_estimation(
    name: str = "posenet_mobilenet",
    *,
    resolution: int = 257,
    num_keypoints: int = 17,
    alpha: float = 0.75,
    framework: str = "tflite",
    task: str = "pose estimation",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """PoseNet-style keypoint heatmap + offset network on a MobileNet backbone."""
    from repro.dnn.zoo.mobilenet import mobilenet_backbone

    builder = _image_builder(name, resolution, framework=framework,
                             architecture="posenet", task=task,
                             weight_seed=weight_seed, weight_dtype=weight_dtype)
    mobilenet_backbone(builder, alpha=alpha, version=1)
    backbone_head = builder.checkpoint()
    heatmaps = builder.conv2d(num_keypoints, kernel=1, name="heatmaps")
    builder.restore(backbone_head)
    offsets = builder.conv2d(2 * num_keypoints, kernel=1, name="offsets")
    builder.restore_to(heatmaps.name, heatmaps.output_spec)
    builder.concat([offsets.name], [offsets.output_spec], name="pose_outputs")
    builder.activation(OpType.SIGMOID, name="heatmap_scores")
    return builder.build()


def photo_beauty(
    name: str = "beauty_filter",
    *,
    resolution: int = 256,
    framework: str = "tflite",
    task: str = "photo beauty",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Image-to-image enhancement ("beautification") network."""
    builder = _image_builder(name, resolution, framework=framework,
                             architecture="beauty_net", task=task,
                             weight_seed=weight_seed, weight_dtype=weight_dtype)
    builder.conv2d(16, kernel=3, activation=OpType.RELU)
    builder.conv2d(32, kernel=3, stride=2, activation=OpType.RELU)
    for _ in range(3):
        residual = builder.checkpoint()
        builder.conv2d(32, kernel=3, activation=OpType.RELU)
        builder.conv2d(32, kernel=3)
        builder.add(residual.name)
    builder.transpose_conv2d(16, kernel=2, stride=2)
    builder.conv2d(3, kernel=3, name="enhanced_image")
    builder.activation(OpType.TANH)
    return builder.build()


def face_recognition(
    name: str = "facenet_mobile",
    *,
    resolution: int = 160,
    embedding_dim: int = 128,
    alpha: float = 1.0,
    framework: str = "tflite",
    task: str = "face recognition",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Face-embedding network (FaceNet/MobileFaceNet style)."""
    from repro.dnn.zoo.mobilenet import mobilenet_backbone

    builder = _image_builder(name, resolution, framework=framework,
                             architecture="mobile_facenet", task=task,
                             weight_seed=weight_seed, weight_dtype=weight_dtype)
    mobilenet_backbone(builder, alpha=alpha, version=2)
    builder.global_avg_pool()
    builder.dense(embedding_dim, name="embedding")
    return builder.build()


def nudity_classifier(
    name: str = "nsfw_classifier",
    *,
    resolution: int = 224,
    framework: str = "tflite",
    task: str = "nudity detection",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Binary content-safety classifier on a slim MobileNet backbone."""
    from repro.dnn.zoo.mobilenet import mobilenet_v1

    return mobilenet_v1(
        name,
        alpha=0.5,
        resolution=resolution,
        num_classes=2,
        framework=framework,
        task=task,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )


def style_transfer(
    name: str = "style_transfer",
    *,
    resolution: int = 384,
    framework: str = "tflite",
    task: str = "style transfer",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Fast neural style-transfer network (encoder, residual blocks, decoder)."""
    builder = _image_builder(name, resolution, framework=framework,
                             architecture="fast_style_transfer", task=task,
                             weight_seed=weight_seed, weight_dtype=weight_dtype)
    builder.conv2d(32, kernel=9, activation=OpType.RELU)
    builder.conv2d(64, kernel=3, stride=2, activation=OpType.RELU)
    builder.conv2d(128, kernel=3, stride=2, activation=OpType.RELU)
    for _ in range(5):
        residual = builder.checkpoint()
        builder.conv2d(128, kernel=3, activation=OpType.RELU)
        builder.conv2d(128, kernel=3)
        builder.add(residual.name)
    builder.transpose_conv2d(64, kernel=2, stride=2)
    builder.transpose_conv2d(32, kernel=2, stride=2)
    builder.conv2d(3, kernel=9, name="stylised_image")
    builder.activation(OpType.TANH)
    return builder.build()


def image_classifier(
    name: str = "image_classifier",
    *,
    resolution: int = 224,
    num_classes: int = 1000,
    alpha: float = 1.0,
    version: int = 2,
    framework: str = "tflite",
    task: str = "image classification",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """General image classifier backed by a MobileNet backbone."""
    from repro.dnn.zoo.mobilenet import mobilenet_v1, mobilenet_v2

    build_fn = mobilenet_v2 if version == 2 else mobilenet_v1
    return build_fn(
        name,
        alpha=alpha,
        resolution=resolution,
        num_classes=num_classes,
        framework=framework,
        task=task,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
