"""MobileNet V1/V2 backbones — the most popular architecture found in the wild.

The paper (Sec. 4.5) reports MobileNet as the most widely deployed backbone,
with variants reused for detection (FSSD), segmentation, pose estimation and
classification.  The builders here reproduce the layer structure (depthwise
separable blocks, inverted residuals) with a configurable width multiplier and
input resolution, which is what determines FLOPs and parameter counts.
"""

from __future__ import annotations

from typing import Optional

from repro.dnn.builder import GraphBuilder
from repro.dnn.graph import Graph, Modality
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType

__all__ = ["mobilenet_v1", "mobilenet_v2", "mobilenet_backbone"]

#: (filters, stride) per depthwise-separable block of MobileNetV1.
_V1_BLOCKS = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
]

#: (expansion, filters, repeats, stride) per inverted-residual stage of MobileNetV2.
_V2_STAGES = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _scaled(filters: int, alpha: float) -> int:
    return max(8, int(round(filters * alpha / 8)) * 8)


def mobilenet_backbone(builder: GraphBuilder, alpha: float = 1.0,
                       version: int = 1) -> GraphBuilder:
    """Append a MobileNet backbone to an existing builder and return it."""
    if version == 1:
        builder.conv2d(_scaled(32, alpha), kernel=3, stride=2, activation=OpType.RELU6)
        for filters, stride in _V1_BLOCKS:
            builder.depthwise_conv2d(kernel=3, stride=stride, activation=OpType.RELU6)
            builder.conv2d(_scaled(filters, alpha), kernel=1, activation=OpType.RELU6)
        return builder
    if version == 2:
        builder.conv2d(_scaled(32, alpha), kernel=3, stride=2, activation=OpType.RELU6)
        in_channels = _scaled(32, alpha)
        for expansion, filters, repeats, stride in _V2_STAGES:
            out_channels = _scaled(filters, alpha)
            for i in range(repeats):
                block_stride = stride if i == 0 else 1
                residual = builder.checkpoint()
                if expansion != 1:
                    builder.conv2d(in_channels * expansion, kernel=1,
                                   activation=OpType.RELU6)
                builder.depthwise_conv2d(kernel=3, stride=block_stride,
                                         activation=OpType.RELU6)
                builder.conv2d(out_channels, kernel=1)
                if block_stride == 1 and in_channels == out_channels:
                    builder.add(residual.name)
                in_channels = out_channels
        builder.conv2d(_scaled(1280, alpha), kernel=1, activation=OpType.RELU6)
        return builder
    raise ValueError(f"unsupported MobileNet version: {version}")


def mobilenet_v1(
    name: str = "mobilenet_v1",
    *,
    alpha: float = 1.0,
    resolution: int = 224,
    num_classes: int = 1000,
    framework: str = "tflite",
    task: str = "image classification",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
    include_top: bool = True,
) -> Graph:
    """Build a MobileNetV1 classifier graph."""
    builder = GraphBuilder(
        name,
        (1, resolution, resolution, 3),
        framework=framework,
        architecture="mobilenet_v1",
        task=task,
        modality=Modality.IMAGE,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    mobilenet_backbone(builder, alpha=alpha, version=1)
    if include_top:
        builder.global_avg_pool()
        builder.dense(num_classes)
        builder.softmax()
    return builder.build()


def mobilenet_v2(
    name: str = "mobilenet_v2",
    *,
    alpha: float = 1.0,
    resolution: int = 224,
    num_classes: int = 1000,
    framework: str = "tflite",
    task: str = "image classification",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
    include_top: bool = True,
) -> Graph:
    """Build a MobileNetV2 classifier graph."""
    builder = GraphBuilder(
        name,
        (1, resolution, resolution, 3),
        framework=framework,
        architecture="mobilenet_v2",
        task=task,
        modality=Modality.IMAGE,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    mobilenet_backbone(builder, alpha=alpha, version=2)
    if include_top:
        builder.global_avg_pool()
        builder.dense(num_classes)
        builder.softmax()
    return builder.build()
