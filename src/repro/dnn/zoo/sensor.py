"""Sensor-data architectures: movement tracking and crash detection.

The paper found only four sensor models, with anecdotal use cases of horse
movement tracking and car crash detection in insurance apps (Sec. 4.4).
"""

from __future__ import annotations

from repro.dnn.builder import GraphBuilder
from repro.dnn.graph import Graph, Modality
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType

__all__ = ["movement_tracking", "crash_detection"]


def movement_tracking(
    name: str = "activity_tracker",
    *,
    window: int = 128,
    channels: int = 6,
    num_activities: int = 8,
    framework: str = "tflite",
    task: str = "movement tracking",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Activity/movement recogniser over accelerometer + gyroscope windows."""
    builder = GraphBuilder(
        name,
        (1, window, channels),
        framework=framework,
        architecture="imu_gru",
        task=task,
        modality=Modality.SENSOR,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    builder.gru(64, return_sequences=True, name="imu_gru_1")
    builder.gru(64, return_sequences=False, name="imu_gru_2")
    builder.dense(32, activation=OpType.RELU)
    builder.dense(num_activities, name="activity_logits")
    builder.softmax()
    return builder.build()


def crash_detection(
    name: str = "crash_detector",
    *,
    window: int = 256,
    channels: int = 9,
    framework: str = "tflite",
    task: str = "crash detection",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Binary car-crash detector over high-rate IMU windows (insurance apps)."""
    builder = GraphBuilder(
        name,
        (1, window, channels),
        framework=framework,
        architecture="imu_crash_lstm",
        task=task,
        modality=Modality.SENSOR,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    builder.lstm(48, return_sequences=True, name="imu_lstm_1")
    builder.lstm(48, return_sequences=False, name="imu_lstm_2")
    builder.dense(16, activation=OpType.RELU)
    builder.dense(2, name="crash_logits")
    builder.softmax()
    return builder.build()
