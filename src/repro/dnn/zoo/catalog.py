"""Catalogue mapping the paper's task taxonomy (Table 3) to zoo architectures.

The synthetic Play Store generator samples from this catalogue with weights
proportional to the per-task model counts reported in Table 3, which is how
the reproduced dataset ends up with the same task distribution as the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.dnn.graph import Graph, Modality
from repro.dnn.tensor import DType
from repro.dnn.zoo import audio, detection, mobilenet, nlp, segmentation, sensor, vision_misc

__all__ = ["ArchitectureEntry", "CATALOG", "architectures_for_task", "build",
           "TASK_MODALITY", "TASK_WEIGHTS"]

Builder = Callable[..., Graph]


@dataclass(frozen=True)
class ArchitectureEntry:
    """One deployable architecture: a builder plus naming hints.

    ``name_templates`` are realistic file-name stems observed for this kind of
    model ("hair_segmentation_mobilenet", "blazeface", ...); the app generator
    picks one, so ~67% of models carry names hinting at their task, as in the
    paper (Sec. 4.4).
    """

    architecture: str
    task: str
    modality: Modality
    builder: Builder
    name_templates: tuple[str, ...]
    size_variants: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    popularity: float = 1.0


#: Task -> modality mapping covering every row of Table 3.
TASK_MODALITY: dict[str, Modality] = {
    "object detection": Modality.IMAGE,
    "face detection": Modality.IMAGE,
    "contour detection": Modality.IMAGE,
    "text recognition": Modality.IMAGE,
    "augmented reality": Modality.IMAGE,
    "semantic segmentation": Modality.IMAGE,
    "object recognition": Modality.IMAGE,
    "pose estimation": Modality.IMAGE,
    "photo beauty": Modality.IMAGE,
    "image classification": Modality.IMAGE,
    "nudity detection": Modality.IMAGE,
    "face recognition": Modality.IMAGE,
    "style transfer": Modality.IMAGE,
    "hair reconstruction": Modality.IMAGE,
    "landmark detection": Modality.IMAGE,
    "auto-complete": Modality.TEXT,
    "sentiment prediction": Modality.TEXT,
    "content filter": Modality.TEXT,
    "text classification": Modality.TEXT,
    "translation": Modality.TEXT,
    "sound recognition": Modality.AUDIO,
    "speech recognition": Modality.AUDIO,
    "keyword detection": Modality.AUDIO,
    "movement tracking": Modality.SENSOR,
    "crash detection": Modality.SENSOR,
}

#: Task -> model count in the paper's latest snapshot (Table 3).  Used by the
#: app generator as sampling weights so the reproduced task distribution
#: matches the paper's.
TASK_WEIGHTS: dict[str, int] = {
    "object detection": 788,
    "face detection": 197,
    "contour detection": 192,
    "text recognition": 185,
    "augmented reality": 51,
    "semantic segmentation": 14,
    "object recognition": 14,
    "pose estimation": 8,
    "photo beauty": 8,
    "image classification": 7,
    "nudity detection": 5,
    "face recognition": 6,
    "style transfer": 5,
    "hair reconstruction": 5,
    "landmark detection": 10,
    "auto-complete": 9,
    "sentiment prediction": 4,
    "content filter": 2,
    "text classification": 1,
    "translation": 1,
    "sound recognition": 12,
    "speech recognition": 2,
    "keyword detection": 1,
    "movement tracking": 3,
    "crash detection": 1,
}


def _entry(architecture: str, task: str, builder: Builder,
           names: Sequence[str], popularity: float = 1.0,
           variants: Mapping[str, Mapping[str, object]] | None = None) -> ArchitectureEntry:
    return ArchitectureEntry(
        architecture=architecture,
        task=task,
        modality=TASK_MODALITY[task],
        builder=builder,
        name_templates=tuple(names),
        size_variants=dict(variants or {}),
        popularity=popularity,
    )


CATALOG: tuple[ArchitectureEntry, ...] = (
    # --- vision: object detection (dominant task, FSSD most popular) -------
    _entry("fssd", "object detection", detection.fssd,
           ("fssd_mobilenet_v1", "object_detector_fssd", "detect", "ssd_mobilenet_fssd"),
           popularity=3.0,
           variants={
               "300": {"resolution": 300},
               "224": {"resolution": 224, "alpha": 0.75},
               "160-slim": {"resolution": 160, "alpha": 0.5},
           }),
    _entry("ssd_mobilenet", "object detection", detection.ssd_mobilenet,
           ("ssd_mobilenet_v2", "object_labeler", "mobile_object_localizer"),
           popularity=2.0,
           variants={"300": {"resolution": 300}, "192": {"resolution": 192, "alpha": 0.75}}),
    _entry("card_detector", "object detection", detection.ssd_mobilenet,
           ("card_detector", "paycard_detection", "id_card_detector"),
           popularity=1.5,
           variants={"256": {"resolution": 256, "alpha": 0.5, "num_classes": 4}}),
    # --- vision: face detection --------------------------------------------
    _entry("blazeface", "face detection", detection.blazeface,
           ("blazeface", "face_detection_short_range", "face_detector"),
           popularity=3.0,
           variants={"128": {"resolution": 128}, "192": {"resolution": 192}}),
    # --- vision: contour / landmark detection ------------------------------
    _entry("contour_net", "contour detection", vision_misc.contour_detection,
           ("face_contours", "contour_detector", "mlkit_contours"),
           popularity=2.0,
           variants={"192": {"resolution": 192}, "128": {"resolution": 128, "num_points": 64}}),
    _entry("landmark_net", "contour detection", vision_misc.landmark_detection,
           ("face_landmark", "face_mesh", "facemesh_468"),
           popularity=2.0,
           variants={"192": {"resolution": 192}, "256": {"resolution": 256}}),
    # --- vision: text recognition ------------------------------------------
    _entry("crnn", "text recognition", vision_misc.ocr_crnn,
           ("text_recognition_crnn", "ocr_latin", "card_number_recognizer",
            "paycards_recognizer"),
           popularity=2.5,
           variants={"320": {"width": 320}, "200": {"width": 200, "vocab_size": 48}}),
    # --- vision: augmented reality ------------------------------------------
    _entry("ar_tracker", "augmented reality", vision_misc.augmented_reality,
           ("ar_plane_tracker", "ar_anchor_net", "arcore_feature_net"),
           popularity=1.0,
           variants={"224": {"resolution": 224}, "160": {"resolution": 160}}),
    # --- vision: segmentation ------------------------------------------------
    _entry("hair_segmentation", "semantic segmentation", segmentation.hair_segmentation,
           ("hair_segmentation_mobilenet", "hair_segmenter"),
           popularity=1.0,
           variants={"512": {"resolution": 512}, "256": {"resolution": 256}}),
    _entry("person_segmentation", "semantic segmentation", segmentation.unet_lite,
           ("selfie_segmentation", "portrait_segmenter", "background_segmenter"),
           popularity=1.5,
           variants={"256": {"resolution": 256}, "144": {"resolution": 144, "base_filters": 16}}),
    _entry("deeplab_lite", "semantic segmentation", segmentation.deeplab_lite,
           ("deeplabv3_mnv2", "segmentation_deeplab"),
           popularity=1.0,
           variants={"257": {"resolution": 257}}),
    # --- vision: other tasks -------------------------------------------------
    _entry("classifier", "object recognition", vision_misc.image_classifier,
           ("object_recognizer", "wine_label_classifier", "food_classifier",
            "plant_recognizer"),
           popularity=1.5,
           variants={"224": {"resolution": 224, "num_classes": 500},
                     "192": {"resolution": 192, "alpha": 0.75, "num_classes": 200}}),
    _entry("posenet", "pose estimation", vision_misc.pose_estimation,
           ("posenet_mobilenet", "pose_landmark_lite"),
           popularity=1.0,
           variants={"257": {"resolution": 257}, "193": {"resolution": 193, "alpha": 0.5}}),
    _entry("beauty_net", "photo beauty", vision_misc.photo_beauty,
           ("beauty_filter", "face_retouch", "skin_smoothing"),
           popularity=1.0,
           variants={"256": {"resolution": 256}, "192": {"resolution": 192}}),
    _entry("mobilenet_classifier", "image classification", vision_misc.image_classifier,
           ("mobilenet_v2_1.0_224", "mobilenet_v1_0.75_192", "imagenet_classifier"),
           popularity=1.0,
           variants={"224": {"resolution": 224}, "192": {"resolution": 192, "alpha": 0.75}}),
    _entry("nsfw", "nudity detection", vision_misc.nudity_classifier,
           ("nsfw_detector", "content_moderation_nsfw"),
           popularity=1.0,
           variants={"224": {"resolution": 224}}),
    _entry("mobile_facenet", "face recognition", vision_misc.face_recognition,
           ("facenet_mobile", "face_embedding", "face_verifier"),
           popularity=1.0,
           variants={"160": {"resolution": 160}, "112": {"resolution": 112, "alpha": 0.75}}),
    _entry("fast_style_transfer", "style transfer", vision_misc.style_transfer,
           ("style_transfer", "art_filter", "cartoonizer"),
           popularity=1.0,
           variants={"384": {"resolution": 384}, "256": {"resolution": 256}}),
    _entry("hair_recon", "hair reconstruction", segmentation.unet_lite,
           ("hair_reconstruction", "hair_recolor_net"),
           popularity=1.0,
           variants={"512": {"resolution": 512, "base_filters": 32},
                     "384": {"resolution": 384, "base_filters": 24}}),
    _entry("landmark_regressor", "landmark detection", vision_misc.landmark_detection,
           ("hand_landmark", "iris_landmark", "body_landmarks"),
           popularity=1.0,
           variants={"224": {"resolution": 224, "num_landmarks": 21},
                     "192": {"resolution": 192, "num_landmarks": 33}}),
    # --- text ----------------------------------------------------------------
    _entry("autocomplete_lstm", "auto-complete", nlp.autocomplete_lstm,
           ("keyboard_autocomplete", "next_word_predictor", "smart_compose_lite"),
           popularity=2.0,
           variants={"base": {}, "small": {"hidden_size": 128, "vocab_size": 10000}}),
    _entry("sentiment_gru", "sentiment prediction", nlp.sentiment_cnn,
           ("sentiment_classifier", "review_sentiment"),
           popularity=1.0,
           variants={"base": {}}),
    _entry("content_filter_mlp", "content filter", nlp.content_filter,
           ("content_filter", "toxicity_detector"),
           popularity=1.0,
           variants={"base": {}}),
    _entry("text_classifier_gru", "text classification", nlp.text_classifier,
           ("text_topic_classifier", "intent_classifier"),
           popularity=1.0,
           variants={"base": {}}),
    _entry("seq2seq_lstm", "translation", nlp.translation_seq2seq,
           ("on_device_translator", "offline_translate"),
           popularity=1.0,
           variants={"base": {}}),
    # --- audio ---------------------------------------------------------------
    _entry("sound_cnn", "sound recognition", audio.sound_recognition,
           ("ambient_sound_classifier", "yamnet_lite", "sound_events",
            "baby_cry_detector"),
           popularity=2.0,
           variants={"base": {}, "small": {"num_classes": 50, "mel_bins": 40}}),
    _entry("asr_conv_lstm", "speech recognition", audio.speech_recognition,
           ("on_device_asr", "speech_to_text_streaming"),
           popularity=1.0,
           variants={"base": {}}),
    _entry("kws_dscnn", "keyword detection", audio.keyword_spotting,
           ("hotword_detector", "wakeword_ds_cnn"),
           popularity=1.0,
           variants={"base": {}}),
    # --- sensors -------------------------------------------------------------
    _entry("imu_gru", "movement tracking", sensor.movement_tracking,
           ("activity_tracker", "horse_movement_tracker", "step_activity_net"),
           popularity=1.0,
           variants={"base": {}}),
    _entry("imu_crash_lstm", "crash detection", sensor.crash_detection,
           ("crash_detector", "collision_detection"),
           popularity=1.0,
           variants={"base": {}}),
)


def architectures_for_task(task: str) -> tuple[ArchitectureEntry, ...]:
    """Return every catalogue entry deployable for ``task``."""
    entries = tuple(entry for entry in CATALOG if entry.task == task)
    if not entries:
        raise KeyError(f"no architectures registered for task {task!r}")
    return entries


def build(entry: ArchitectureEntry, *, name: str | None = None,
          variant: str | None = None, framework: str = "tflite",
          weight_seed: int = 0, weight_dtype: DType = DType.FLOAT32,
          **overrides) -> Graph:
    """Instantiate a catalogue entry as a concrete graph.

    Parameters
    ----------
    entry:
        Catalogue entry to build.
    name:
        Model name; defaults to the entry's first name template.
    variant:
        Key into ``entry.size_variants`` selecting a resolution/width variant.
    framework, weight_seed, weight_dtype:
        Passed through to the architecture builder.
    overrides:
        Additional builder keyword arguments (take precedence over the variant).
    """
    kwargs: dict[str, object] = {}
    if variant is not None:
        if variant not in entry.size_variants:
            raise KeyError(
                f"unknown variant {variant!r} for {entry.architecture!r}; "
                f"available: {sorted(entry.size_variants)}"
            )
        kwargs.update(entry.size_variants[variant])
    kwargs.update(overrides)
    return entry.builder(
        name or entry.name_templates[0],
        framework=framework,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
        task=entry.task,
        **kwargs,
    )
