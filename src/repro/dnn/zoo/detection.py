"""Detection architectures: FSSD, SSD-MobileNet and BlazeFace.

The paper finds object detection to be the single most common task (52.7% of
vision models, Table 3), with FSSD the most popular detector and BlazeFace the
most popular face detector (Sec. 4.5).
"""

from __future__ import annotations

from repro.dnn.builder import GraphBuilder
from repro.dnn.graph import Graph, Modality
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType

__all__ = ["fssd", "ssd_mobilenet", "blazeface"]


def _detection_head(builder: GraphBuilder, feature_names: list[str],
                    feature_specs: list, num_anchors: int, num_classes: int) -> None:
    """Append per-feature-map box/class prediction heads and a postprocess node."""
    head_outputs: list[str] = []
    head_specs = []
    for index, (feat_name, feat_spec) in enumerate(zip(feature_names, feature_specs)):
        builder.restore_to(feat_name, feat_spec)
        box = builder.conv2d(num_anchors * 4, kernel=3, name=f"box_head_{index}")
        builder.restore_to(feat_name, feat_spec)
        cls = builder.conv2d(num_anchors * num_classes, kernel=3,
                             name=f"class_head_{index}")
        head_outputs.extend([box.name, cls.name])
        head_specs.extend([box.output_spec, cls.output_spec])
    builder.restore_to(head_outputs[0], head_specs[0])
    builder.concat(head_outputs[1:], head_specs[1:], name="head_concat")
    builder.detection_postprocess(max_detections=100)


def fssd(
    name: str = "fssd_mobilenet",
    *,
    resolution: int = 300,
    num_classes: int = 91,
    alpha: float = 1.0,
    framework: str = "tflite",
    task: str = "object detection",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Feature-fusion SSD with a MobileNet-style backbone.

    FSSD fuses multi-scale backbone features into a common map before building
    a new feature pyramid; the paper identifies it as the most popular object
    detector in the wild (including in Google's own apps).
    """
    from repro.dnn.zoo.mobilenet import mobilenet_backbone

    builder = GraphBuilder(
        name,
        (1, resolution, resolution, 3),
        framework=framework,
        architecture="fssd",
        task=task,
        modality=Modality.IMAGE,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    mobilenet_backbone(builder, alpha=alpha, version=1)

    # Fusion: project the final feature map and upsample into a fused map.
    builder.conv2d(256, kernel=1, name="fusion_project", activation=OpType.RELU)
    builder.resize(scale=2, name="fusion_upsample")
    builder.batch_norm(name="fusion_bn")

    # New feature pyramid built on the fused map.
    pyramid_names: list[str] = []
    pyramid_specs = []
    channels = [256, 256, 256, 128, 128, 128]
    for index, ch in enumerate(channels):
        stride = 1 if index == 0 else 2
        layer = builder.conv2d(ch, kernel=3, stride=stride,
                               name=f"pyramid_conv_{index}", activation=OpType.RELU)
        pyramid_names.append(builder.current)
        pyramid_specs.append(builder.current_spec)

    _detection_head(builder, pyramid_names, pyramid_specs,
                    num_anchors=6, num_classes=num_classes)
    return builder.build()


def ssd_mobilenet(
    name: str = "ssd_mobilenet_v2",
    *,
    resolution: int = 300,
    num_classes: int = 91,
    alpha: float = 1.0,
    framework: str = "tflite",
    task: str = "object detection",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Vanilla SSD-MobileNetV2 detector (the other common off-the-shelf detector)."""
    from repro.dnn.zoo.mobilenet import mobilenet_backbone

    builder = GraphBuilder(
        name,
        (1, resolution, resolution, 3),
        framework=framework,
        architecture="ssd_mobilenet",
        task=task,
        modality=Modality.IMAGE,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    mobilenet_backbone(builder, alpha=alpha, version=2)

    pyramid_names: list[str] = []
    pyramid_specs = []
    for index, ch in enumerate([512, 256, 256, 128]):
        builder.conv2d(ch // 2, kernel=1, name=f"extra_project_{index}",
                       activation=OpType.RELU6)
        builder.conv2d(ch, kernel=3, stride=2, name=f"extra_conv_{index}",
                       activation=OpType.RELU6)
        pyramid_names.append(builder.current)
        pyramid_specs.append(builder.current_spec)

    _detection_head(builder, pyramid_names, pyramid_specs,
                    num_anchors=6, num_classes=num_classes)
    return builder.build()


def blazeface(
    name: str = "blazeface",
    *,
    resolution: int = 128,
    framework: str = "tflite",
    task: str = "face detection",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """BlazeFace: sub-millisecond face detector built from "blaze blocks".

    A blaze block is a depthwise 5x5 convolution followed by a 1x1 projection
    with a residual connection; double blaze blocks stack two of them.
    """
    builder = GraphBuilder(
        name,
        (1, resolution, resolution, 3),
        framework=framework,
        architecture="blazeface",
        task=task,
        modality=Modality.IMAGE,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
    )
    builder.conv2d(24, kernel=5, stride=2, activation=OpType.RELU)

    def blaze_block(filters: int, stride: int = 1) -> None:
        residual = builder.checkpoint()
        builder.depthwise_conv2d(kernel=5, stride=stride)
        builder.conv2d(filters, kernel=1)
        if stride == 1 and residual.spec.shape[-1] == filters:
            builder.add(residual.name)
        builder.activation(OpType.RELU)

    for filters in (24, 24, 48):
        blaze_block(filters, stride=2 if filters == 48 else 1)
    for filters in (48, 48):
        blaze_block(filters)
    for filters in (96, 96, 96):
        blaze_block(filters, stride=2 if filters == 96 and builder.current_spec.shape[1] > 16 else 1)

    # Two prediction branches: 16x16 and 8x8 anchors.
    feature_16 = builder.checkpoint()
    builder.conv2d(96, kernel=3, stride=2, name="downsample_8", activation=OpType.RELU)
    feature_8 = builder.checkpoint()

    builder.restore(feature_16)
    box_16 = builder.conv2d(2 * 16, kernel=1, name="box_regressor_16")
    builder.restore(feature_16)
    cls_16 = builder.conv2d(2, kernel=1, name="classificator_16")
    builder.restore(feature_8)
    box_8 = builder.conv2d(6 * 16, kernel=1, name="box_regressor_8")
    builder.restore(feature_8)
    cls_8 = builder.conv2d(6, kernel=1, name="classificator_8")

    builder.restore_to(box_16.name, box_16.output_spec)
    builder.concat([cls_16.name, box_8.name, cls_8.name],
                   [cls_16.output_spec, box_8.output_spec, cls_8.output_spec],
                   name="raw_detections")
    builder.detection_postprocess(max_detections=48)
    return builder.build()
