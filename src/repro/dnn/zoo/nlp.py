"""Text (NLP) architectures from the paper's task taxonomy (Table 3).

The NLP models found in the wild are dominated by keyboard auto-completion
(52.9%), followed by sentiment prediction, content filtering, text
classification and translation.
"""

from __future__ import annotations

from repro.dnn.builder import GraphBuilder
from repro.dnn.graph import Graph, Modality
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType

__all__ = [
    "autocomplete_lstm",
    "sentiment_cnn",
    "content_filter",
    "text_classifier",
    "translation_seq2seq",
]


def _text_builder(name: str, seq_len: int, *, framework: str, architecture: str,
                  task: str, weight_seed: int, weight_dtype: DType) -> GraphBuilder:
    return GraphBuilder(
        name,
        (1, seq_len),
        framework=framework,
        architecture=architecture,
        task=task,
        modality=Modality.TEXT,
        weight_seed=weight_seed,
        weight_dtype=weight_dtype,
        input_dtype=DType.INT32,
    )


def autocomplete_lstm(
    name: str = "keyboard_autocomplete",
    *,
    seq_len: int = 16,
    vocab_size: int = 20000,
    embedding_dim: int = 96,
    hidden_size: int = 256,
    framework: str = "tflite",
    task: str = "auto-complete",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Next-word prediction LSTM used by keyboard apps.

    The paper reports text auto-completion as the heaviest deployed NLP task
    in FLOPs, and uses a 275-word typing workload for its Table 4 scenario.
    """
    builder = _text_builder(name, seq_len, framework=framework,
                            architecture="autocomplete_lstm", task=task,
                            weight_seed=weight_seed, weight_dtype=weight_dtype)
    builder.embedding(vocab_size, embedding_dim)
    builder.lstm(hidden_size, return_sequences=True, name="lstm_1")
    builder.lstm(hidden_size, return_sequences=False, name="lstm_2")
    builder.dense(vocab_size, name="next_word_logits")
    builder.softmax()
    return builder.build()


def sentiment_cnn(
    name: str = "sentiment_classifier",
    *,
    seq_len: int = 64,
    vocab_size: int = 10000,
    embedding_dim: int = 64,
    framework: str = "tflite",
    task: str = "sentiment prediction",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Sentiment prediction model: embedding + GRU + dense head."""
    builder = _text_builder(name, seq_len, framework=framework,
                            architecture="sentiment_gru", task=task,
                            weight_seed=weight_seed, weight_dtype=weight_dtype)
    builder.embedding(vocab_size, embedding_dim)
    builder.gru(64, return_sequences=False)
    builder.dense(32, activation=OpType.RELU)
    builder.dense(3, name="sentiment_logits")
    builder.softmax()
    return builder.build()


def content_filter(
    name: str = "content_filter",
    *,
    seq_len: int = 128,
    vocab_size: int = 30000,
    embedding_dim: int = 48,
    framework: str = "tflite",
    task: str = "content filter",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Toxic/abusive text filter: lightweight embedding-average classifier."""
    builder = _text_builder(name, seq_len, framework=framework,
                            architecture="content_filter_mlp", task=task,
                            weight_seed=weight_seed, weight_dtype=weight_dtype)
    builder.embedding(vocab_size, embedding_dim)
    builder.gru(48, return_sequences=False)
    builder.dense(24, activation=OpType.RELU)
    builder.dense(2, name="toxicity_logits")
    builder.softmax()
    return builder.build()


def text_classifier(
    name: str = "text_topic_classifier",
    *,
    seq_len: int = 256,
    vocab_size: int = 50000,
    embedding_dim: int = 128,
    num_classes: int = 20,
    framework: str = "tflite",
    task: str = "text classification",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Topic/intent classifier with a two-layer GRU encoder."""
    builder = _text_builder(name, seq_len, framework=framework,
                            architecture="text_classifier_gru", task=task,
                            weight_seed=weight_seed, weight_dtype=weight_dtype)
    builder.embedding(vocab_size, embedding_dim)
    builder.gru(128, return_sequences=True, name="encoder_gru_1")
    builder.gru(128, return_sequences=False, name="encoder_gru_2")
    builder.dense(num_classes, name="topic_logits")
    builder.softmax()
    return builder.build()


def translation_seq2seq(
    name: str = "on_device_translator",
    *,
    seq_len: int = 48,
    vocab_size: int = 32000,
    embedding_dim: int = 256,
    hidden_size: int = 512,
    framework: str = "tflite",
    task: str = "translation",
    weight_seed: int = 0,
    weight_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Sequence-to-sequence translation model (encoder/decoder LSTMs)."""
    builder = _text_builder(name, seq_len, framework=framework,
                            architecture="seq2seq_lstm", task=task,
                            weight_seed=weight_seed, weight_dtype=weight_dtype)
    builder.embedding(vocab_size, embedding_dim, name="source_embedding")
    builder.lstm(hidden_size, return_sequences=True, name="encoder_lstm")
    builder.lstm(hidden_size, return_sequences=True, name="decoder_lstm")
    builder.dense(vocab_size, name="target_logits")
    builder.softmax()
    return builder.build()
