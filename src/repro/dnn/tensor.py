"""Tensor specifications and deterministic synthetic weight tensors.

The paper analyses models found in the wild, whose trained weights we do not
have.  The analyses that touch weights are structural, however: checksum-based
deduplication (Sec. 4.5), layer-level fine-tuning detection (Sec. 4.5), weight
sparsity (Sec. 6.1) and bit-width inspection (Sec. 6.1).  All of these are
preserved by *deterministic* synthetic weights: a :class:`WeightTensor` is
fully described by its shape, dtype, a generation seed and a target sparsity,
and two tensors with the same description serialise to identical bytes (hence
identical checksums), while tensors with different seeds differ.

Materialising multi-million-parameter tensors for 1,600+ models would be
wasteful, so a weight tensor only materialises a bounded *sample* of its
values; statistics computed on the sample (sparsity, quantisation range) are
representative of the full tensor by construction.

A :class:`WeightTensor` is immutable, so every derived quantity (the RNG
sample, the serialised bytes, the md5 checksum) is a pure function of its
fields and is memoised per instance.  The uniqueness and fine-tuning analyses
(Sec. 4.5) touch the same tensors O(N^2) times across model pairs; without the
cache each touch re-runs the RNG.  Cached sample arrays are returned read-only
so a caller cannot poison the cache in place.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

__all__ = ["DType", "TensorSpec", "WeightTensor"]

#: Upper bound on the number of values a weight tensor materialises.
MAX_MATERIALISED_VALUES = 1024


def memo(cache: dict, key, compute):
    """Compute-once helper over a per-instance cache dict.

    Shared by the tensor/layer accounting hot spots (``Graph`` has an
    equivalent bound method).  Cached values must never be ``None``.
    """
    value = cache.get(key)
    if value is None:
        value = compute()
        cache[key] = value
    return value


class DType(str, Enum):
    """Numeric representation of a tensor."""

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    INT8 = "int8"
    UINT8 = "uint8"
    INT16 = "int16"
    INT32 = "int32"

    @property
    def bits(self) -> int:
        """Bit width of a single element."""
        return {
            DType.FLOAT32: 32,
            DType.FLOAT16: 16,
            DType.INT8: 8,
            DType.UINT8: 8,
            DType.INT16: 16,
            DType.INT32: 32,
        }[self]

    @property
    def bytes_per_element(self) -> int:
        """Storage footprint of a single element in bytes."""
        return self.bits // 8

    @property
    def is_quantized(self) -> bool:
        """Whether the dtype is an integer (quantised) representation."""
        return self in (DType.INT8, DType.UINT8, DType.INT16)


@dataclass(frozen=True)
class TensorSpec:
    """Shape and dtype of an activation tensor flowing along a graph edge."""

    shape: tuple[int, ...]
    dtype: DType = DType.FLOAT32

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("TensorSpec requires a non-empty shape")
        if any(dim <= 0 for dim in self.shape):
            raise ValueError(f"TensorSpec dimensions must be positive, got {self.shape}")
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        if not isinstance(self.dtype, DType):
            object.__setattr__(self, "dtype", DType(self.dtype))
        object.__setattr__(self, "_num_elements", int(np.prod(self.shape)))

    @property
    def num_elements(self) -> int:
        """Total number of elements in the tensor."""
        return self._num_elements

    @property
    def size_bytes(self) -> int:
        """Storage footprint in bytes."""
        return self.num_elements * self.dtype.bytes_per_element

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    def with_batch(self, batch: int) -> "TensorSpec":
        """Return a copy whose leading (batch) dimension is replaced."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        return TensorSpec((batch,) + self.shape[1:], self.dtype)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.dtype.value}{list(self.shape)}"


@dataclass(frozen=True)
class WeightTensor:
    """A trainable parameter tensor with deterministic synthetic content.

    Parameters
    ----------
    shape:
        Full logical shape of the tensor.
    dtype:
        Storage dtype; ``int8``/``uint8`` mark a quantised tensor.
    seed:
        Generation seed.  Two weight tensors with identical ``shape``,
        ``dtype``, ``seed`` and ``sparsity`` produce identical bytes and
        therefore identical checksums, which is what drives the paper's
        model-uniqueness and fine-tuning analyses.
    sparsity:
        Fraction of values forced to (near) zero, in ``[0, 1)``.
    name:
        Optional human-readable name (e.g. ``conv1/kernel``).
    """

    shape: tuple[int, ...]
    dtype: DType = DType.FLOAT32
    seed: int = 0
    sparsity: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("WeightTensor requires a non-empty shape")
        if any(dim <= 0 for dim in self.shape):
            raise ValueError(f"WeightTensor dimensions must be positive, got {self.shape}")
        if not 0.0 <= self.sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {self.sparsity}")
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        if not isinstance(self.dtype, DType):
            object.__setattr__(self, "dtype", DType(self.dtype))
        # Per-instance memo for derived quantities; not a dataclass field, so
        # it never participates in equality, hashing or repr.
        object.__setattr__(self, "_cache", {})

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters held by this tensor."""
        return memo(self._cache, "num_parameters",
                    lambda: int(np.prod(self.shape)))

    @property
    def size_bytes(self) -> int:
        """Storage footprint of the full tensor in bytes."""
        return self.num_parameters * self.dtype.bytes_per_element

    def materialize(self, max_values: int = MAX_MATERIALISED_VALUES) -> np.ndarray:
        """Return a deterministic sample of the tensor's values.

        The sample has ``min(num_parameters, max_values)`` elements and is
        drawn from a normal distribution, with a ``sparsity`` fraction of
        entries set to zero.  Quantised dtypes produce integer values.
        """
        if max_values <= 0:
            raise ValueError("max_values must be positive")
        count = min(self.num_parameters, max_values)

        def compute() -> np.ndarray:
            rng = np.random.default_rng(self._derived_seed())
            values = rng.normal(loc=0.0, scale=0.05, size=count).astype(np.float32)
            if self.sparsity > 0.0:
                zero_count = int(round(self.sparsity * count))
                if zero_count:
                    zero_idx = rng.choice(count, size=zero_count, replace=False)
                    values[zero_idx] = 0.0
            if self.dtype.is_quantized:
                scale = max(float(np.max(np.abs(values))), 1e-6) / 127.0
                quantised = np.clip(np.round(values / scale), -128, 127)
                values = quantised.astype(
                    np.int8 if self.dtype == DType.INT8 else np.int16)
            elif self.dtype == DType.FLOAT16:
                values = values.astype(np.float16)
            values.setflags(write=False)
            return values
        return memo(self._cache, ("materialize", count), compute)

    def measured_sparsity(self, tolerance: float = 1e-9) -> float:
        """Fraction of sampled values whose magnitude is within ``tolerance`` of zero."""
        sample = self.materialize()
        if sample.size == 0:
            return 0.0
        return float(np.mean(np.abs(sample.astype(np.float64)) <= tolerance))

    def to_bytes(self) -> bytes:
        """Serialise the tensor into a compact deterministic byte string.

        The byte string embeds the full logical shape and parameter count so
        that two tensors of different sizes never collide, followed by the
        materialised sample.  Serialisers in :mod:`repro.formats` embed these
        bytes verbatim, which makes whole-file and per-layer checksums behave
        like the paper's md5-over-weights analysis.
        """
        def compute() -> bytes:
            header = struct.pack(
                "<4sB", b"WGT0", len(self.shape)
            ) + struct.pack(f"<{len(self.shape)}q", *self.shape)
            header += struct.pack("<16sqd", self.dtype.value.encode().ljust(16, b"\0"),
                                  self.seed, self.sparsity)
            return header + self.materialize().tobytes()
        return memo(self._cache, "to_bytes", compute)

    def checksum(self) -> str:
        """md5 hex digest over the serialised tensor bytes."""
        return memo(self._cache, "checksum",
                    lambda: hashlib.md5(self.to_bytes()).hexdigest())

    def with_seed(self, seed: int) -> "WeightTensor":
        """Return a copy with a different generation seed (fine-tuned weights)."""
        return WeightTensor(self.shape, self.dtype, seed, self.sparsity, self.name)

    def with_dtype(self, dtype: DType) -> "WeightTensor":
        """Return a copy stored with a different dtype (quantised weights)."""
        return WeightTensor(self.shape, dtype, self.seed, self.sparsity, self.name)

    def with_sparsity(self, sparsity: float) -> "WeightTensor":
        """Return a copy with a different target sparsity (pruned weights)."""
        return WeightTensor(self.shape, self.dtype, self.seed, sparsity, self.name)

    def _derived_seed(self) -> int:
        def compute() -> int:
            material = f"{self.shape}|{self.dtype.value}|{self.seed}|{self.sparsity:.6f}"
            digest = hashlib.sha256(material.encode()).digest()
            return int.from_bytes(digest[:8], "little")
        return memo(self._cache, "derived_seed", compute)


def total_parameters(tensors: Iterable[WeightTensor]) -> int:
    """Sum the parameter counts of an iterable of weight tensors."""
    return sum(t.num_parameters for t in tensors)


def stack_checksum(tensors: Sequence[WeightTensor]) -> str:
    """Checksum over an ordered sequence of weight tensors."""
    digest = hashlib.md5()
    for tensor in tensors:
        digest.update(tensor.to_bytes())
    return digest.hexdigest()
