"""Store-served telemetry reports: timeline, stage breakdown, shard skew.

All tables read a sidecar telemetry store (see :mod:`repro.obs.sink`)
through the store's own column caches and return plain lists of dicts —
the CLI (``repro obs report``) renders them, tests assert on them, and
notebooks can frame them.  The span tree is rebuilt from the persisted
``(span_id, parent_id)`` pairs; :meth:`Collector.absorb`'s id remapping
guarantees ids are unique store-wide within one run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

__all__ = ["available_runs", "metrics_table", "run_timeline", "shard_skew",
           "stage_breakdown"]


def _open(store):
    from repro.store.store import ResultStore

    return store if isinstance(store, ResultStore) else ResultStore(store)


def _gather(store, kind_name: str, run_id: Optional[str]) -> Optional[dict]:
    """All of a kind's rows as one concatenated column dict (or ``None``)."""
    from repro.store.schema import kind_for

    metas = store.segments_for(kind_name)
    if not metas:
        return None
    kind = kind_for(kind_name)
    columns = {
        column.name: np.concatenate(
            [np.asarray(store.columns_for(meta)[column.name])
             for meta in metas])
        for column in kind.columns
    }
    if run_id is not None:
        mask = columns["run_id"] == run_id
        columns = {name: array[mask] for name, array in columns.items()}
    if not columns["run_id"].size:
        return None
    return columns


def available_runs(store: Union[str, Path, "ResultStore"]) -> tuple[str, ...]:
    """Distinct ``run_id`` values across the store's telemetry kinds.

    Sorted; empty when the store holds no telemetry rows at all.  The CLI
    uses this to turn "your ``--run`` matched nothing" into a message that
    names the runs that *do* exist instead of printing empty tables.
    """
    store = _open(store)
    runs: set[str] = set()
    for kind_name in ("telemetry_metrics", "telemetry_spans"):
        columns = _gather(store, kind_name, None)
        if columns is not None:
            runs.update(str(run) for run in np.unique(columns["run_id"]))
    return tuple(sorted(runs))


def run_timeline(store: Union[str, Path, "ResultStore"], *,
                 run_id: Optional[str] = None) -> list[dict]:
    """Every span as a timeline row: start offset, duration, tree depth.

    Rows come back ordered by ``(start_s, span_id)`` — wall-clock start
    within a run — with ``offset_s`` relative to the run's earliest span
    and ``depth`` computed from the stitched parent chain (orphan parents
    count as roots, which the stitching tests pin never happens).
    """
    store = _open(store)
    spans = _gather(store, "telemetry_spans", run_id)
    if spans is None:
        return []
    order = np.lexsort((spans["span_id"], spans["start_s"]))
    t0 = float(spans["start_s"].min())
    parents = {int(span_id): int(parent_id)
               for span_id, parent_id in zip(spans["span_id"],
                                             spans["parent_id"])}
    depths: dict[int, int] = {}

    def depth_of(span_id: int) -> int:
        depth = depths.get(span_id)
        if depth is not None:
            return depth
        parent = parents.get(span_id, 0)
        depth = 0 if parent == 0 or parent not in parents \
            else depth_of(parent) + 1
        depths[span_id] = depth
        return depth

    rows = []
    for index in order:
        span_id = int(spans["span_id"][index])
        rows.append({
            "run_id": str(spans["run_id"][index]),
            "span_id": span_id,
            "parent_id": int(spans["parent_id"][index]),
            "name": str(spans["name"][index]),
            "offset_s": float(spans["start_s"][index]) - t0,
            "duration_s": float(spans["duration_s"][index]),
            "depth": depth_of(span_id),
            "shard": int(spans["shard"][index]),
            "items": int(spans["items"][index]),
            "detail": str(spans["detail"][index]),
        })
    return rows


def stage_breakdown(store: Union[str, Path, "ResultStore"], *,
                    run_id: Optional[str] = None) -> list[dict]:
    """Per-span-name totals: count, total/mean/max seconds, items.

    The "where did the run spend its time" table, sorted by total
    duration descending.  Nested spans count their children's time too
    (a span's duration includes everything beneath it) — this is a
    by-stage profile, not an exclusive-time flame graph.
    """
    store = _open(store)
    spans = _gather(store, "telemetry_spans", run_id)
    if spans is None:
        return []
    rows = []
    for name in np.unique(spans["name"]):
        mask = spans["name"] == name
        durations = spans["duration_s"][mask]
        rows.append({
            "name": str(name),
            "spans": int(mask.sum()),
            "total_s": float(durations.sum()),
            "mean_s": float(durations.mean()),
            "max_s": float(durations.max()),
            "items": int(spans["items"][mask].sum()),
        })
    rows.sort(key=lambda row: row["total_s"], reverse=True)
    return rows


def shard_skew(store: Union[str, Path, "ResultStore"], *,
               name: Optional[str] = None,
               run_id: Optional[str] = None) -> list[dict]:
    """Per-shard seconds/items for shard-scoped spans, plus a skew ratio.

    ``name`` restricts to one span name (default: every span recorded
    with ``shard >= 0``).  ``skew`` on each row is that shard's total
    seconds over the mean across shards — the straggler table for
    campaign runs.
    """
    store = _open(store)
    spans = _gather(store, "telemetry_spans", run_id)
    if spans is None:
        return []
    mask = spans["shard"] >= 0
    if name is not None:
        mask &= spans["name"] == name
    if not mask.any():
        return []
    shards = spans["shard"][mask]
    durations = spans["duration_s"][mask]
    items = spans["items"][mask]
    rows = []
    for shard in np.unique(shards):
        shard_mask = shards == shard
        rows.append({
            "shard": int(shard),
            "spans": int(shard_mask.sum()),
            "seconds": float(durations[shard_mask].sum()),
            "items": int(items[shard_mask].sum()),
        })
    mean_seconds = float(np.mean([row["seconds"] for row in rows]))
    for row in rows:
        row["skew"] = row["seconds"] / mean_seconds if mean_seconds else 0.0
    return rows


def metrics_table(store: Union[str, Path, "ResultStore"], *,
                  run_id: Optional[str] = None,
                  metric_class: Optional[str] = None) -> list[dict]:
    """Every persisted metric row, name-sorted; filterable by class."""
    store = _open(store)
    metrics = _gather(store, "telemetry_metrics", run_id)
    if metrics is None:
        return []
    rows = []
    for index in np.argsort(metrics["metric"], kind="stable"):
        row_class = str(metrics["metric_class"][index])
        if metric_class is not None and row_class != metric_class:
            continue
        rows.append({
            "run_id": str(metrics["run_id"][index]),
            "metric": str(metrics["metric"][index]),
            "metric_class": row_class,
            "value_i": int(metrics["value_i"][index]),
            "total": float(metrics["total"][index]),
            "min": float(metrics["min"][index]),
            "max": float(metrics["max"][index]),
        })
    return rows
