"""The one monotonic-clock timing primitive of the repo.

Runtime telemetry (:class:`~repro.obs.tracing.Span` durations) and the
benchmark harness's hand timing historically used the same two-line
``time.perf_counter()`` idiom in ~60 places; :class:`Stopwatch` is that
idiom extracted once, so every measured duration in the system — span
records, ``BENCH_*.json`` baselines, best-of-N micro timings — comes off
the same monotonic clock with the same start/stop semantics.

Wall-clock durations are explicitly **outside** the repo's bit-identity
contract (see :mod:`repro.obs.metrics`): nothing downstream may feed a
measured time back into simulation results.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable

__all__ = ["Stopwatch"]


class Stopwatch:
    """Start/stop wall-clock timing on the monotonic ``perf_counter`` clock.

    Usable imperatively (``watch.start() ... watch.stop()``), as a context
    manager, or through the one-shot class helpers::

        with Stopwatch() as watch:
            work()
        print(watch.elapsed_s)

        result, seconds = Stopwatch.time_call(work)
        result, best = Stopwatch.best_of(3, work)   # benchmark idiom

    ``elapsed_s`` holds the duration of the most recent completed
    measurement; a stopwatch may be restarted any number of times.
    """

    __slots__ = ("elapsed_s", "_started")

    def __init__(self) -> None:
        #: Seconds of the most recent completed start/stop measurement.
        self.elapsed_s = 0.0
        self._started: float | None = None

    @property
    def running(self) -> bool:
        """Whether a measurement is currently open."""
        return self._started is not None

    def start(self) -> "Stopwatch":
        """Begin a measurement (restarting discards any open one)."""
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """End the measurement; sets and returns ``elapsed_s``."""
        if self._started is None:
            raise RuntimeError("stopwatch was stopped without being started")
        self.elapsed_s = time.perf_counter() - self._started
        self._started = None
        return self.elapsed_s

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @staticmethod
    def time_call(fn: Callable[..., Any], *args, **kwargs) -> tuple[Any, float]:
        """Call ``fn`` once; return ``(result, seconds)``."""
        watch = Stopwatch().start()
        result = fn(*args, **kwargs)
        return result, watch.stop()

    @staticmethod
    def best_of(repeats: int, fn: Callable[..., Any], *args,
                **kwargs) -> tuple[Any, float]:
        """Call ``fn`` ``repeats`` times; return the last result and the
        fastest wall time.

        The benchmark suite's best-of-N idiom: the minimum over repeats is
        the least-noisy estimator of the code's intrinsic cost on a shared
        machine (every source of interference only ever adds time).
        """
        if repeats <= 0:
            raise ValueError("repeats must be positive")
        best = math.inf
        result: Any = None
        for _ in range(repeats):
            result, seconds = Stopwatch.time_call(fn, *args, **kwargs)
            if seconds < best:
                best = seconds
        return result, best
