"""``repro.obs`` — observability: metrics, spans, and a store-backed sink.

Disabled by default, and disabled means *off*: every instrumentation
point in the codebase goes through the module-level helpers below, whose
entire cost with no collector installed is one global read — ``span``
returns a shared no-op singleton, ``count``/``observe`` return
immediately.  ``benchmarks/test_bench_obs.py`` gates that cost at <=2%
on the fleet event loop (and <=10% with telemetry enabled).

Typical use::

    from repro import obs

    obs.enable()
    result = run_campaign(spec, root, shards=8)
    obs.write_telemetry(root / "telemetry.store", run_id="campaign")
    snapshot = obs.disable()

Metric naming convention: dotted ``<subsystem>.<what>`` —
``fleet.events_simulated``, ``store.rows_committed``, ``sweep.jobs_pruned``.
Span names are ``<subsystem>.<stage>`` — ``campaign.simulate``,
``cloud.pass``, ``store.flush``.  Deterministic counters
(:func:`count`) are bit-identical for any worker count / chunk size /
pool kind; wall-clock observations (:func:`observe`) and span durations
are not — see :mod:`repro.obs.metrics` for the contract.

The store-facing pieces (:func:`write_telemetry` and the report tables)
load lazily so importing ``repro.obs`` from the hot paths never drags in
the store stack.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.collector import Collector
from repro.obs.metrics import (DETERMINISTIC, TelemetrySnapshot, WALLCLOCK)
from repro.obs.timing import Stopwatch
from repro.obs.tracing import NO_SPAN, Span, SpanRecord

__all__ = [
    "Collector", "DETERMINISTIC", "DriftPolicy", "DriftReport", "NO_SPAN",
    "Span", "SpanRecord", "Stopwatch", "TelemetrySnapshot", "WALLCLOCK",
    "available_runs", "bench_drift", "build_snapshot", "classify_store_diff",
    "count", "diff_snapshots", "disable", "enable", "enabled",
    "get_collector", "ingest_bench_files", "load_snapshot", "metrics_table",
    "observe", "run_timeline", "shard_skew", "span", "stage_breakdown",
    "write_snapshot", "write_telemetry",
]

#: The process-global collector; ``None`` = telemetry off (the default).
_collector: Optional[Collector] = None


def enable() -> Collector:
    """Turn telemetry on; returns the (new or existing) collector."""
    global _collector
    if _collector is None:
        _collector = Collector()
    return _collector


def disable() -> Optional[TelemetrySnapshot]:
    """Turn telemetry off; returns the final snapshot (``None`` if off)."""
    global _collector
    collector = _collector
    _collector = None
    return collector.snapshot() if collector is not None else None


def enabled() -> bool:
    """Whether a collector is installed."""
    return _collector is not None


def get_collector() -> Optional[Collector]:
    """The installed collector, or ``None`` when telemetry is off.

    Hot loops fetch this once and branch on it, so their disabled-mode
    cost is a single check instead of one per item.
    """
    return _collector


def _install(collector: Optional[Collector]) -> Optional[Collector]:
    """Swap the global collector; returns the previous one.

    Internal plumbing for pool workers (fresh collector per chunk) and
    the sink (suppressing self-instrumentation while it writes).
    """
    global _collector
    previous = _collector
    _collector = collector
    return previous


def span(name: str, *, shard: int = -1, items: int = 0, detail: str = "",
         force: bool = False):
    """A span context manager, no-op unless telemetry is enabled.

    ``force=True`` returns a measuring span even when disabled: it is
    never recorded anywhere, but its ``duration_s`` is set on exit —
    for call sites whose *results* carry a duration (campaign stage
    seconds) and must keep working with telemetry off.
    """
    collector = _collector
    if collector is not None:
        return collector.span(name, shard=shard, items=items, detail=detail)
    if force:
        return Span(name, shard=shard, items=items, detail=detail)
    return NO_SPAN


def count(name: str, n: int = 1) -> None:
    """Add to a deterministic counter (no-op when disabled)."""
    collector = _collector
    if collector is not None:
        collector.count(name, n)


def observe(name: str, value: float) -> None:
    """Record a wall-clock observation (no-op when disabled)."""
    collector = _collector
    if collector is not None:
        collector.observe(name, value)


_LAZY = {
    "write_telemetry": ("repro.obs.sink", "write_telemetry"),
    "run_timeline": ("repro.obs.report", "run_timeline"),
    "stage_breakdown": ("repro.obs.report", "stage_breakdown"),
    "shard_skew": ("repro.obs.report", "shard_skew"),
    "metrics_table": ("repro.obs.report", "metrics_table"),
    "available_runs": ("repro.obs.report", "available_runs"),
    "build_snapshot": ("repro.obs.snapshot", "build_snapshot"),
    "write_snapshot": ("repro.obs.snapshot", "write_snapshot"),
    "load_snapshot": ("repro.obs.snapshot", "load_snapshot"),
    "DriftPolicy": ("repro.obs.drift", "DriftPolicy"),
    "DriftReport": ("repro.obs.drift", "DriftReport"),
    "classify_store_diff": ("repro.obs.drift", "classify_store_diff"),
    "diff_snapshots": ("repro.obs.drift", "diff_snapshots"),
    "ingest_bench_files": ("repro.obs.drift", "ingest_bench_files"),
    "bench_drift": ("repro.obs.drift", "bench_drift"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
