"""Committed drift baselines: compact snapshots of what a run produced.

A *snapshot* is the JSON form of everything the drift gates compare a run
against: the figure report tables a campaign store serves (Fig. 8/9/10/15
extracts via :class:`~repro.store.serving.ReportServer`) plus the
deterministic counters and wall-clock stats of a telemetry sidecar.  It
is deliberately compact — per-device summary rows and counter totals,
not raw events — so a baseline can live in git under
``benchmarks/baselines/`` and a CI run can diff itself against it in
milliseconds (the SNIPPETS "committed baselines + drift detection"
idiom).

Fidelity contract: every float passes through JSON ``repr`` (shortest
round-trip), so a snapshot of an unchanged deterministic run compares
**bit-exactly** equal to its baseline.  Wall-clock stats are stored too,
but the drift policy (:mod:`repro.obs.drift`) only ever compares them
through tolerance bands — machines differ; determinism does not.

Tables use a columnar micro-format — ``{"columns": [...], "rows":
[[...]]}`` — mirroring the store's column orientation and keeping the
committed JSON diff-friendly (one row per line under ``indent=2``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Union

__all__ = ["SNAPSHOT_KIND", "SNAPSHOT_SCHEMA_VERSION", "build_snapshot",
           "load_snapshot", "write_snapshot"]

#: Bumped only when the snapshot layout changes incompatibly; the drift
#: layer refuses to compare snapshots across versions.
SNAPSHOT_SCHEMA_VERSION = 1

#: The ``kind`` marker distinguishing snapshot JSON from BENCH payloads.
SNAPSHOT_KIND = "repro-drift-snapshot"


def _table(columns: list[str], rows: list[list]) -> dict:
    return {"columns": columns, "rows": rows}


def _report_tables(store) -> dict[str, dict]:
    """Fig. 8/9/10/15 extracts of one campaign store, via ReportServer."""
    from repro.store.serving import ReportServer

    server = ReportServer(store)
    tables: dict[str, dict] = {}

    # Fig. 9 — latency ECDF per device, compacted to tail quantiles.
    ecdf_rows = []
    for device, ecdf in server.latency_ecdf_by_device().items():
        ecdf_rows.append([device, int(len(ecdf.values)),
                          ecdf.quantile(0.5), ecdf.quantile(0.9),
                          ecdf.quantile(0.99)])
    tables["latency_ecdf"] = _table(
        ["device", "samples", "latency_p50_ms", "latency_p90_ms",
         "latency_p99_ms"], ecdf_rows)

    # Fig. 10 — per-device energy/power/efficiency summaries, verbatim.
    energy_rows = []
    for device, entry in server.energy_distributions().items():
        energy_rows.append([device,
                            entry["energy_median_mj"],
                            entry["energy_mean_mj"],
                            entry["power_median_w"],
                            entry["power_mean_w"],
                            entry["efficiency_median_mflops_per_sw"]])
    tables["energy"] = _table(
        ["device", "energy_median_mj", "energy_mean_mj", "power_median_w",
         "power_mean_w", "efficiency_median_mflops_per_sw"], energy_rows)

    # Fig. 8 — latency-vs-FLOPs point clouds, compacted to exact sums.
    fig8_rows = []
    for device, _ in server.latency_ecdf_by_device().items():
        points = server.latency_vs_flops(device)
        latency_sum = 0.0
        flops_sum = 0.0
        for latency, flops in points:
            latency_sum += latency
            flops_sum += flops
        fig8_rows.append([device, len(points), latency_sum, flops_sum])
    tables["latency_vs_flops"] = _table(
        ["device", "points", "latency_ms_sum", "flops_sum"], fig8_rows)

    # Fig. 15 — apps per cloud ML API.
    cloud_rows = [[api, entry["provider"], entry["apps"]]
                  for api, entry in server.cloud_api_usage().items()]
    tables["cloud_apis"] = _table(["api", "provider", "apps"], cloud_rows)
    return tables


def _telemetry_sections(telemetry, run_id: Optional[str]):
    """(deterministic counters, wall-clock stats) of a telemetry store."""
    from repro.obs.metrics import DETERMINISTIC
    from repro.obs.report import metrics_table

    counters: dict[str, int] = {}
    wallclock: dict[str, dict] = {}
    for row in metrics_table(telemetry, run_id=run_id):
        if row["metric_class"] == DETERMINISTIC:
            counters[row["metric"]] = row["value_i"]
        else:
            wallclock[row["metric"]] = {"count": row["value_i"],
                                        "total": row["total"],
                                        "min": row["min"],
                                        "max": row["max"]}
    return counters, wallclock


def build_snapshot(*, store=None, telemetry=None,
                   run_id: Optional[str] = None,
                   meta: Optional[Mapping] = None) -> dict:
    """Build a drift snapshot from a campaign store and/or telemetry store.

    Either source may be a path or an open
    :class:`~repro.store.store.ResultStore`; either may be omitted (the
    corresponding sections come back empty).  ``run_id`` filters the
    telemetry side only.  ``meta`` is carried verbatim — stamp scale,
    commit, or whatever identifies the baseline's provenance.
    """
    from repro.obs.report import _open

    tables: dict[str, dict] = {}
    counters: dict[str, int] = {}
    wallclock: dict[str, dict] = {}
    if store is not None:
        tables = _report_tables(_open(store))
    if telemetry is not None:
        counters, wallclock = _telemetry_sections(_open(telemetry), run_id)
    return {
        "kind": SNAPSHOT_KIND,
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "tables": tables,
        "counters": dict(sorted(counters.items())),
        "wallclock": dict(sorted(wallclock.items())),
    }


def write_snapshot(path: Union[str, Path], snapshot: Mapping) -> Path:
    """Write a snapshot as stable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    return path


def load_snapshot(path: Union[str, Path]) -> dict:
    """Load a snapshot, validating the kind marker."""
    snapshot = json.loads(Path(path).read_text())
    if not isinstance(snapshot, dict) or \
            snapshot.get("kind") != SNAPSHOT_KIND:
        raise ValueError(f"{path}: not a {SNAPSHOT_KIND} file")
    return snapshot
