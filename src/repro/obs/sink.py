"""Persist telemetry snapshots into a sidecar :class:`ResultStore`.

Telemetry rides the store's own columnar ingestion path
(:meth:`~repro.store.writer.StoreWriter.append_batch` over the
``telemetry_metrics`` / ``telemetry_spans`` row kinds) — but always into
a **sidecar** store, never mixed into a result store: result
bit-identity checks must stay blind to whether telemetry was on.

The sink suppresses instrumentation while it writes (the snapshot is
taken first, then the collector is uninstalled for the duration): a sink
that counted its own ``store.rows_committed`` would contaminate the
deterministic counters it is persisting.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro import obs
from repro.obs.metrics import DETERMINISTIC, TelemetrySnapshot, WALLCLOCK

__all__ = ["write_telemetry"]


def _metrics_batch(snapshot: TelemetrySnapshot, run_id: str) -> dict:
    """One row per metric: counters then value stats, each name-sorted."""
    names: list[str] = []
    classes: list[str] = []
    value_i: list[int] = []
    totals: list[float] = []
    mins: list[float] = []
    maxs: list[float] = []
    for name in sorted(snapshot.counters):
        value = snapshot.counters[name]
        names.append(name)
        classes.append(DETERMINISTIC)
        value_i.append(value)
        totals.append(float(value))
        mins.append(float(value))
        maxs.append(float(value))
    for name in sorted(snapshot.values):
        count, total, low, high = snapshot.values[name]
        names.append(name)
        classes.append(WALLCLOCK)
        value_i.append(int(count))
        totals.append(float(total))
        mins.append(float(low))
        maxs.append(float(high))
    return {
        "run_id": np.array([run_id] * len(names), dtype=np.str_),
        "metric": np.array(names, dtype=np.str_),
        "metric_class": np.array(classes, dtype=np.str_),
        "value_i": np.array(value_i, dtype=np.int64),
        "total": np.array(totals, dtype=np.float64),
        "min": np.array(mins, dtype=np.float64),
        "max": np.array(maxs, dtype=np.float64),
    }


def _spans_batch(snapshot: TelemetrySnapshot, run_id: str) -> dict:
    records = snapshot.spans
    return {
        "run_id": np.array([run_id] * len(records), dtype=np.str_),
        "span_id": np.array([r.span_id for r in records], dtype=np.int64),
        "parent_id": np.array([r.parent_id for r in records],
                              dtype=np.int64),
        "name": np.array([r.name for r in records], dtype=np.str_),
        "start_s": np.array([r.start_s for r in records], dtype=np.float64),
        "duration_s": np.array([r.duration_s for r in records],
                               dtype=np.float64),
        "shard": np.array([r.shard for r in records], dtype=np.int64),
        "items": np.array([r.items for r in records], dtype=np.int64),
        "detail": np.array([r.detail for r in records], dtype=np.str_),
    }


def write_telemetry(target: Union[str, Path, "ResultStore"],
                    snapshot: Optional[TelemetrySnapshot] = None, *,
                    run_id: str = "run",
                    rows_per_segment: int = 4096) -> int:
    """Write a snapshot into the sidecar store at ``target``; returns rows.

    Without an explicit ``snapshot``, the currently enabled collector is
    snapshotted (an error if telemetry is off — there would be nothing
    to write).  ``run_id`` tags every row, so successive runs append into
    one sidecar and reports can filter per run.
    """
    from repro.store.store import ResultStore

    if snapshot is None:
        collector = obs.get_collector()
        if collector is None:
            raise RuntimeError(
                "telemetry is not enabled and no snapshot was given")
        snapshot = collector.snapshot()
    store = target if isinstance(target, ResultStore) else ResultStore(target)
    previous = obs._install(None)  # never self-instrument the sink's writes
    try:
        with store.writer(rows_per_segment=rows_per_segment) as writer:
            metrics = _metrics_batch(snapshot, run_id)
            if metrics["metric"].size:
                writer.append_batch("telemetry_metrics", metrics)
            if snapshot.spans:
                writer.append_batch("telemetry_spans",
                                    _spans_batch(snapshot, run_id))
    finally:
        obs._install(previous)
    return writer.rows_committed
