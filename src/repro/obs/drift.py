"""Drift policy: classify diffs into severities and a CI exit code.

The diff engine (:mod:`repro.store.diff`) and the snapshot format
(:mod:`repro.obs.snapshot`) report *exact* deltas; this module decides
which of them matter.  The policy follows the repo's metric-class split:

* **exact class** — deterministic counters, report tables, result-store
  metrics.  Bit-identity is the product, so *any* inequality (and any
  added/removed entity) is :data:`EXACT` drift — the severity CI fails
  hard on;
* **wall-clock class** — durations, rates, speedups.  Machines differ,
  so these compare through a relative tolerance band: inside the band is
  :data:`TOLERATED` (visible, never fatal), outside is :data:`BREACH`.

Severities are ordered ints; a report's :attr:`DriftReport.max_severity`
doubles as the CI process exit code (``repro obs drift``), so a pipeline
can distinguish clean (0) / tolerated (1) / band breach (2) / exact
drift (3) without parsing anything.

The module also owns the perf-trajectory feed: :func:`flatten_bench`
turns a ``BENCH_*.json`` payload into dotted numeric leaves,
:func:`ingest_bench_files` loads them into the ``bench_runs`` row kind
(idempotently — the (benchmark, run_id) stamp keys re-ingestion into a
no-op), and :func:`bench_drift` compares each benchmark's two most
recent runs under the same policy, flagging speedup-gate erosion.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

__all__ = ["CLEAN", "TOLERATED", "BREACH", "EXACT", "SEVERITY_NAMES",
           "DriftPolicy", "DriftReport", "classify_store_diff",
           "diff_snapshots", "flatten_bench", "ingest_bench_files",
           "bench_drift"]

#: Severity ladder; values double as CI exit codes.
CLEAN = 0
TOLERATED = 1
BREACH = 2
EXACT = 3

SEVERITY_NAMES = {CLEAN: "clean", TOLERATED: "tolerated", BREACH: "breach",
                  EXACT: "exact"}

#: Findings kept verbatim in a report; the counts are always complete.
MAX_FINDINGS = 200


@dataclass(frozen=True)
class DriftPolicy:
    """Per-metric-class comparison rules."""

    #: Relative tolerance band for wall-clock metrics.
    rel_tol: float = 0.25
    #: Denominator floor for the relative delta (guards zero baselines).
    abs_floor: float = 1e-9
    #: Substrings marking a metric name as wall-clock class.
    wallclock_patterns: tuple[str, ...] = (
        "seconds", "_s", "speedup", "overhead", "per_second", "per_s",
        "ratio", "duration", "rate", "skew", "slowdown")
    #: Substrings marking a metric as not comparable at all (e.g. flags
    #: that legitimately differ between CI and local runs).
    skip_patterns: tuple[str, ...] = ("gates_enforced",)

    def metric_class_of(self, metric: str) -> str:
        """``"wallclock"`` or ``"deterministic"`` by name pattern."""
        lowered = metric.lower()
        for pattern in self.wallclock_patterns:
            if pattern.startswith("_"):
                if lowered.endswith(pattern) or pattern + "." in lowered:
                    return "wallclock"
            elif pattern in lowered:
                return "wallclock"
        return "deterministic"

    def skips(self, metric: str) -> bool:
        """Whether the metric is excluded from comparison entirely."""
        lowered = metric.lower()
        return any(pattern in lowered for pattern in self.skip_patterns)

    def classify_value(self, baseline: float, current: float,
                       exact: bool) -> int:
        """Severity of one (baseline, current) pair under one class."""
        if baseline == current:
            return CLEAN
        if exact:
            return EXACT
        relative = abs(current - baseline) / max(abs(baseline),
                                                 self.abs_floor)
        return TOLERATED if relative <= self.rel_tol else BREACH


@dataclass
class DriftReport:
    """Classified findings plus complete severity counts."""

    findings: list[dict] = field(default_factory=list)
    severity_counts: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in SEVERITY_NAMES.values()})
    max_severity: int = CLEAN
    #: Findings beyond MAX_FINDINGS are counted but not kept.
    truncated: int = 0
    notes: list[str] = field(default_factory=list)

    def add(self, severity: int, source: str, metric: str, *,
            key: Optional[str] = None, baseline=None, current=None) -> None:
        """Record one finding (CLEAN findings count but are not kept)."""
        self.severity_counts[SEVERITY_NAMES[severity]] += 1
        self.max_severity = max(self.max_severity, severity)
        if severity == CLEAN:
            return
        if len(self.findings) >= MAX_FINDINGS:
            self.truncated += 1
            return
        finding = {"severity": SEVERITY_NAMES[severity], "source": source,
                   "metric": metric}
        if key is not None:
            finding["key"] = key
        if baseline is not None or current is not None:
            finding["baseline"] = baseline
            finding["current"] = current
        self.findings.append(finding)

    def note(self, message: str) -> None:
        """Attach a non-finding annotation (skipped sources, etc.)."""
        self.notes.append(message)

    def merge(self, other: "DriftReport") -> None:
        """Fold another report's findings and counts into this one."""
        for name, count in other.severity_counts.items():
            self.severity_counts[name] += count
        self.max_severity = max(self.max_severity, other.max_severity)
        for finding in other.findings:
            if len(self.findings) >= MAX_FINDINGS:
                self.truncated += 1
            else:
                self.findings.append(finding)
        self.truncated += other.truncated
        self.notes.extend(other.notes)

    @property
    def clean(self) -> bool:
        """No drift at any severity."""
        return self.max_severity == CLEAN

    def to_json(self) -> dict:
        """JSON-ready payload (the CI artifact)."""
        return {
            "max_severity": self.max_severity,
            "verdict": SEVERITY_NAMES[self.max_severity],
            "severity_counts": dict(self.severity_counts),
            "findings": list(self.findings),
            "truncated": self.truncated,
            "notes": list(self.notes),
        }


def _key_label(keys: Sequence[str], row: Mapping) -> str:
    return "/".join(str(row[name]) for name in keys)


# --------------------------------------------------------------------------- #
# Store diffs -> severities
# --------------------------------------------------------------------------- #
def _kind_metric_class(kind: str, metric: str, group_key: Mapping,
                       policy: DriftPolicy) -> str:
    """Metric class of one (kind, metric) delta.

    Result kinds are deterministic outputs — exact.  Telemetry metric
    rows carry their class in the group key; span timings are wall-clock
    by construction; bench metrics classify by name pattern.
    """
    if kind == "telemetry_metrics":
        return str(group_key.get("metric_class", "deterministic"))
    if kind == "telemetry_spans":
        # Span counts vary with chunking/fan-out shape, not just code —
        # the whole kind is wall-clock class.
        return "wallclock"
    if kind == "bench_runs":
        return policy.metric_class_of(str(group_key.get("metric", metric)))
    return "deterministic"


def classify_store_diff(diff, policy: Optional[DriftPolicy] = None
                        ) -> DriftReport:
    """Classify a :class:`~repro.store.diff.StoreDiff` into severities."""
    policy = policy or DriftPolicy()
    report = DriftReport()
    for kind_name, kind_diff in diff.kinds.items():
        for row in kind_diff.changed_rows():
            key = _key_label(kind_diff.keys, row)
            for metric in kind_diff.metrics:
                cell = row[metric]
                if cell["a"] == cell["b"]:
                    continue
                metric_label = str(row.get("metric", metric)) \
                    if kind_name in ("telemetry_metrics", "bench_runs") \
                    else metric
                if policy.skips(metric_label):
                    continue
                exact = _kind_metric_class(
                    kind_name, metric, row, policy) == "deterministic"
                severity = policy.classify_value(cell["a"], cell["b"],
                                                 exact)
                report.add(severity, f"store:{kind_name}", metric,
                           key=key, baseline=cell["a"], current=cell["b"])
        exact_kind = kind_name not in ("telemetry_spans", "bench_runs")
        for metric, rows in (("entity_added", kind_diff.added_rows()),
                             ("entity_removed", kind_diff.removed_rows())):
            for row in rows:
                severity = EXACT if exact_kind else TOLERATED
                if kind_name == "telemetry_metrics" and \
                        row.get("metric_class") != "deterministic":
                    severity = TOLERATED  # a wall-clock timer came or went
                report.add(severity, f"store:{kind_name}", metric,
                           key=_key_label(kind_diff.keys, row))
    for kind_name in diff.skipped:
        report.note(f"kind {kind_name!r} has no diff spec; skipped")
    return report


# --------------------------------------------------------------------------- #
# Snapshot diffs -> severities
# --------------------------------------------------------------------------- #
def _diff_table(name: str, baseline: Mapping, current: Mapping,
                report: DriftReport) -> None:
    """Exact-compare one columnar table, aligned on the first column."""
    source = f"table:{name}"
    if list(baseline["columns"]) != list(current["columns"]):
        report.add(EXACT, source, "columns",
                   baseline=baseline["columns"], current=current["columns"])
        return
    columns = list(baseline["columns"])
    rows_a = {str(row[0]): row for row in baseline["rows"]}
    rows_b = {str(row[0]): row for row in current["rows"]}
    for key in rows_a.keys() | rows_b.keys():
        if key not in rows_b:
            report.add(EXACT, source, "row_removed", key=key)
        elif key not in rows_a:
            report.add(EXACT, source, "row_added", key=key)
        else:
            for column, a, b in zip(columns, rows_a[key], rows_b[key]):
                if a != b:
                    report.add(EXACT, source, column, key=key,
                               baseline=a, current=b)


def diff_snapshots(baseline: Mapping, current: Mapping,
                   policy: Optional[DriftPolicy] = None) -> DriftReport:
    """Classify the drift between two snapshot dicts.

    Tables and deterministic counters compare exact; wall-clock stats
    compare per the policy's tolerance band (``count`` is an observation
    count, still wall-clock — how often a timer fired can vary with
    chunking of a *different* machine's run).  Snapshots of different
    schema versions refuse to compare.
    """
    policy = policy or DriftPolicy()
    if baseline.get("schema_version") != current.get("schema_version"):
        raise ValueError(
            f"snapshot schema_version mismatch: baseline "
            f"{baseline.get('schema_version')!r} vs current "
            f"{current.get('schema_version')!r}; refresh the baseline")
    report = DriftReport()

    meta_a, meta_b = baseline.get("meta", {}), current.get("meta", {})
    for field_name in ("scale",):
        if field_name in meta_a and field_name in meta_b and \
                meta_a[field_name] != meta_b[field_name]:
            report.add(EXACT, "meta", field_name,
                       baseline=meta_a[field_name],
                       current=meta_b[field_name])

    tables_a = baseline.get("tables", {})
    tables_b = current.get("tables", {})
    for name in tables_a.keys() | tables_b.keys():
        if name not in tables_b:
            report.add(EXACT, f"table:{name}", "table_removed")
        elif name not in tables_a:
            report.add(EXACT, f"table:{name}", "table_added")
        else:
            _diff_table(name, tables_a[name], tables_b[name], report)

    counters_a = baseline.get("counters", {})
    counters_b = current.get("counters", {})
    for metric in counters_a.keys() | counters_b.keys():
        if policy.skips(metric):
            continue
        if metric not in counters_b:
            report.add(EXACT, "counter", metric,
                       baseline=counters_a[metric], current=None)
        elif metric not in counters_a:
            report.add(EXACT, "counter", metric,
                       baseline=None, current=counters_b[metric])
        else:
            report.add(policy.classify_value(counters_a[metric],
                                             counters_b[metric], True),
                       "counter", metric, baseline=counters_a[metric],
                       current=counters_b[metric])

    wall_a = baseline.get("wallclock", {})
    wall_b = current.get("wallclock", {})
    for metric in wall_a.keys() | wall_b.keys():
        if policy.skips(metric):
            continue
        if metric not in wall_b or metric not in wall_a:
            report.add(TOLERATED, "wallclock", metric,
                       baseline=wall_a.get(metric), current=wall_b.get(metric))
            continue
        for stat in ("count", "total", "min", "max"):
            severity = policy.classify_value(wall_a[metric][stat],
                                             wall_b[metric][stat], False)
            report.add(severity, "wallclock", f"{metric}.{stat}",
                       baseline=wall_a[metric][stat],
                       current=wall_b[metric][stat])

    if not counters_a and not wall_a and \
            not any(table.get("rows") for table in tables_a.values()):
        report.note("baseline snapshot is empty (no counters, wall-clock "
                    "stats, or table rows); a clean verdict here gates "
                    "nothing — refresh the baseline from a populated run")
    return report


# --------------------------------------------------------------------------- #
# BENCH_*.json trajectory -> bench_runs rows -> severities
# --------------------------------------------------------------------------- #
def flatten_bench(payload: Mapping, prefix: str = "") -> dict[str, float]:
    """Dotted numeric leaves of a BENCH payload.

    Numbers keep their value, booleans become 0.0/1.0 (so a flipped
    ``outputs_bit_identical`` *is* drift), strings/lists/None are not
    metrics and are skipped, and the identity stamps (``benchmark``,
    ``run_id``, ``schema_version``) are keys, not metrics.
    """
    leaves: dict[str, float] = {}
    for name, value in payload.items():
        if not prefix and name in ("benchmark", "run_id", "schema_version"):
            continue
        dotted = f"{prefix}{name}"
        if isinstance(value, Mapping):
            leaves.update(flatten_bench(value, prefix=f"{dotted}."))
        elif isinstance(value, bool):
            leaves[dotted] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            leaves[dotted] = float(value)
    return leaves


def _ingested_runs(store) -> set[tuple[str, str]]:
    """(benchmark, run_id) pairs already committed to a bench store."""
    if "bench_runs" not in store.kinds():
        return set()
    arrays = store.query("bench_runs").arrays("benchmark", "run_id")
    return {(str(b), str(r))
            for b, r in zip(arrays["benchmark"], arrays["run_id"])}


def ingest_bench_files(store, paths: Iterable[Union[str, Path]]) -> dict:
    """Load BENCH_*.json payloads into the ``bench_runs`` row kind.

    Idempotent: a payload whose ``(benchmark, run_id)`` stamp is already
    committed is skipped, so re-running ingestion over the same files is
    a no-op.  Unstamped payloads ingest under ``run_id="unstamped"`` —
    they still key idempotently, they just cannot distinguish runs.
    Returns ``{"ingested": n_files, "skipped": n_files, "rows": n}``.
    """
    import numpy as np

    existing = _ingested_runs(store)
    ingested = skipped = total_rows = 0
    batches = []
    for path in paths:
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, Mapping) or "benchmark" not in payload:
            skipped += 1
            continue
        benchmark = str(payload["benchmark"])
        run_id = str(payload.get("run_id", "unstamped"))
        if (benchmark, run_id) in existing:
            skipped += 1
            continue
        existing.add((benchmark, run_id))
        leaves = flatten_bench(payload)
        if not leaves:
            skipped += 1
            continue
        metrics = sorted(leaves)
        n = len(metrics)
        batches.append({
            "benchmark": np.array([benchmark] * n, dtype=np.str_),
            "run_id": np.array([run_id] * n, dtype=np.str_),
            "schema_version": np.full(
                n, int(payload.get("schema_version", 0)), dtype=np.int64),
            "scale": np.full(n, float(payload.get("scale", 0.0))),
            "metric": np.array(metrics, dtype=np.str_),
            "value": np.array([leaves[m] for m in metrics]),
        })
        ingested += 1
        total_rows += n
    if batches:
        with store.writer() as writer:
            for batch in batches:
                writer.append_batch("bench_runs", batch)
        store.refresh()
    return {"ingested": ingested, "skipped": skipped, "rows": total_rows}


def bench_drift(store, policy: Optional[DriftPolicy] = None) -> DriftReport:
    """Compare each benchmark's two most recent ingested runs.

    "Most recent" is ingestion order (the store is append-only, so row
    order is commit order).  Benchmarks with a single run are noted, not
    compared.  A metric present in only one run is TOLERATED — payload
    shape evolves with the code — while value drift classifies by the
    policy's name patterns (``scale`` is deterministic-class, so
    comparing runs measured at different scales fires exact drift
    honestly instead of flagging every wall-clock number).
    """
    policy = policy or DriftPolicy()
    report = DriftReport()
    if "bench_runs" not in store.kinds():
        report.note("no bench_runs rows ingested; nothing to compare")
        return report
    arrays = store.query("bench_runs").arrays("benchmark", "run_id",
                                              "metric", "value", "scale")
    runs: dict[str, dict[str, dict[str, float]]] = {}
    for i in range(arrays["benchmark"].size):
        benchmark = str(arrays["benchmark"][i])
        run_id = str(arrays["run_id"][i])
        run = runs.setdefault(benchmark, {}).setdefault(run_id, {})
        run[str(arrays["metric"][i])] = float(arrays["value"][i])
        run["scale"] = float(arrays["scale"][i])
    for benchmark in sorted(runs):
        ordered = list(runs[benchmark])
        if len(ordered) < 2:
            report.note(f"benchmark {benchmark!r}: single run "
                        f"{ordered[0]!r}; nothing to compare")
            continue
        previous, latest = ordered[-2], ordered[-1]
        a, b = runs[benchmark][previous], runs[benchmark][latest]
        source = f"bench:{benchmark}"
        for metric in sorted(a.keys() | b.keys()):
            if policy.skips(metric):
                continue
            if metric not in a or metric not in b:
                report.add(TOLERATED, source, metric,
                           key=f"{previous}->{latest}",
                           baseline=a.get(metric), current=b.get(metric))
                continue
            exact = metric == "scale" or \
                policy.metric_class_of(metric) == "deterministic"
            report.add(policy.classify_value(a[metric], b[metric], exact),
                       source, metric, key=f"{previous}->{latest}",
                       baseline=a[metric], current=b[metric])
    return report
