"""Metric classes and the picklable telemetry snapshot.

The registry splits every metric into one of two classes, and the split
is the core design decision of the subsystem:

- :data:`DETERMINISTIC` — integer counters (``Collector.count``) whose
  totals are exact sums of per-item contributions: events simulated,
  rows committed, segments sealed, bytes written, jobs pruned,
  fixed-point passes.  Integer addition is associative and commutative,
  so these totals are **bit-identical for any worker count, chunk size,
  or pool kind** — the repo's core determinism invariant extended to
  telemetry itself, and pinned by ``benchmarks/test_bench_obs.py``.
- :data:`WALLCLOCK` — observations (``Collector.observe``) of measured
  quantities: stage durations, rows/s, convergence deltas.  These are
  summarised as (count, total, min, max) and explicitly excluded from
  every bit-identity check.

A metric's class is chosen by which API records it, not by
configuration: anything order- or timing-dependent must go through
``observe``.  (Chunk counts, for example, vary with ``chunk_size`` and
are therefore wall-clock, even though they are integers.)

:class:`TelemetrySnapshot` is the frozen, picklable view of a
collector: what worker processes return through
``iter_mapped_chunks``, what the sink persists, and what tests assert
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.obs.tracing import SpanRecord

__all__ = ["DETERMINISTIC", "TelemetrySnapshot", "WALLCLOCK",
           "merge_counters", "merge_values"]

#: Metric class for exact integer counters (bit-identity contract applies).
DETERMINISTIC = "deterministic"
#: Metric class for measured observations (no bit-identity contract).
WALLCLOCK = "wallclock"


def merge_counters(into: Dict[str, int], counters: Dict[str, int]) -> None:
    """Add ``counters`` into ``into`` (exact integer addition)."""
    for name, value in counters.items():
        into[name] = into.get(name, 0) + value


def merge_values(into: Dict[str, list], values: Dict[str, list]) -> None:
    """Fold ``values``' (count, total, min, max) stats into ``into``."""
    for name, stat in values.items():
        mine = into.get(name)
        if mine is None:
            into[name] = list(stat)
        else:
            mine[0] += stat[0]
            mine[1] += stat[1]
            mine[2] = min(mine[2], stat[2])
            mine[3] = max(mine[3], stat[3])


@dataclass
class TelemetrySnapshot:
    """A frozen copy of a collector's state, safe to pickle and merge.

    ``values`` maps each wall-clock metric to its ``[count, total, min,
    max]`` summary.  Snapshots are additive: :meth:`merge` (or a
    collector's ``absorb``) combines two runs' telemetry exactly the way
    one longer run would have recorded it — counters add, value stats
    fold, spans concatenate.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    values: Dict[str, list] = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)

    def counter(self, name: str, default: int = 0) -> int:
        """One deterministic counter's total."""
        return self.counters.get(name, default)

    def spans_named(self, name: str) -> List[SpanRecord]:
        """All span records with the given name."""
        return [record for record in self.spans if record.name == name]

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Fold ``other`` into this snapshot in place; returns self.

        Span ids are **not** remapped here — use a collector's
        ``absorb`` when stitching worker spans into a live tree; plain
        ``merge`` is for combining already-stitched snapshots (e.g. the
        sink accumulating several runs).
        """
        merge_counters(self.counters, other.counters)
        merge_values(self.values, other.values)
        self.spans.extend(other.spans)
        return self
