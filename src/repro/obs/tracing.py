"""Spans: named, nestable wall-clock regions that stitch across processes.

A :class:`Span` is the tracer's unit of work: entered as a context
manager, it records who its parent is (the innermost open span on the
same thread), when it started on the shared epoch clock, and how long it
ran on the monotonic clock.  Records are flat
:class:`SpanRecord` rows — ``(span_id, parent_id, ...)`` — because flat
rows are what crosses process boundaries (picklable, columnar-friendly)
and what the telemetry store persists; the tree is reconstructed from
ids at report time.

Two clocks on purpose: ``start_s`` is ``time.time()`` so spans recorded
in different worker processes land on one comparable timeline, while
``duration_s`` comes from a :class:`~repro.obs.timing.Stopwatch`
(``perf_counter``) so interval lengths never jump with wall-clock
adjustments.

Disabled-mode cost is one attribute check: :func:`repro.obs.span`
returns the shared :data:`NO_SPAN` singleton when no collector is
installed, whose enter/exit do nothing at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.collector import Collector

__all__ = ["NO_SPAN", "Span", "SpanRecord"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, flattened for pickling and columnar persistence.

    ``span_id`` is unique within one collector; ``parent_id`` is ``0``
    for roots.  :meth:`Collector.absorb` remaps both when a worker's
    records are stitched into the coordinating process's tree.
    """

    span_id: int
    parent_id: int
    name: str
    #: Epoch seconds (``time.time()``) — comparable across processes.
    start_s: float
    #: Monotonic-clock duration (``perf_counter`` delta).
    duration_s: float
    #: Shard index for fan-out work, ``-1`` when not shard-scoped.
    shard: int = -1
    #: Work items covered by the span (users, jobs, tasks); ``0`` if n/a.
    items: int = 0
    detail: str = ""


class Span:
    """A timing region; use as ``with collector.span("stage.name"): ...``.

    With a collector attached, entering allocates a span id, parents
    under the thread's innermost open span, and exiting publishes a
    :class:`SpanRecord`.  Without one (a *forced* span from
    ``obs.span(..., force=True)``), it only measures: ``duration_s`` is
    still set on exit, which lets call sites that need a duration for
    their own results — e.g. ``CampaignResult.simulate_seconds`` —
    derive it from the same span that would be traced, instead of
    keeping a parallel ``perf_counter()`` pair.
    """

    __slots__ = ("name", "shard", "items", "detail", "span_id", "parent_id",
                 "start_s", "duration_s", "_collector", "_watch")

    def __init__(self, name: str, *, collector: Optional["Collector"] = None,
                 shard: int = -1, items: int = 0, detail: str = "") -> None:
        self.name = name
        self.shard = shard
        self.items = items
        self.detail = detail
        self.span_id = 0
        self.parent_id = 0
        self.start_s = 0.0
        self.duration_s = 0.0
        self._collector = collector
        self._watch = Stopwatch()

    def __enter__(self) -> "Span":
        if self._collector is not None:
            self.span_id, self.parent_id = self._collector._enter_span()
        self.start_s = time.time()
        self._watch.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = self._watch.stop()
        if self._collector is not None:
            self._collector._exit_span(self)

    def record(self) -> SpanRecord:
        """This span's flat record (valid after exit)."""
        return SpanRecord(span_id=self.span_id, parent_id=self.parent_id,
                          name=self.name, start_s=self.start_s,
                          duration_s=self.duration_s, shard=self.shard,
                          items=self.items, detail=self.detail)


class _NoopSpan:
    """The disabled-mode span: enter/exit are no-ops, nothing is recorded.

    A single shared instance (:data:`NO_SPAN`) is returned for every
    disabled ``obs.span(...)`` call, so the disabled hot path allocates
    nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NO_SPAN = _NoopSpan()
