"""The collector: one process's telemetry state, stitchable across pools.

A :class:`Collector` owns three things — deterministic counters,
wall-clock value stats, and finished span records — plus a *per-thread*
parent stack that gives spans their nesting.  All shared state is under
one lock; the parent stack is thread-local so concurrent pool threads
nest their spans independently.

Cross-boundary stitching mirrors how ``MergeStats`` flows out of shard
workers today:

- **process pools** — the worker installs a fresh collector, runs its
  chunk, and ships back a :class:`~repro.obs.metrics.TelemetrySnapshot`;
  the coordinator calls :meth:`absorb`, which adds counters, folds value
  stats, and grafts the worker's span tree under the coordinator span
  that submitted the chunk (remapping worker-local span ids into this
  collector's id space so they can't collide).
- **thread pools** — worker threads share the coordinator's collector
  directly; :meth:`push_parent` seeds each worker thread's empty parent
  stack with the submitting span's id so the chunk's spans parent
  correctly without any remapping.

Both paths live in :func:`repro.runtime.pool.iter_mapped_chunks`, the
repo's single fan-out point.
"""

from __future__ import annotations

import threading
from typing import List

from repro.obs.metrics import (TelemetrySnapshot, merge_counters,
                               merge_values)
from repro.obs.tracing import Span, SpanRecord

__all__ = ["Collector"]


class Collector:
    """Process-local telemetry registry; see module docstring."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._values: dict[str, list] = {}
        self._spans: List[SpanRecord] = []
        self._next_id = 1
        self._local = threading.local()

    # ------------------------------------------------------------------
    # metrics
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a **deterministic** integer counter.

        Only record values here whose total is an exact sum of per-item
        contributions — anything order-, timing-, or chunking-dependent
        belongs in :meth:`observe`.
        """
        n = int(n)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one **wall-clock** observation (duration, rate, delta)."""
        value = float(value)
        with self._lock:
            stat = self._values.get(name)
            if stat is None:
                self._values[name] = [1, value, value, value]
            else:
                stat[0] += 1
                stat[1] += value
                if value < stat[2]:
                    stat[2] = value
                if value > stat[3]:
                    stat[3] = value

    # ------------------------------------------------------------------
    # spans
    def span(self, name: str, *, shard: int = -1, items: int = 0,
             detail: str = "") -> Span:
        """A new span bound to this collector (enter it with ``with``)."""
        return Span(name, collector=self, shard=shard, items=items,
                    detail=detail)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> int:
        """The innermost open span on this thread (``0`` if none)."""
        stack = self._stack()
        return stack[-1] if stack else 0

    def push_parent(self, parent_id: int) -> int:
        """Seed this thread's parent stack (pool-thread stitching).

        Returns a token for :meth:`pop_parent`, which restores the stack
        to its pre-push depth even if spans inside leaked an unbalanced
        enter/exit.
        """
        stack = self._stack()
        stack.append(parent_id)
        return len(stack)

    def pop_parent(self, token: int) -> None:
        """Undo :meth:`push_parent`."""
        stack = self._stack()
        del stack[token - 1:]

    def _alloc_ids(self, n: int) -> int:
        """Reserve ``n`` consecutive span ids; returns the first."""
        with self._lock:
            first = self._next_id
            self._next_id += n
            return first

    def _enter_span(self) -> tuple[int, int]:
        span_id = self._alloc_ids(1)
        stack = self._stack()
        parent_id = stack[-1] if stack else 0
        stack.append(span_id)
        return span_id, parent_id

    def _exit_span(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        record = span.record()
        with self._lock:
            self._spans.append(record)

    # ------------------------------------------------------------------
    # snapshot / stitch
    def snapshot(self) -> TelemetrySnapshot:
        """A picklable copy of everything recorded so far."""
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                values={name: list(stat)
                        for name, stat in self._values.items()},
                spans=list(self._spans),
            )

    def absorb(self, snapshot: TelemetrySnapshot, *,
               parent_id: int = 0) -> None:
        """Stitch a worker's snapshot into this collector.

        Counters add exactly; value stats fold.  The worker's span ids
        (allocated in *its* collector's id space) are remapped into a
        freshly reserved block of this collector's ids, and its root
        spans — ``parent_id == 0`` over there — are re-parented under
        ``parent_id`` here, so the report-time tree shows worker spans
        beneath the coordinator span that dispatched them.
        """
        spans = snapshot.spans
        remapped: List[SpanRecord] = []
        if spans:
            base = self._alloc_ids(len(spans))
            mapping = {record.span_id: base + index
                       for index, record in enumerate(spans)}
            for record in spans:
                new_parent = mapping.get(record.parent_id)
                if new_parent is None:
                    new_parent = parent_id
                remapped.append(SpanRecord(
                    span_id=mapping[record.span_id], parent_id=new_parent,
                    name=record.name, start_s=record.start_s,
                    duration_s=record.duration_s, shard=record.shard,
                    items=record.items, detail=record.detail))
        with self._lock:
            merge_counters(self._counters, snapshot.counters)
            merge_values(self._values, snapshot.values)
            self._spans.extend(remapped)
