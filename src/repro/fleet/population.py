"""The virtual population: who owns which device and runs which app.

A :class:`FleetSpec` declares a population the way a
:class:`~repro.runtime.sweep.SweepSpec` declares a sweep: everything about
user ``i`` — device (weighted by market tier), model, scenario, backend,
starting battery level, request arrival times, measurement noise — is a
deterministic function of the spec and the user's own coordinates, through
one RNG seeded by :func:`derive_user_seed`.  That is the property the whole
subsystem rests on: any worker can materialise any user independently, so
fleet results are bit-identical for every worker count, chunking and pool
kind.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.scenarios import STANDARD_SCENARIOS, Scenario
from repro.devices.battery import RechargeSchedule
from repro.devices.device import Device, PHONES
from repro.dnn.graph import Graph
from repro.fleet.arrivals import DiurnalProfile, generate_arrivals
from repro.fleet.router import RoutingPolicy
from repro.runtime.backends import Backend, profile_for

__all__ = ["derive_user_seed", "derive_user_region", "VirtualUser", "UserPlan",
           "FleetSpec", "zoo_population", "congested_population",
           "preferred_backend"]

#: Device-tier market weights for assigning phones to users (low tiers are
#: the volume segment — the paper's motivation for measuring the A20).
TIER_WEIGHTS = {"low": 5.0, "mid": 3.0, "high": 2.0}


def preferred_backend(device: Device, graph: Graph) -> Backend:
    """Fastest portable backend of a (device, graph) pair: XNNPACK when it
    can run, the plain CPU interpreter otherwise.

    The single eligibility rule behind both :meth:`FleetSpec._backend_for`
    (which memoises it per combo) and :func:`congested_population` (which
    must evaluate candidate graphs under the backend the fleet would really
    assign them).
    """
    profile = profile_for(Backend.XNNPACK)
    device_ok = not (profile.requires_qualcomm
                     and device.soc.vendor != "Qualcomm")
    device_ok = device_ok and not (
        profile.requires_accelerator
        and device.soc.accelerator(profile.target) is None)
    return (Backend.XNNPACK if device_ok and profile.supports_graph(graph)
            else Backend.CPU)


def zoo_population(weight_seed: int = 0) -> tuple[tuple[Graph, str], ...]:
    """A reference (graph, task) set covering every standard scenario.

    Synthetic snapshots at small scales often contain no model for the
    Table 4 scenario tasks; this zoo-built set guarantees an eligible
    population.  It deliberately includes *two* segmentation variants — a
    mobile-sized one that meets the 15 FPS deadline on-device (and therefore
    heats the SoC: the throttling regime) and the full-size one that no
    phone can run in a frame period (the capability-offload regime).
    """
    from repro.dnn.zoo import autocomplete_lstm, sound_recognition, unet_lite

    return (
        (sound_recognition(weight_seed=weight_seed), "sound recognition"),
        (autocomplete_lstm(weight_seed=weight_seed), "auto-complete"),
        (unet_lite("unet_lite_128", resolution=128, base_filters=8, depth=3,
                   weight_seed=weight_seed), "semantic segmentation"),
        (unet_lite(weight_seed=weight_seed), "semantic segmentation"),
    )


def congested_population(device: Optional[Device] = None, *,
                         band: tuple[float, float] = (0.74, 0.97),
                         weight_seed: int = 0) -> tuple[tuple[Graph, str], ...]:
    """A population whose segmentation model congests the device queue.

    Picks a ``unet_lite`` variant whose *cold* latency on ``device`` (default:
    the low-tier phone) lands inside ``band`` of the 15 FPS frame deadline:
    cold inference meets the deadline (so the request is not capability
    -offloaded), but the thermally throttled steady state does not — sustained
    video calls therefore build a real queue, the regime the queueing layer
    and its shed/overflow policies exist for.  The search is deterministic
    (fixed candidate grid, analytic latency model), so every caller gets the
    same graph.
    """
    from repro.dnn.zoo import unet_lite
    from repro.runtime.latency_model import LatencyModel

    device = device or PHONES[0]
    deadline_ms = next(s for s in STANDARD_SCENARIOS
                       if s.name == "Segm.").deadline_ms
    low, high = band
    latency_model = LatencyModel(device)
    candidates = [
        (resolution, base_filters, depth)
        for resolution in (96, 112, 128, 144, 160, 176, 192, 224, 256)
        for base_filters in (4, 6, 8, 12, 16, 24)
        for depth in (2, 3)
    ]
    for resolution, base_filters, depth in candidates:
        graph = unet_lite(
            f"unet_congested_{resolution}_{base_filters}_{depth}",
            resolution=resolution, base_filters=base_filters, depth=depth,
            weight_seed=weight_seed)
        nominal_ms = latency_model.graph_latency_ms(
            graph, preferred_backend(device, graph))
        if low * deadline_ms < nominal_ms <= high * deadline_ms:
            return ((graph, "semantic segmentation"),)
    raise RuntimeError(
        f"no unet_lite candidate lands within {band} of the "
        f"{deadline_ms:.1f} ms frame deadline on {device.name}")


def derive_user_seed(base_seed: int, user_id: int) -> int:
    """Deterministic 64-bit RNG seed for one virtual user.

    Depends only on the spec seed and the user's id — never on sharding or
    scheduling — mirroring :func:`~repro.runtime.sweep.derive_job_seed`.
    """
    material = f"{base_seed}|fleet-user|{user_id}"
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "little")


def derive_user_region(base_seed: int, user_id: int,
                       regions: Sequence[str]) -> str:
    """Deterministic cloud-region assignment of one virtual user.

    A separate hash stream from :func:`derive_user_seed`, so adding or
    removing regions never shifts any draw of the user's event plan — only
    which regional capacity pool their offloaded requests land in.
    """
    if not regions:
        raise ValueError("regions must be non-empty")
    material = f"{base_seed}|fleet-region|{user_id}"
    digest = hashlib.sha256(material.encode()).digest()
    return regions[int.from_bytes(digest[:8], "little") % len(regions)]


@dataclass(frozen=True)
class VirtualUser:
    """One member of the population: a (device, model, scenario) tuple."""

    user_id: int
    device: Device
    graph: Graph
    task: str
    scenario: Scenario
    backend: Backend
    seed: int
    #: Cloud region this user's offloaded requests are served from.
    region: str = "global"


@dataclass(frozen=True)
class UserPlan:
    """Pre-drawn randomness of one user's day, shared by both event loops.

    The vectorised simulator and the naive per-event reference consume the
    same plan arrays, so they differ only in how the event loop is evaluated
    — exactly the comparison the fleet benchmark wants to make.
    """

    #: Sorted request arrival times, seconds from simulation start.
    times: np.ndarray
    #: Per-request latency noise multipliers (uncapped; loops clamp at 0.5).
    noise: np.ndarray
    #: Per-request network RTT draws for offloaded execution, ms.
    rtt_ms: np.ndarray
    #: Battery level at simulation start, as a fraction of capacity.
    start_battery_fraction: float

    @property
    def num_events(self) -> int:
        """Number of requests the user issues over the horizon."""
        return int(self.times.size)


@dataclass(frozen=True)
class FleetSpec:
    """Declarative description of a fleet simulation."""

    graphs_with_tasks: tuple[tuple[Graph, str], ...]
    num_users: int
    horizon_s: float = 86400.0
    devices: tuple[Device, ...] = PHONES
    scenarios: tuple[Scenario, ...] = STANDARD_SCENARIOS
    policy: RoutingPolicy = field(default_factory=RoutingPolicy)
    noise_fraction: float = 0.02
    #: Battery level users start the horizon at, drawn uniformly.
    start_battery_range: tuple[float, float] = (0.25, 1.0)
    seed: int = 0
    #: Cloud regions users are hashed across (the capacity model's shards).
    regions: tuple[str, ...] = ("global",)
    #: Night/day session-start modulation (``None`` = uniform over the day).
    diurnal: Optional[DiurnalProfile] = None
    #: Nightly charging windows (``None`` = batteries only ever drain).
    recharge: Optional[RechargeSchedule] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "graphs_with_tasks",
                           tuple((g, t) for g, t in self.graphs_with_tasks))
        object.__setattr__(self, "devices", tuple(self.devices))
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "regions", tuple(self.regions))
        if not self.regions:
            raise ValueError("FleetSpec requires at least one region")
        if self.num_users <= 0:
            raise ValueError("num_users must be positive")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not self.devices:
            raise ValueError("FleetSpec requires at least one device")
        if any(device.battery is None for device in self.devices):
            raise ValueError(
                "fleet devices need a battery (bench-powered boards cannot "
                "model user battery budgets)")
        if self.noise_fraction < 0:
            raise ValueError("noise_fraction must be non-negative")
        low, high = self.start_battery_range
        if not 0.0 < low <= high <= 1.0:
            raise ValueError("start_battery_range must satisfy 0 < low <= high <= 1")
        if not self._eligible_scenarios():
            raise ValueError(
                "no scenario matches any (graph, task) pair of the spec")

    # ------------------------------------------------------------------ #
    # Scenario pools (memoised — materialize() runs once per user, so the
    # per-spec derivations must not be recomputed on that hot path)
    # ------------------------------------------------------------------ #
    _CACHE_ATTRS = ("_pool_cache", "_eligible_cache", "_backend_cache",
                    "_weights_cache")

    def __getstate__(self) -> dict:
        # Process-pool workers rebuild the memos; the backend cache is keyed
        # by graph identity, which does not survive pickling.
        state = dict(self.__dict__)
        for name in self._CACHE_ATTRS:
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def scenario_pool(self, scenario: Scenario) -> tuple[tuple[Graph, str], ...]:
        """(graph, task) pairs a scenario can run, CPU-executable only."""
        cache = getattr(self, "_pool_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_pool_cache", cache)
        pool = cache.get(scenario.name)
        if pool is None:
            cpu = profile_for(Backend.CPU)
            pool = tuple(
                (graph, task) for graph, task in self.graphs_with_tasks
                if scenario.applies_to(task, graph.modality)
                and cpu.supports_graph(graph)
            )
            cache[scenario.name] = pool
        return pool

    def _eligible_scenarios(self) -> tuple[Scenario, ...]:
        cached = getattr(self, "_eligible_cache", None)
        if cached is None:
            cached = tuple(s for s in self.scenarios if self.scenario_pool(s))
            object.__setattr__(self, "_eligible_cache", cached)
        return cached

    @property
    def eligible_scenarios(self) -> tuple[Scenario, ...]:
        """Scenarios with at least one compatible model in the spec."""
        return self._eligible_scenarios()

    # ------------------------------------------------------------------ #
    # User materialisation
    # ------------------------------------------------------------------ #
    def _device_weights(self) -> np.ndarray:
        """Tier-weighted device draw probabilities, memoised per spec.

        ``materialize`` calls this once per user, so at campaign scale the
        list comprehension + normalisation would dominate the fixed
        per-user cost; the cached array is identical (same float ops), so
        every RNG draw — and therefore every trace — is unchanged.
        """
        cached = getattr(self, "_weights_cache", None)
        if cached is None:
            weights = np.array(
                [TIER_WEIGHTS.get(d.tier, 1.0) for d in self.devices])
            cached = weights / weights.sum()
            cached.setflags(write=False)
            object.__setattr__(self, "_weights_cache", cached)
        return cached

    def _backend_for(self, device: Device, graph: Graph) -> Backend:
        """:func:`preferred_backend`, memoised per (device, graph):
        ``supports_graph`` scans every layer, and the same few combos repeat
        across the whole population."""
        cache = getattr(self, "_backend_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_backend_cache", cache)
        key = (device.name, id(graph))
        backend = cache.get(key)
        if backend is None:
            backend = preferred_backend(device, graph)
            cache[key] = backend
        return backend

    def materialize(self, user_id: int) -> tuple[VirtualUser, UserPlan]:
        """Build user ``user_id`` and their full event plan.

        Every RNG draw happens here, in a fixed order, from the user's own
        derived seed — materialising user 7 yields the same user and plan
        whether it happens in the main process, a thread, or worker 3 of a
        process pool.
        """
        if not 0 <= user_id < self.num_users:
            raise ValueError(f"user_id must be in [0, {self.num_users})")
        seed = derive_user_seed(self.seed, user_id)
        rng = np.random.default_rng(seed)

        eligible = self._eligible_scenarios()
        scenario = eligible[int(rng.integers(len(eligible)))]
        device = self.devices[int(rng.choice(len(self.devices),
                                             p=self._device_weights()))]
        pool = self.scenario_pool(scenario)
        graph, task = pool[int(rng.integers(len(pool)))]
        low, high = self.start_battery_range
        start_fraction = float(rng.uniform(low, high))

        times = generate_arrivals(scenario, graph, rng, self.horizon_s,
                                  diurnal=self.diurnal)
        noise = 1.0 + self.noise_fraction * rng.standard_normal(times.size)
        rtt_ms = self.policy.cloud.draw_rtt_ms(rng, times.size)

        user = VirtualUser(
            user_id=user_id,
            device=device,
            graph=graph,
            task=task,
            scenario=scenario,
            backend=self._backend_for(device, graph),
            seed=seed,
            region=derive_user_region(self.seed, user_id, self.regions),
        )
        plan = UserPlan(
            times=times,
            noise=noise,
            rtt_ms=rtt_ms,
            start_battery_fraction=start_fraction,
        )
        return user, plan
