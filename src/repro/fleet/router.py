"""On-device vs cloud routing: the fleet's offload policy and cloud costs.

The paper observes the ecosystem splitting between on-device models and
cloud ML APIs (Sec. 3.2/6.4, Fig. 15).  The router reproduces the two
first-order reasons a request leaves the device:

* **capability** — the device cannot meet the scenario's latency deadline
  even cold (``nominal > deadline``, e.g. low-tier phones running 15 FPS
  segmentation), so the whole session class is served by the matching cloud
  API;
* **battery saving** — once the battery falls under the policy threshold the
  user's requests are offloaded to spare the remaining charge (discharge is
  monotone, so this is a one-way switch per user within a simulation).

Both rules are deterministic functions of per-user state, which is what
keeps the simulator's vectorised and per-event reference loops equivalent
and the whole simulation reproducible under any worker count.

Cloud execution costs latency (RTT draw + uplink transfer + service time)
and radio energy; both are computed here so the simulator and the naive
reference share one cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.android.cloud_apis import api_by_name
from repro.core.scenarios import Scenario
from repro.dnn.graph import Graph
from repro.fleet.queueing import QueuePolicy

__all__ = ["CloudProfile", "RoutingPolicy", "cloud_api_for_scenario",
           "SCENARIO_CLOUD_APIS"]

#: Fig. 15 API category serving each standard scenario when offloaded.
SCENARIO_CLOUD_APIS: dict[str, str] = {
    "Sound R.": "Speech",
    "Typing": "Natural Language/Smart Reply",
    "Segm.": "Vision/custom model",
}

#: API category for scenarios without a dedicated mapping.
DEFAULT_CLOUD_API = "Vision/custom model"


def cloud_api_for_scenario(scenario: Scenario) -> str:
    """Name of the cloud API category that serves a scenario's offloads."""
    name = SCENARIO_CLOUD_APIS.get(scenario.name, DEFAULT_CLOUD_API)
    return api_by_name(name).name  # validate against the Fig. 15 table


@dataclass(frozen=True)
class CloudProfile:
    """Latency and energy characteristics of offloaded execution."""

    #: Server-side model execution + queueing, milliseconds.
    service_ms: float = 45.0
    #: Median round-trip time to the API endpoint, milliseconds.
    rtt_median_ms: float = 60.0
    #: Log-normal sigma of the RTT draw (mobile network jitter).
    rtt_sigma: float = 0.35
    #: Average radio power while a request is in flight, watts.
    radio_power_watts: float = 0.9
    #: Sustained uplink throughput, megabits per second.
    uplink_mbps: float = 8.0
    #: Payload bytes uploaded per input element (quantised/compressed).
    payload_bytes_per_element: float = 1.0

    def __post_init__(self) -> None:
        if min(self.service_ms, self.rtt_median_ms, self.radio_power_watts,
               self.uplink_mbps, self.payload_bytes_per_element) <= 0:
            raise ValueError("cloud profile parameters must be positive")

    def payload_bytes(self, graph: Graph) -> int:
        """Uplink bytes one request of this model ships to the API."""
        return int(graph.input_specs[0].num_elements
                   * self.payload_bytes_per_element)

    def transfer_ms(self, payload_bytes: int) -> float:
        """Uplink transfer time of one request payload."""
        return payload_bytes * 8.0 / (self.uplink_mbps * 1e6) * 1e3

    def draw_rtt_ms(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Per-request RTT draws (log-normal around the median)."""
        return self.rtt_median_ms * np.exp(
            self.rtt_sigma * rng.standard_normal(count))

    def latency_ms(self, rtt_ms, payload_bytes: int, service_ms=None):
        """End-to-end latency of offloaded requests (elementwise over RTTs).

        ``service_ms`` overrides the profile's fixed service time — scalar or
        per-request array — which is how the cloud capacity layer injects
        load-dependent service times from a frozen regional load profile
        without the router knowing about regions at all.
        """
        if service_ms is None:
            service_ms = self.service_ms
        return rtt_ms + self.transfer_ms(payload_bytes) + service_ms

    def energy_mj(self, latency_ms):
        """Device-side radio energy of offloaded requests (elementwise)."""
        return self.radio_power_watts * latency_ms


@dataclass(frozen=True)
class RoutingPolicy:
    """When the fleet offloads a request instead of running it on device."""

    #: Battery fraction under which requests are offloaded to save charge.
    battery_saver_threshold: float = 0.2
    cloud: CloudProfile = field(default_factory=CloudProfile)
    #: Device-queue back-pressure: overflow cap and shed-vs-offload action.
    queue: QueuePolicy = field(default_factory=QueuePolicy)

    def __post_init__(self) -> None:
        if not 0.0 <= self.battery_saver_threshold < 1.0:
            raise ValueError("battery_saver_threshold must be in [0, 1)")

    def offloads_for_capability(self, nominal_ms: float,
                                deadline_ms: float) -> bool:
        """Whether the device misses the scenario deadline even when cold."""
        return nominal_ms > deadline_ms

    def offloads_for_battery(self, battery_fraction: float) -> bool:
        """Whether the battery-saver threshold routes this request away."""
        return battery_fraction < self.battery_saver_threshold
