"""Arrival processes: when a virtual user's app issues inference requests.

Each usage scenario implies a characteristic traffic shape over the day —
the paper's Table 4 use cases turned into request streams:

* **Sound R.** — short ambient-recognition sessions a few times a day, each
  emitting audio-chunk inferences at the model-derived chunk rate;
* **Typing** — many short bursts (messaging sessions) at the word rate the
  daily 275-word workload implies;
* **Segm.** — one or two video calls at 15 FPS for minutes at a time: few
  sessions, by far the most events (this is the sustained-load regime where
  thermal throttling materialises).

Sessions arrive as a Poisson process over the horizon, session lengths are
exponential, and within a session events tick at the scenario's
:meth:`~repro.core.scenarios.Scenario.arrival_rate_hz`.  All draws come from
the caller's RNG in a fixed order, so one user's arrivals depend only on
their derived seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.scenarios import Scenario
from repro.dnn.graph import Graph

__all__ = ["SessionShape", "SESSION_SHAPES", "session_shape_for",
           "DiurnalProfile", "generate_arrivals"]

#: Floor on generated session durations, seconds (a one-glance session).
MIN_SESSION_S = 2.0


@dataclass(frozen=True)
class SessionShape:
    """How often a scenario's sessions start and how long they last."""

    sessions_per_day: float
    mean_session_s: float

    def __post_init__(self) -> None:
        if self.sessions_per_day <= 0:
            raise ValueError("sessions_per_day must be positive")
        if self.mean_session_s < 0:
            raise ValueError("mean_session_s must be non-negative")


#: Daily session structure per standard scenario name.
SESSION_SHAPES: dict[str, SessionShape] = {
    # A few ambient-audio recognitions per day, a minute or two each.
    "Sound R.": SessionShape(sessions_per_day=6.0, mean_session_s=90.0),
    # Messaging happens in many short bursts.
    "Typing": SessionShape(sessions_per_day=14.0, mean_session_s=45.0),
    # One or two video calls, several minutes each.
    "Segm.": SessionShape(sessions_per_day=1.6, mean_session_s=420.0),
}

#: Shape for scenarios without a dedicated entry.
DEFAULT_SHAPE = SessionShape(sessions_per_day=4.0, mean_session_s=120.0)


def session_shape_for(scenario: Scenario) -> SessionShape:
    """Session structure of a scenario (falls back to a generic shape)."""
    return SESSION_SHAPES.get(scenario.name, DEFAULT_SHAPE)


@dataclass(frozen=True)
class DiurnalProfile:
    """Night/day modulation of when sessions start.

    ``hourly_weights`` gives the relative session-start intensity of each
    hour of the (virtual) day; session start times are drawn by pushing the
    user's uniform draws through the inverse CDF of the piecewise-constant
    intensity, tiled across the horizon.  This consumes exactly one RNG draw
    per session — the same as the uniform placement it replaces — so enabling
    or disabling the profile never shifts any other draw in a user's plan.
    The aggregate effect is the fleet-level day/night swing the cloud
    capacity model sees in its time-binned load profiles.
    """

    hourly_weights: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "hourly_weights", tuple(self.hourly_weights))
        if len(self.hourly_weights) != 24:
            raise ValueError("hourly_weights must have 24 entries")
        if min(self.hourly_weights) <= 0:
            raise ValueError("hourly_weights must be strictly positive")

    @classmethod
    def default(cls) -> "DiurnalProfile":
        """A typical phone-usage day: quiet night, daytime plateau, evening peak."""
        return cls(hourly_weights=(
            0.25, 0.15, 0.10, 0.10, 0.15, 0.30,   # 00-05: asleep
            0.60, 1.00, 1.20, 1.10, 1.00, 1.10,   # 06-11: morning ramp
            1.20, 1.10, 1.00, 1.00, 1.10, 1.30,   # 12-17: daytime plateau
            1.60, 1.80, 1.70, 1.40, 0.90, 0.50,   # 18-23: evening peak
        ))

    def session_start_times(self, uniform: np.ndarray,
                            horizon_s: float) -> np.ndarray:
        """Map uniform [0, 1) draws to start times over ``[0, horizon_s)``.

        The inverse CDF of the hourly intensity, tiled day by day and
        truncated at the horizon; a flat profile reduces to
        ``uniform * horizon_s`` exactly.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        hours = int(np.ceil(horizon_s / 3600.0))
        weights = np.asarray(
            [self.hourly_weights[h % 24] for h in range(hours)],
            dtype=np.float64)
        edges = np.minimum(np.arange(1, hours + 1) * 3600.0, horizon_s)
        widths = np.diff(np.concatenate(([0.0], edges)))
        mass = weights * widths
        cum = np.cumsum(mass)
        total = cum[-1]
        targets = np.asarray(uniform, dtype=np.float64) * total
        idx = np.searchsorted(cum, targets, side="right")
        idx = np.minimum(idx, hours - 1)
        below = np.where(idx > 0, cum[idx - 1], 0.0)
        starts = idx * 3600.0 + (targets - below) / weights[idx]
        return np.minimum(starts, np.nextafter(horizon_s, 0.0))


def generate_arrivals(scenario: Scenario, graph: Graph,
                      rng: np.random.Generator, horizon_s: float,
                      diurnal: Optional[DiurnalProfile] = None) -> np.ndarray:
    """Sorted request arrival times of one user over ``[0, horizon_s)``.

    Draws, in fixed RNG order: the session count (Poisson on the horizon's
    share of the daily session rate), session start times (uniform, or
    diurnally modulated through ``diurnal``'s inverse CDF — either way one
    draw per session), and session durations (exponential, floored).  Within
    a session requests tick at the scenario-derived rate with the phase
    anchored at the session start, mirroring a frame clock / keystroke
    cadence rather than per-event jitter.
    """
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    shape = session_shape_for(scenario)
    rate_hz = scenario.arrival_rate_hz(graph)
    if rate_hz <= 0:
        return np.empty(0, dtype=np.float64)

    expected_sessions = shape.sessions_per_day * horizon_s / 86400.0
    num_sessions = int(rng.poisson(expected_sessions))
    if diurnal is None:
        starts = rng.uniform(0.0, horizon_s, num_sessions)
    else:
        starts = diurnal.session_start_times(rng.random(num_sessions),
                                             horizon_s)
    durations = np.maximum(
        rng.exponential(shape.mean_session_s, num_sessions), MIN_SESSION_S)
    if num_sessions == 0:
        return np.empty(0, dtype=np.float64)

    period = 1.0 / rate_hz
    counts = np.maximum(1, np.floor(durations * rate_hz).astype(np.int64))
    times = np.concatenate([
        start + period * np.arange(count, dtype=np.float64)
        for start, count in zip(starts, counts)
    ])
    times = times[times < horizon_s]
    times.sort(kind="stable")
    return times
