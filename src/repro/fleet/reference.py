"""Per-event reference implementation of the fleet event loop.

This is the semantic specification the vectorised simulator is measured
against: the same users, the same plans, the same routing policy — but each
event walks individually through the stateful device objects
(:class:`~repro.devices.thermal.ThermalState`,
:class:`~repro.devices.battery.BatteryState`) and re-evaluates the latency
and energy models per event, the way a straightforward simulator would.
``tests/test_fleet.py`` asserts the two produce equivalent traces;
``benchmarks/test_bench_fleet.py`` measures the vectorised loop's speedup
over this one (>= 5x enforced).
"""

from __future__ import annotations

import numpy as np

from repro.devices.thermal import ThermalModel
from repro.fleet.population import FleetSpec
from repro.fleet.router import cloud_api_for_scenario
from repro.fleet.simulator import MIN_NOISE_FACTOR, UserTrace
from repro.runtime.energy_model import EnergyModel
from repro.runtime.latency_model import LatencyModel

__all__ = ["simulate_user_naive"]


def simulate_user_naive(spec: FleetSpec, user_id: int) -> UserTrace:
    """Simulate one user with a per-event Python loop (no batching, no cache)."""
    user, plan = spec.materialize(user_id)
    policy = spec.policy
    device = user.device
    latency_model = LatencyModel(device)
    energy_model = EnergyModel(device)
    thermal = ThermalModel.for_device(device.is_dev_board, device.tier).state()
    battery = device.battery.state(plan.start_battery_fraction)
    payload_bytes = policy.cloud.payload_bytes(user.graph)
    deadline_ms = user.scenario.deadline_ms

    n = plan.num_events
    latency = np.empty(n)
    energy = np.empty(n)
    throttle = np.ones(n)
    fraction = np.empty(n)
    discharge = np.empty(n)
    offloaded = np.zeros(n, dtype=bool)

    nominal_ms = float("nan")
    previous_time = 0.0
    for i in range(n):
        time_s = plan.times[i]
        # The naive loop re-evaluates the roofline for every event — the
        # per-event cost the vectorised path amortises away.
        nominal_ms = latency_model.graph_latency_ms(user.graph, user.backend)
        power_watts = energy_model.inference_power_watts(user.backend)
        busy_s = nominal_ms / 1e3

        if (policy.offloads_for_capability(nominal_ms, deadline_ms)
                or policy.offloads_for_battery(battery.fraction)):
            offloaded[i] = True
            lat = policy.cloud.latency_ms(float(plan.rtt_ms[i]), payload_bytes)
            en = policy.cloud.energy_mj(lat)
        else:
            gap_s = max(0.0, time_s - previous_time)
            thermal.cool_down(gap_s)
            factor = thermal.throttle_factor
            lat = nominal_ms / factor * max(float(plan.noise[i]), MIN_NOISE_FACTOR)
            thermal.heat_up(busy_s)
            previous_time = time_s + busy_s
            throttle[i] = factor
            en = power_watts * lat

        latency[i] = lat
        energy[i] = en
        discharge[i] = battery.drain_mj(en)
        fraction[i] = battery.fraction

    return UserTrace(
        user=user,
        times_s=plan.times,
        latency_ms=latency,
        energy_mj=energy,
        throttle=throttle,
        battery_fraction=fraction,
        discharge_mah=discharge,
        offloaded=offloaded,
        nominal_ms=(latency_model.graph_latency_ms(user.graph, user.backend)
                    if n == 0 else nominal_ms),
        payload_bytes=payload_bytes,
        cloud_api=cloud_api_for_scenario(user.scenario),
    )
