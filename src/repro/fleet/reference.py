"""Per-event reference implementation of the fleet event loop.

This is the semantic specification the vectorised simulator is measured
against: the same users, the same plans, the same routing, queueing and
recharge policies — but each event walks individually through the stateful
device objects (:class:`~repro.devices.thermal.ThermalState`,
:class:`~repro.devices.battery.BatteryState`) and re-evaluates the latency
and energy models per event, the way a straightforward simulator would.

The queue semantics are the single-server FIFO of
:mod:`repro.fleet.queueing`: a request starts at
``max(arrival, previous completion)``; its wait above the policy cap sheds
(or offloads) it; service past the horizon leaves it ``queued``.  Thermal
idle runs on the nominal-completion clock, heat accumulates in nominal busy
units (PR 3's convention), and queue occupancy uses the actual throttled,
noisy execution time — which is exactly what makes sustained over-deadline
load congest.  At every :class:`~repro.devices.battery.RechargeSchedule`
boundary the battery recharges and the thermal state resets (hours idle on
the charger).

``tests/test_fleet.py`` and ``tests/test_cloud.py`` assert the two loops
produce equivalent traces; ``benchmarks/test_bench_fleet.py`` and
``benchmarks/test_bench_cloud.py`` measure the vectorised loop's speedup
over this one (>= 5x enforced).
"""

from __future__ import annotations

import math

import numpy as np

from repro.devices.thermal import ThermalModel
from repro.fleet.population import FleetSpec
from repro.fleet.queueing import (ROUTE_CLOUD, ROUTE_DEVICE, ROUTE_QUEUED,
                                  ROUTE_SHED)
from repro.fleet.router import cloud_api_for_scenario
from repro.fleet.simulator import MIN_NOISE_FACTOR, UserTrace
from repro.runtime.energy_model import EnergyModel
from repro.runtime.latency_model import LatencyModel

__all__ = ["simulate_user_naive"]


def simulate_user_naive(spec: FleetSpec, user_id: int,
                        service_table=None) -> UserTrace:
    """Simulate one user with a per-event Python loop (no batching, no cache).

    ``service_table`` mirrors the simulator's frozen cloud service-time
    lookup; ``None`` uses the routing policy's constant service time.
    """
    user, plan = spec.materialize(user_id)
    policy = spec.policy
    queue = policy.queue
    device = user.device
    latency_model = LatencyModel(device)
    energy_model = EnergyModel(device)
    thermal = ThermalModel.for_device(device.is_dev_board, device.tier).state()
    battery = device.battery.state(plan.start_battery_fraction)
    payload_bytes = policy.cloud.payload_bytes(user.graph)
    cloud_api = cloud_api_for_scenario(user.scenario)
    deadline_ms = user.scenario.deadline_ms
    horizon_s = spec.horizon_s

    boundaries: list[float] = []
    if spec.recharge is not None:
        boundaries = [float(b) for b in spec.recharge.boundaries(horizon_s)]

    n = plan.num_events
    latency = np.zeros(n)
    energy = np.zeros(n)
    throttle = np.ones(n)
    fraction = np.empty(n)
    discharge = np.zeros(n)
    wait_ms = np.zeros(n)
    route = np.full(n, ROUTE_DEVICE, dtype=np.int64)

    nominal_ms = float("nan")
    completion = -math.inf
    nominal_end = -math.inf
    for i in range(n):
        time_s = float(plan.times[i])
        while boundaries and time_s >= boundaries[0]:
            # Overnight on the charger: battery back to the schedule level,
            # SoC cold, device queue drained.
            boundaries.pop(0)
            spec.recharge.apply(battery)
            thermal.reset()
            completion = -math.inf
            nominal_end = -math.inf
        # The naive loop re-evaluates the roofline for every event — the
        # per-event cost the vectorised path amortises away.
        nominal_ms = latency_model.graph_latency_ms(user.graph, user.backend)
        power_watts = energy_model.inference_power_watts(user.backend)
        busy_s = nominal_ms / 1e3
        if service_table is not None:
            service_ms = float(service_table.service_for(
                user.region, cloud_api, np.array([time_s]))[0])
        else:
            service_ms = policy.cloud.service_ms

        if (policy.offloads_for_capability(nominal_ms, deadline_ms)
                or policy.offloads_for_battery(battery.fraction)):
            route[i] = ROUTE_CLOUD
            lat = policy.cloud.latency_ms(float(plan.rtt_ms[i]),
                                          payload_bytes, service_ms)
            en = policy.cloud.energy_mj(lat)
        else:
            start = time_s if completion < time_s else completion
            wait_s = start - time_s
            if wait_s > queue.max_wait_s:
                if queue.overflows_to_cloud:
                    route[i] = ROUTE_CLOUD
                    lat = policy.cloud.latency_ms(float(plan.rtt_ms[i]),
                                                  payload_bytes, service_ms)
                    en = policy.cloud.energy_mj(lat)
                else:
                    route[i] = ROUTE_SHED
                    wait_ms[i] = wait_s * 1e3
                    fraction[i] = battery.fraction
                    continue
            elif start >= horizon_s:
                route[i] = ROUTE_QUEUED
                wait_ms[i] = (horizon_s - time_s) * 1e3
                fraction[i] = battery.fraction
                continue
            else:
                if nominal_end > -math.inf:
                    thermal.cool_down(max(0.0, start - nominal_end))
                factor = thermal.throttle_factor
                exec_ms = nominal_ms / factor * max(float(plan.noise[i]),
                                                    MIN_NOISE_FACTOR)
                thermal.heat_up(busy_s)
                nominal_end = start + busy_s
                completion = start + exec_ms / 1e3
                throttle[i] = factor
                wait_ms[i] = wait_s * 1e3
                lat = wait_s * 1e3 + exec_ms
                en = power_watts * exec_ms

        latency[i] = lat
        energy[i] = en
        discharge[i] = battery.drain_mj(en)
        fraction[i] = battery.fraction

    return UserTrace(
        user=user,
        times_s=plan.times,
        latency_ms=latency,
        energy_mj=energy,
        throttle=throttle,
        battery_fraction=fraction,
        discharge_mah=discharge,
        wait_ms=wait_ms,
        route=route,
        nominal_ms=(latency_model.graph_latency_ms(user.graph, user.backend)
                    if n == 0 else nominal_ms),
        payload_bytes=payload_bytes,
        cloud_api=cloud_api,
    )
