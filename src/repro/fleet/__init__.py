"""Fleet traffic simulation: million-user DNN workloads over virtual time.

The paper measures single inferences; its framing is millions of users
running DNN-backed apps under thermal throttling, battery budgets and
on-device-vs-cloud routing.  This package composes the existing pieces —
devices and their stateful thermal/battery models, the runtime's
latency/energy models, Table 4's usage scenarios, the Fig. 15 cloud APIs and
the results store — into a deterministic discrete-event simulator:

* :class:`~repro.fleet.population.FleetSpec` — the population, declaratively;
  every user derives from their own seed, so results are bit-identical for
  any worker count;
* :class:`~repro.fleet.simulator.FleetSimulator` — the vectorised event
  loop, fanned out over the shared ordered worker pool and streaming
  ``fleet_events`` rows into a results store memory-flat;
* :mod:`~repro.fleet.reference` — the per-event reference loop the
  benchmark holds the vectorised path equivalent to (and >= 5x faster than);
* :mod:`~repro.fleet.reports` — store-served fleet tables: tail latency
  under load, battery-drain ECDFs, cloud-offload traffic.

See the README's "Fleet simulation" section for a runnable example.
"""

from repro.fleet.arrivals import (SESSION_SHAPES, DiurnalProfile, SessionShape,
                                  generate_arrivals, session_shape_for)
from repro.fleet.events import FleetEvent
from repro.fleet.population import (FleetSpec, UserPlan, VirtualUser,
                                    congested_population, derive_user_region,
                                    derive_user_seed, zoo_population)
from repro.fleet.queueing import (ROUTE_CLOUD, ROUTE_DEVICE, ROUTE_QUEUED,
                                  ROUTE_SHED, ROUTE_TARGETS, QueuePolicy)
from repro.fleet.reference import simulate_user_naive
from repro.fleet.reports import (battery_drain_ecdf, offload_summary,
                                 queue_summary, tail_latency_table)
from repro.fleet.router import CloudProfile, RoutingPolicy, cloud_api_for_scenario
from repro.fleet.simulator import FleetSimulator, UserTrace

__all__ = [
    "FleetSpec",
    "FleetSimulator",
    "FleetEvent",
    "UserTrace",
    "UserPlan",
    "VirtualUser",
    "RoutingPolicy",
    "CloudProfile",
    "QueuePolicy",
    "ROUTE_DEVICE",
    "ROUTE_CLOUD",
    "ROUTE_SHED",
    "ROUTE_QUEUED",
    "ROUTE_TARGETS",
    "DiurnalProfile",
    "SessionShape",
    "SESSION_SHAPES",
    "generate_arrivals",
    "session_shape_for",
    "cloud_api_for_scenario",
    "derive_user_seed",
    "derive_user_region",
    "zoo_population",
    "congested_population",
    "simulate_user_naive",
    "battery_drain_ecdf",
    "offload_summary",
    "queue_summary",
    "tail_latency_table",
]
