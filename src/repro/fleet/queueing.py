"""Device-level queueing: the back-pressure the fleet's arrivals exert.

PR 3's event loop recorded an over-deadline on-device latency but never
back-pressured it: a 15 FPS segmentation stream whose throttled inference
takes longer than a frame period simply logged latencies above the deadline.
This module closes that gap.  Each on-device request occupies a single-server
FIFO queue for its *actual* execution time (throttle and noise included), so
arrivals faster than the service rate build a queue, and every request is
classified into exactly one route:

* ``device`` — served on the device; recorded latency is queue wait plus
  execution;
* ``cloud``  — offloaded (capability, battery saver, or queue overflow when
  the policy says overflow requests go to the cloud instead of being
  dropped);
* ``shed``   — dropped at arrival because its queue wait would exceed the
  policy cap (no execution, no energy, no heat);
* ``queued`` — still waiting when the simulation horizon ends (service never
  started; it would complete after the horizon).

The **queue-conservation invariant** — ``arrived == served(device) +
served(cloud) + shed + queued`` — holds exactly by construction, per user
and in aggregate, and is enforced by ``benchmarks/test_bench_cloud.py``.

Thermal accounting keeps PR 3's convention: heat accumulates in units of the
*nominal* busy time per served request and idle is measured from the nominal
completion (``service start + nominal``), so a congestion-free user is
bit-compatible with the pre-queueing event loop; only queue *occupancy* uses
the actual execution time, because throttle-inflated service is exactly what
causes the congestion this module models.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QueuePolicy", "ROUTE_DEVICE", "ROUTE_CLOUD", "ROUTE_SHED",
           "ROUTE_QUEUED", "ROUTE_TARGETS"]

#: Route codes recorded per event in a :class:`~repro.fleet.simulator.UserTrace`.
ROUTE_DEVICE = 0
ROUTE_CLOUD = 1
ROUTE_SHED = 2
ROUTE_QUEUED = 3

#: Store ``target`` column value per route code.
ROUTE_TARGETS = ("device", "cloud", "shed", "queued")

#: Overflow actions a :class:`QueuePolicy` supports.
_OVERFLOW_ACTIONS = ("shed", "cloud")


@dataclass(frozen=True)
class QueuePolicy:
    """What happens when the device queue backs up.

    A request whose wait would exceed ``max_wait_ms`` *overflows*: it is
    either shed (dropped — the app skips the frame) or offloaded to the
    scenario's cloud API, per ``overflow``.  Overflowed-to-cloud requests
    count toward regional cloud load, which is how on-device congestion and
    cloud congestion interact in the interference simulator.  An infinite
    ``max_wait_ms`` disables overflow entirely (pure FIFO).
    """

    #: Longest queue wait a request tolerates before overflowing, ms.
    max_wait_ms: float = 2000.0
    #: Overflow action: ``"shed"`` (drop) or ``"cloud"`` (offload).
    overflow: str = "shed"

    def __post_init__(self) -> None:
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.overflow not in _OVERFLOW_ACTIONS:
            raise ValueError(
                f"overflow must be one of {_OVERFLOW_ACTIONS}, "
                f"got {self.overflow!r}")

    @property
    def max_wait_s(self) -> float:
        """The overflow cap in seconds (the event loops' working unit)."""
        return self.max_wait_ms / 1e3

    @property
    def overflows_to_cloud(self) -> bool:
        """Whether overflowing requests offload instead of being dropped."""
        return self.overflow == "cloud"
