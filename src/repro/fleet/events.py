"""The unit record of the fleet simulator: one inference request of one user.

A :class:`FleetEvent` is what the discrete-event loop emits per request and
what streams into the results store as a ``fleet_events`` row (the schema
lives in :mod:`repro.store.schema`; the ``__row_kind__`` marker is how the
store's writer dispatches these without the schema layer importing this
package).  Fleet-level reports — tail latency under load, battery-drain
ECDFs, cloud offload traffic — are all aggregations over these rows.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FleetEvent"]


@dataclass(frozen=True)
class FleetEvent:
    """One inference request of one virtual user.

    ``target`` is what happened to the request: ``"device"`` (on-device
    inference, throttle and battery drain apply — latency includes any queue
    wait), ``"cloud"`` (offloaded to a cloud API; latency is network +
    service time, energy is the radio cost, and ``cloud_bytes`` counts the
    uplink payload), ``"shed"`` (dropped by the device-queue overflow
    policy) or ``"queued"`` (still waiting in the device queue when the
    horizon ended).  Every request carries exactly one target, which is the
    queue-conservation invariant the cloud benchmark audits.
    """

    user_id: int
    #: Virtual arrival time of the request, seconds from simulation start.
    time_s: float
    device_name: str
    model_name: str
    scenario: str
    backend: str
    #: Cloud region the user's offloads are served from.
    region: str
    target: str
    latency_ms: float
    #: Device-queue wait, ms (part of ``latency_ms`` for served requests).
    wait_ms: float
    energy_mj: float
    #: Thermal performance multiplier at execution time (1.0 for cloud).
    throttle_factor: float
    #: Battery level after the request, as a fraction of capacity.
    battery_fraction: float
    #: Battery charge this request consumed, in mAh.
    discharge_mah: float
    #: Cloud API category serving an offloaded request ("" for on-device).
    cloud_api: str
    #: Uplink payload bytes of an offloaded request (0 for on-device).
    cloud_bytes: int

    #: Store row kind these events persist as (see repro.store.schema).
    __row_kind__ = "fleet_events"

    @property
    def is_offloaded(self) -> bool:
        """Whether the request ran in the cloud instead of on the device."""
        return self.target == "cloud"
