"""The deterministic discrete-event fleet simulator.

:class:`FleetSimulator` evolves a :class:`~repro.fleet.population.FleetSpec`
population over virtual time: every user's requests arrive by their
scenario's arrival process, execute through the runtime's latency/energy
models with **stateful** per-device thermal heat-up/cool-down and battery
discharge carried across events, and route to cloud APIs when the
:class:`~repro.fleet.router.RoutingPolicy` triggers.

The event loop is evaluated **vectorised per user**:

* the nominal (cold) latency and power of a (device, model, backend) combo
  are computed once and reused for every event that hits it — the same
  batching idea as the sweep's cached compatibility checks;
* the thermal recurrence (heat decays over idle gaps, grows with busy time)
  is an :func:`~repro.analysis.stats.exponential_decay_scan` over the whole
  event vector;
* throttle factors, latencies, energies and battery trajectories are
  elementwise array expressions;
* the battery-saver routing switch is found with one ``cumsum`` +
  ``argmax`` (discharge is monotone, so the switch is one-way).

Because every user is materialised from a seed derived from their own
coordinates (:func:`~repro.fleet.population.derive_user_seed`), users are
embarrassingly parallel: the simulator fans user shards out on the shared
ordered pool (:func:`~repro.runtime.pool.iter_mapped_chunks`, thread or
process based) and the resulting event stream is **bit-identical for any
worker count, chunk size or pool kind**.  Streams ingest into a
:class:`~repro.store.store.ResultStore` via :meth:`FleetSimulator.run_to_store`
with O(1) result retention — the memory-flat path for million-event fleets.

The per-event reference loop in :mod:`repro.fleet.reference` implements the
same semantics through the stateful device objects one event at a time; the
fleet benchmark holds the two equivalent and measures the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.analysis.stats import exponential_decay_scan
from repro.devices.thermal import ThermalModel
from repro.fleet.events import FleetEvent
from repro.fleet.population import FleetSpec, UserPlan, VirtualUser
from repro.fleet.router import cloud_api_for_scenario
from repro.runtime.energy_model import EnergyModel
from repro.runtime.latency_model import LatencyModel
from repro.runtime.pool import iter_mapped_chunks

__all__ = ["UserTrace", "FleetSimulator"]

#: Lower clamp on the latency noise multiplier (mirrors the executor's
#: half-nominal floor on measured samples).
MIN_NOISE_FACTOR = 0.5


@dataclass
class UserTrace:
    """Columnar event trace of one simulated user (arrays in event order)."""

    user: VirtualUser
    times_s: np.ndarray
    latency_ms: np.ndarray
    energy_mj: np.ndarray
    throttle: np.ndarray
    battery_fraction: np.ndarray
    discharge_mah: np.ndarray
    offloaded: np.ndarray
    #: Cold single-inference latency of the user's combo (ms).
    nominal_ms: float
    #: Uplink payload bytes per offloaded request.
    payload_bytes: int
    #: Cloud API category serving this user's offloads.
    cloud_api: str

    @property
    def num_events(self) -> int:
        """Number of requests in the trace."""
        return int(self.times_s.size)

    @property
    def num_offloaded(self) -> int:
        """Number of requests served by the cloud API."""
        return int(self.offloaded.sum())

    def rows(self) -> Iterator[dict]:
        """Store rows (plain-scalar dicts) in event order."""
        user = self.user
        device_name = user.device.name
        model_name = user.graph.name
        scenario = user.scenario.name
        backend = user.backend.value
        for i in range(self.num_events):
            cloud = bool(self.offloaded[i])
            yield {
                "user_id": user.user_id,
                "time_s": float(self.times_s[i]),
                "device_name": device_name,
                "model_name": model_name,
                "scenario": scenario,
                "backend": backend,
                "target": "cloud" if cloud else "device",
                "latency_ms": float(self.latency_ms[i]),
                "energy_mj": float(self.energy_mj[i]),
                "throttle_factor": float(self.throttle[i]),
                "battery_fraction": float(self.battery_fraction[i]),
                "discharge_mah": float(self.discharge_mah[i]),
                "cloud_api": self.cloud_api if cloud else "",
                "cloud_bytes": self.payload_bytes if cloud else 0,
            }

    def events(self) -> Iterator[FleetEvent]:
        """The trace as :class:`FleetEvent` objects, in event order."""
        for row in self.rows():
            yield FleetEvent(**row)


class FleetSimulator:
    """Runs a :class:`FleetSpec` population over virtual time."""

    def __init__(self, spec: FleetSpec, *, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 use_processes: bool = False) -> None:
        self.spec = spec
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.use_processes = use_processes
        #: (device.name, backend, id(graph)) -> (nominal_ms, power_watts).
        self._combo_cache: dict = {}
        #: device.name -> (LatencyModel, EnergyModel).
        self._model_cache: dict = {}

    def __getstate__(self) -> dict:
        # Process-pool workers rebuild the caches: the graph-identity keys of
        # the parent process would be meaningless (or worse, collide) there.
        state = dict(self.__dict__)
        state["_combo_cache"] = {}
        state["_model_cache"] = {}
        return state

    # ------------------------------------------------------------------ #
    # Cached per-combo costs (the "batch through graph_latency_ms" hook)
    # ------------------------------------------------------------------ #
    def _combo_costs(self, user: VirtualUser) -> tuple[float, float]:
        """Nominal latency and power of the user's combo, computed once."""
        key = (user.device.name, user.backend, id(user.graph))
        cached = self._combo_cache.get(key)
        if cached is None:
            models = self._model_cache.get(user.device.name)
            if models is None:
                models = (LatencyModel(user.device), EnergyModel(user.device))
                self._model_cache[user.device.name] = models
            latency_model, energy_model = models
            cached = (
                latency_model.graph_latency_ms(user.graph, user.backend),
                energy_model.inference_power_watts(user.backend),
            )
            self._combo_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Vectorised per-user event loop
    # ------------------------------------------------------------------ #
    def simulate_user(self, user_id: int) -> UserTrace:
        """Evolve one user over the horizon; all arrays, no per-event Python."""
        user, plan = self.spec.materialize(user_id)
        policy = self.spec.policy
        nominal_ms, power_watts = self._combo_costs(user)
        payload_bytes = policy.cloud.payload_bytes(user.graph)
        cloud_api = cloud_api_for_scenario(user.scenario)
        n = plan.num_events

        times = plan.times
        latency = np.empty(n)
        energy = np.empty(n)
        throttle = np.ones(n)
        offloaded = np.zeros(n, dtype=bool)
        battery = user.device.battery
        capacity_mah = battery.capacity_mah

        if policy.offloads_for_capability(nominal_ms, user.scenario.deadline_ms):
            switch = 0  # the device can never meet the deadline: all cloud
        elif n == 0:
            switch = 0
        else:
            # --- on-device phase ---------------------------------------- #
            busy_s = nominal_ms / 1e3
            noise = np.maximum(plan.noise, MIN_NOISE_FACTOR)
            thermal = ThermalModel.for_device(user.device.is_dev_board,
                                              user.device.tier)
            gaps = np.empty(n)
            gaps[0] = times[0]
            np.subtract(times[1:], times[:-1], out=gaps[1:])
            gaps[1:] -= busy_s
            np.maximum(gaps, 0.0, out=gaps)

            heat_after = exponential_decay_scan(
                gaps / thermal.cooldown_tau_s, busy_s)
            # Heat at decision time (before this event's busy contribution);
            # clamp the scan's float residue when decayed heat is ~0.
            heat_before = np.maximum(heat_after - busy_s, 0.0)
            throttle_dev = thermal.throttle_factors(heat_before)
            lat_dev = nominal_ms / throttle_dev * noise
            energy_dev = power_watts * lat_dev

            # Battery-saver switch: discharge is monotone, so the first
            # event that *starts* under the threshold flips the rest of the
            # horizon to the cloud.
            mah_dev = energy_dev / (battery.voltage * 3600.0)
            drained_before = np.empty(n)
            drained_before[0] = 0.0
            np.cumsum(mah_dev[:-1], out=drained_before[1:])
            fraction_before = plan.start_battery_fraction - drained_before / capacity_mah
            # Clamp at empty before comparing: an over-drained pack reads 0,
            # exactly like BatteryState.fraction in the reference loop (with
            # threshold 0.0 — "saver disabled" — neither loop may offload).
            np.maximum(fraction_before, 0.0, out=fraction_before)
            below = fraction_before < policy.battery_saver_threshold
            switch = int(np.argmax(below)) if below.any() else n

            latency[:switch] = lat_dev[:switch]
            energy[:switch] = energy_dev[:switch]
            throttle[:switch] = throttle_dev[:switch]

        # --- cloud phase ------------------------------------------------ #
        if switch < n:
            offloaded[switch:] = True
            lat_cloud = policy.cloud.latency_ms(plan.rtt_ms[switch:],
                                                payload_bytes)
            latency[switch:] = lat_cloud
            energy[switch:] = policy.cloud.energy_mj(lat_cloud)

        # --- battery trajectory ----------------------------------------- #
        discharge_mah = energy / (battery.voltage * 3600.0)
        fraction = plan.start_battery_fraction - np.cumsum(discharge_mah) / capacity_mah
        np.maximum(fraction, 0.0, out=fraction)  # empty pack clamps, drain log keeps counting

        return UserTrace(
            user=user,
            times_s=times,
            latency_ms=latency,
            energy_mj=energy,
            throttle=throttle,
            battery_fraction=fraction,
            discharge_mah=discharge_mah,
            offloaded=offloaded,
            nominal_ms=nominal_ms,
            payload_bytes=payload_bytes,
            cloud_api=cloud_api,
        )

    # ------------------------------------------------------------------ #
    # Fan-out
    # ------------------------------------------------------------------ #
    def _simulate_chunk(self, user_ids: Sequence[int]) -> list[UserTrace]:
        return [self.simulate_user(user_id) for user_id in user_ids]

    def iter_traces(self) -> Iterator[UserTrace]:
        """Stream every user's trace in user-id order.

        Fans user shards out on the shared ordered pool; per-user seeds make
        the stream bit-identical for any worker count, chunk size or pool
        kind.  Nothing is retained after the caller consumes a trace.
        """
        yield from iter_mapped_chunks(
            self._simulate_chunk,
            range(self.spec.num_users),
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            use_processes=self.use_processes,
        )

    def collect(self) -> list[UserTrace]:
        """Every trace in user order (for in-memory analysis at small scales)."""
        return list(self.iter_traces())

    def run_to_store(self, store, *, rows_per_segment: int = 8192) -> int:
        """Stream the whole simulation into a results store; returns the row count.

        ``store`` is a :class:`~repro.store.store.ResultStore` (or a path to
        create one at).  Events are appended in deterministic (user, time)
        order and committed in checksummed ``fleet_events`` segments, so a
        crash loses at most the trailing partial segment; memory stays flat
        in the number of events.
        """
        from repro.store.schema import kind_for
        from repro.store.store import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        kind = kind_for("fleet_events")
        with store.writer(rows_per_segment=rows_per_segment) as writer:
            for trace in self.iter_traces():
                for row in trace.rows():
                    writer.append_row(kind, row)
        return writer.rows_committed
