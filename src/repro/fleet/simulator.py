"""The deterministic discrete-event fleet simulator.

:class:`FleetSimulator` evolves a :class:`~repro.fleet.population.FleetSpec`
population over virtual time: every user's requests arrive by their
scenario's arrival process, execute through the runtime's latency/energy
models with **stateful** per-device thermal heat-up/cool-down and battery
discharge carried across events, queue behind each other on the device (a
single-server FIFO with the :class:`~repro.fleet.queueing.QueuePolicy`'s
overflow cap), and route to cloud APIs when the
:class:`~repro.fleet.router.RoutingPolicy` triggers.

The event loop is evaluated **vectorised per user**:

* the nominal (cold) latency and power of a (device, model, backend) combo
  are computed once and reused for every event that hits it — the same
  batching idea as the sweep's cached compatibility checks;
* the horizon splits into *recharge spans* at the
  :class:`~repro.devices.battery.RechargeSchedule` boundaries (battery back
  to the schedule level, SoC cold after hours on the charger, queue
  drained); within a span the thermal recurrence is an
  :func:`~repro.analysis.stats.exponential_decay_scan` over the event
  vector, the battery-saver switch one ``cumsum`` + ``argmax``;
* spans where the device demonstrably cannot congest (worst-case execution
  shorter than every arrival gap) take that fully-array fast path; spans
  that *can* congest run an exact sequential queue recursion (Lindley with
  shedding) over precomputed arrays — still far cheaper than the per-event
  reference, which re-evaluates the cost models for every request;
* offloaded requests read their cloud service time from an optional frozen
  per-(region, API, time-bin) service table — the hook the
  :mod:`repro.cloud` interference simulator uses to model shared-capacity
  congestion deterministically.

Because every user is materialised from a seed derived from their own
coordinates (:func:`~repro.fleet.population.derive_user_seed`), users are
embarrassingly parallel: the simulator fans user shards out on the shared
ordered pool (:func:`~repro.runtime.pool.iter_mapped_chunks`, thread or
process based) and the resulting event stream is **bit-identical for any
worker count, chunk size or pool kind**.  Streams ingest into a
:class:`~repro.store.store.ResultStore` via :meth:`FleetSimulator.run_to_store`
with O(1) result retention — the memory-flat path for million-event fleets.

The per-event reference loop in :mod:`repro.fleet.reference` implements the
same semantics through the stateful device objects one event at a time; the
fleet and cloud benchmarks hold the two equivalent and measure the speedup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro import obs
from repro.analysis.stats import exponential_decay_scan
from repro.devices.thermal import ThermalModel
from repro.fleet.events import FleetEvent
from repro.fleet.population import FleetSpec, UserPlan, VirtualUser
from repro.fleet.queueing import (ROUTE_CLOUD, ROUTE_DEVICE, ROUTE_QUEUED,
                                  ROUTE_SHED, ROUTE_TARGETS)
from repro.fleet.router import cloud_api_for_scenario
from repro.runtime.energy_model import EnergyModel
from repro.runtime.latency_model import LatencyModel
from repro.runtime.pool import iter_mapped_chunks

__all__ = ["UserTrace", "FleetSimulator"]

#: Lower clamp on the latency noise multiplier (mirrors the executor's
#: half-nominal floor on measured samples).
MIN_NOISE_FACTOR = 0.5


@dataclass
class UserTrace:
    """Columnar event trace of one simulated user (arrays in event order)."""

    user: VirtualUser
    times_s: np.ndarray
    latency_ms: np.ndarray
    energy_mj: np.ndarray
    throttle: np.ndarray
    battery_fraction: np.ndarray
    discharge_mah: np.ndarray
    #: Queue wait per event, ms (0 where the request never queued).
    wait_ms: np.ndarray
    #: Route code per event (see :mod:`repro.fleet.queueing`).
    route: np.ndarray
    #: Cold single-inference latency of the user's combo (ms).
    nominal_ms: float
    #: Uplink payload bytes per offloaded request.
    payload_bytes: int
    #: Cloud API category serving this user's offloads.
    cloud_api: str

    @property
    def num_events(self) -> int:
        """Number of requests in the trace."""
        return int(self.times_s.size)

    @property
    def offloaded(self) -> np.ndarray:
        """Boolean mask of cloud-served requests (kept for PR 3 callers)."""
        return self.route == ROUTE_CLOUD

    @property
    def num_offloaded(self) -> int:
        """Number of requests served by the cloud API."""
        return int((self.route == ROUTE_CLOUD).sum())

    @property
    def num_shed(self) -> int:
        """Requests dropped by the device-queue overflow policy."""
        return int((self.route == ROUTE_SHED).sum())

    @property
    def num_queued(self) -> int:
        """Requests still waiting in the device queue at the horizon."""
        return int((self.route == ROUTE_QUEUED).sum())

    @property
    def num_on_device(self) -> int:
        """Requests served by on-device inference."""
        return int((self.route == ROUTE_DEVICE).sum())

    def route_counts(self) -> dict:
        """Per-route event counts; their sum equals ``num_events`` exactly."""
        return {target: int((self.route == code).sum())
                for code, target in enumerate(ROUTE_TARGETS)}

    def rows(self) -> Iterator[dict]:
        """Store rows (plain-scalar dicts) in event order."""
        user = self.user
        device_name = user.device.name
        model_name = user.graph.name
        scenario = user.scenario.name
        backend = user.backend.value
        region = user.region
        for i in range(self.num_events):
            target = ROUTE_TARGETS[int(self.route[i])]
            cloud = target == "cloud"
            yield {
                "user_id": user.user_id,
                "time_s": float(self.times_s[i]),
                "device_name": device_name,
                "model_name": model_name,
                "scenario": scenario,
                "backend": backend,
                "region": region,
                "target": target,
                "latency_ms": float(self.latency_ms[i]),
                "wait_ms": float(self.wait_ms[i]),
                "energy_mj": float(self.energy_mj[i]),
                "throttle_factor": float(self.throttle[i]),
                "battery_fraction": float(self.battery_fraction[i]),
                "discharge_mah": float(self.discharge_mah[i]),
                "cloud_api": self.cloud_api if cloud else "",
                "cloud_bytes": self.payload_bytes if cloud else 0,
            }

    def column_batch(self) -> dict[str, np.ndarray]:
        """The trace as one ``fleet_events`` column batch (event order).

        The batch-native ingestion payload for
        :meth:`~repro.store.writer.StoreWriter.append_batch`: the per-event
        float arrays are handed over as-is (no pivot through dicts, no
        per-event Python scalars) and the per-user constants broadcast into
        string/int columns in a handful of array ops.  Persisted values are
        exactly those of :meth:`rows` — the two paths are interchangeable
        row for row.
        """
        user = self.user
        n = self.num_events
        cloud = self.route == ROUTE_CLOUD
        # Width matters: a trace with no offloads must not widen the packed
        # cloud_api column to the unused API name's length (the row path's
        # per-value arrays never would).
        cloud_api = self.cloud_api if cloud.any() else ""
        batch = {
            "user_id": np.full(n, user.user_id, dtype=np.int64),
            "time_s": self.times_s,
            "device_name": np.full(n, user.device.name),
            "model_name": np.full(n, user.graph.name),
            "scenario": np.full(n, user.scenario.name),
            "backend": np.full(n, user.backend.value),
            "region": np.full(n, user.region),
            "target": np.array(ROUTE_TARGETS)[self.route],
            "latency_ms": self.latency_ms,
            "wait_ms": self.wait_ms,
            "energy_mj": self.energy_mj,
            "throttle_factor": self.throttle,
            "battery_fraction": self.battery_fraction,
            "discharge_mah": self.discharge_mah,
            "cloud_api": np.where(cloud, cloud_api, ""),
            "cloud_bytes": np.where(cloud, int(self.payload_bytes),
                                    0).astype(np.int64),
        }
        # Freeze the arrays built here (nobody else holds a reference), so
        # the writer's no-alias copy is skipped; the trace's own field
        # arrays stay writable and get the defensive copy instead.
        for name in ("user_id", "device_name", "model_name", "scenario",
                     "backend", "region", "target", "cloud_api",
                     "cloud_bytes"):
            batch[name].setflags(write=False)
        return batch

    def events(self) -> Iterator[FleetEvent]:
        """The trace as :class:`FleetEvent` objects, in event order."""
        for row in self.rows():
            yield FleetEvent(**row)


class FleetSimulator:
    """Runs a :class:`FleetSpec` population over virtual time.

    ``service_table`` (optional) is a frozen cloud service-time lookup with a
    ``service_for(region, api, times_s) -> ndarray`` method — when present,
    offloaded requests read their service time from it instead of the routing
    policy's constant; see :mod:`repro.cloud.interference`.
    """

    def __init__(self, spec: FleetSpec, *, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 use_processes: bool = False,
                 service_table=None) -> None:
        self.spec = spec
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.use_processes = use_processes
        self.service_table = service_table
        #: (device.name, backend, id(graph)) -> (nominal_ms, power_watts).
        self._combo_cache: dict = {}
        #: device.name -> (LatencyModel, EnergyModel).
        self._model_cache: dict = {}

    def __getstate__(self) -> dict:
        # Process-pool workers rebuild the caches: the graph-identity keys of
        # the parent process would be meaningless (or worse, collide) there.
        state = dict(self.__dict__)
        state["_combo_cache"] = {}
        state["_model_cache"] = {}
        return state

    # ------------------------------------------------------------------ #
    # Cached per-combo costs (the "batch through graph_latency_ms" hook)
    # ------------------------------------------------------------------ #
    def _combo_costs(self, user: VirtualUser) -> tuple[float, float]:
        """Nominal latency and power of the user's combo, computed once."""
        key = (user.device.name, user.backend, id(user.graph))
        cached = self._combo_cache.get(key)
        if cached is None:
            models = self._model_cache.get(user.device.name)
            if models is None:
                models = (LatencyModel(user.device), EnergyModel(user.device))
                self._model_cache[user.device.name] = models
            latency_model, energy_model = models
            cached = (
                latency_model.graph_latency_ms(user.graph, user.backend),
                energy_model.inference_power_watts(user.backend),
            )
            self._combo_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Recharge spans
    # ------------------------------------------------------------------ #
    def _span_slices(self, times: np.ndarray,
                     start_fraction: float) -> list[tuple[int, int, float]]:
        """``(lo, hi, span_start_fraction)`` event slices between recharges."""
        recharge = self.spec.recharge
        if recharge is None:
            return [(0, times.size, start_fraction)]
        boundaries = recharge.boundaries(self.spec.horizon_s)
        if not boundaries.size:
            return [(0, times.size, start_fraction)]
        cuts = np.searchsorted(times, boundaries, side="left")
        edges = [0, *[int(c) for c in cuts], times.size]
        return [(edges[k], edges[k + 1],
                 start_fraction if k == 0 else recharge.level)
                for k in range(len(edges) - 1)]

    # ------------------------------------------------------------------ #
    # Vectorised per-user event loop
    # ------------------------------------------------------------------ #
    def simulate_user(self, user_id: int) -> UserTrace:
        """Evolve one user over the horizon; arrays throughout, a sequential
        queue recursion only where congestion is actually possible."""
        user, plan = self.spec.materialize(user_id)
        policy = self.spec.policy
        nominal_ms, power_watts = self._combo_costs(user)
        payload_bytes = policy.cloud.payload_bytes(user.graph)
        cloud_api = cloud_api_for_scenario(user.scenario)
        n = plan.num_events
        times = plan.times

        if self.service_table is not None:
            service_ms = self.service_table.service_for(
                user.region, cloud_api, times)
        else:
            service_ms = np.full(n, policy.cloud.service_ms)

        latency = np.zeros(n)
        energy = np.zeros(n)
        throttle = np.ones(n)
        wait_ms = np.zeros(n)
        route = np.full(n, ROUTE_DEVICE, dtype=np.int64)
        battery = user.device.battery
        capacity_mah = battery.capacity_mah
        spans = self._span_slices(times, plan.start_battery_fraction)

        if policy.offloads_for_capability(nominal_ms, user.scenario.deadline_ms):
            # The device can never meet the deadline even cold: all cloud.
            route[:] = ROUTE_CLOUD
            lat_cloud = policy.cloud.latency_ms(plan.rtt_ms, payload_bytes,
                                                service_ms)
            latency[:] = lat_cloud
            energy[:] = policy.cloud.energy_mj(lat_cloud)
        elif n:
            noise = np.maximum(plan.noise, MIN_NOISE_FACTOR)
            thermal = ThermalModel.for_device(user.device.is_dev_board,
                                              user.device.tier)
            busy_s = nominal_ms / 1e3
            # Worst-case execution time: throttled to the floor, noisiest
            # draw of the user's whole plan.  If even that fits inside the
            # smallest arrival gap, the queue can never form.
            max_exec_s = busy_s / thermal.throttle_floor * float(noise.max())
            for lo, hi, span_fraction in spans:
                if lo == hi:
                    continue
                span = slice(lo, hi)
                gaps = np.diff(times[span])
                congestible = gaps.size > 0 and float(gaps.min()) < max_exec_s
                args = (user, plan, span, span_fraction, nominal_ms,
                        power_watts, payload_bytes, noise, service_ms,
                        thermal, latency, energy, throttle, wait_ms, route)
                if congestible:
                    self._simulate_span_queued(*args)
                else:
                    self._simulate_span_fast(*args)

        # --- battery trajectory (per recharge span) ---------------------- #
        discharge_mah = energy / (battery.voltage * 3600.0)
        fraction = np.empty(n)
        for lo, hi, span_fraction in spans:
            if lo == hi:
                continue
            fraction[lo:hi] = span_fraction \
                - np.cumsum(discharge_mah[lo:hi]) / capacity_mah
        np.maximum(fraction, 0.0, out=fraction)  # empty pack clamps

        return UserTrace(
            user=user,
            times_s=times,
            latency_ms=latency,
            energy_mj=energy,
            throttle=throttle,
            battery_fraction=fraction,
            discharge_mah=discharge_mah,
            wait_ms=wait_ms,
            route=route,
            nominal_ms=nominal_ms,
            payload_bytes=payload_bytes,
            cloud_api=cloud_api,
        )

    def _simulate_span_fast(self, user, plan: UserPlan, span: slice,
                            span_fraction: float, nominal_ms: float,
                            power_watts: float, payload_bytes: int,
                            noise: np.ndarray, service_ms: np.ndarray,
                            thermal: ThermalModel, latency, energy, throttle,
                            wait_ms, route) -> None:
        """Congestion-free span: the PR 3 array path (no queue, no sheds)."""
        policy = self.spec.policy
        times = plan.times[span]
        n = times.size
        battery = user.device.battery
        busy_s = nominal_ms / 1e3

        # --- on-device phase ------------------------------------------- #
        gaps = np.empty(n)
        gaps[0] = times[0]
        np.subtract(times[1:], times[:-1], out=gaps[1:])
        gaps[1:] -= busy_s
        np.maximum(gaps, 0.0, out=gaps)

        heat_after = exponential_decay_scan(
            gaps / thermal.cooldown_tau_s, busy_s)
        # Heat at decision time (before this event's busy contribution);
        # clamp the scan's float residue when decayed heat is ~0.
        heat_before = np.maximum(heat_after - busy_s, 0.0)
        throttle_dev = thermal.throttle_factors(heat_before)
        lat_dev = nominal_ms / throttle_dev * noise[span]
        energy_dev = power_watts * lat_dev

        # Battery-saver switch: discharge is monotone within a span, so the
        # first event that *starts* under the threshold flips the rest of
        # the span to the cloud.
        mah_dev = energy_dev / (battery.voltage * 3600.0)
        drained_before = np.empty(n)
        drained_before[0] = 0.0
        np.cumsum(mah_dev[:-1], out=drained_before[1:])
        fraction_before = span_fraction - drained_before / battery.capacity_mah
        # Clamp at empty before comparing: an over-drained pack reads 0,
        # exactly like BatteryState.fraction in the reference loop (with
        # threshold 0.0 — "saver disabled" — neither loop may offload).
        np.maximum(fraction_before, 0.0, out=fraction_before)
        below = fraction_before < policy.battery_saver_threshold
        switch = int(np.argmax(below)) if below.any() else n

        lo = span.start
        latency[lo:lo + switch] = lat_dev[:switch]
        energy[lo:lo + switch] = energy_dev[:switch]
        throttle[lo:lo + switch] = throttle_dev[:switch]

        # --- cloud phase ------------------------------------------------ #
        if switch < n:
            tail = slice(lo + switch, span.stop)
            route[tail] = ROUTE_CLOUD
            lat_cloud = policy.cloud.latency_ms(
                plan.rtt_ms[tail], payload_bytes, service_ms[tail])
            latency[tail] = lat_cloud
            energy[tail] = policy.cloud.energy_mj(lat_cloud)

    def _simulate_span_queued(self, user, plan: UserPlan, span: slice,
                              span_fraction: float, nominal_ms: float,
                              power_watts: float, payload_bytes: int,
                              noise: np.ndarray, service_ms: np.ndarray,
                              thermal: ThermalModel, latency, energy,
                              throttle, wait_ms, route) -> None:
        """Congestible span: exact sequential queue recursion.

        Single-server FIFO over the *actual* (throttled, noisy) execution
        time; thermal idle is measured from the nominal completion
        (PR 3's convention), heat accumulates in nominal busy units; the
        battery saver is checked per event against the running drain.  The
        per-event arithmetic matches :func:`~repro.fleet.reference.
        simulate_user_naive` operation for operation.
        """
        policy = self.spec.policy
        cloud = policy.cloud
        queue = policy.queue
        battery = user.device.battery
        voltage_hours = battery.voltage * 3600.0
        capacity_mah = battery.capacity_mah
        threshold = policy.battery_saver_threshold
        max_wait_s = queue.max_wait_s
        overflow_to_cloud = queue.overflows_to_cloud
        horizon_s = self.spec.horizon_s
        radio = cloud.radio_power_watts
        tau = thermal.cooldown_tau_s
        busy_s = nominal_ms / 1e3

        times = plan.times
        rtt = plan.rtt_ms
        heat = 0.0
        completion = -math.inf       # actual completion of the last served
        nominal_end = -math.inf      # nominal completion (thermal clock)
        drained_mah = 0.0

        for i in range(span.start, span.stop):
            t = float(times[i])
            fraction_now = max(span_fraction - drained_mah / capacity_mah, 0.0)
            if fraction_now < threshold:
                lat = cloud.latency_ms(float(rtt[i]), payload_bytes,
                                       float(service_ms[i]))
                route[i] = ROUTE_CLOUD
                latency[i] = lat
                en = radio * lat
            else:
                start = t if completion < t else completion
                wait_s = start - t
                if wait_s > max_wait_s:
                    if overflow_to_cloud:
                        lat = cloud.latency_ms(float(rtt[i]), payload_bytes,
                                               float(service_ms[i]))
                        route[i] = ROUTE_CLOUD
                        latency[i] = lat
                        en = radio * lat
                    else:
                        route[i] = ROUTE_SHED
                        wait_ms[i] = wait_s * 1e3
                        continue
                elif start >= horizon_s:
                    route[i] = ROUTE_QUEUED
                    wait_ms[i] = (horizon_s - t) * 1e3
                    continue
                else:
                    if nominal_end > -math.inf:
                        idle = max(0.0, start - nominal_end)
                        heat *= math.exp(-idle / tau)
                    factor = thermal.throttle_factor(heat)
                    exec_ms = nominal_ms / factor * float(noise[i])
                    heat += busy_s
                    nominal_end = start + busy_s
                    completion = start + exec_ms / 1e3
                    throttle[i] = factor
                    wait_ms[i] = wait_s * 1e3
                    latency[i] = wait_s * 1e3 + exec_ms
                    en = power_watts * exec_ms
            energy[i] = en
            drained_mah += en / voltage_hours

    # ------------------------------------------------------------------ #
    # Fan-out
    # ------------------------------------------------------------------ #
    def _simulate_chunk(self, user_ids: Sequence[int]) -> list[UserTrace]:
        collector = obs.get_collector()
        if collector is None:
            # Disabled-mode hot path: one check per chunk, nothing else.
            return [self.simulate_user(user_id) for user_id in user_ids]
        with collector.span("fleet.simulate_chunk", items=len(user_ids)):
            traces = [self.simulate_user(user_id) for user_id in user_ids]
        # Per-trace totals sum exactly, so chunking/pool kind can't move
        # them — the deterministic class.
        collector.count("fleet.users_simulated", len(traces))
        collector.count("fleet.events_simulated",
                        sum(trace.num_events for trace in traces))
        collector.count("fleet.events_offloaded",
                        sum(trace.num_offloaded for trace in traces))
        collector.count("fleet.events_shed",
                        sum(trace.num_shed for trace in traces))
        return traces

    def iter_traces(self, user_range: Optional[tuple[int, int]] = None
                    ) -> Iterator[UserTrace]:
        """Stream users' traces in user-id order.

        Fans user shards out on the shared ordered pool; per-user seeds make
        the stream bit-identical for any worker count, chunk size or pool
        kind.  Nothing is retained after the caller consumes a trace.

        ``user_range`` restricts the stream to the half-open id range
        ``[lo, hi)`` — the campaign coordinator's sharding hook.  Because
        every user materialises from a seed derived from their own id,
        the traces of a range are bit-identical to the same ids' slice of
        the full stream.
        """
        if user_range is None:
            lo, hi = 0, self.spec.num_users
        else:
            lo, hi = user_range
            if not 0 <= lo <= hi <= self.spec.num_users:
                raise ValueError(
                    f"user_range {user_range!r} outside "
                    f"[0, {self.spec.num_users}]")
        yield from iter_mapped_chunks(
            self._simulate_chunk,
            range(lo, hi),
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            use_processes=self.use_processes,
        )

    def collect(self) -> list[UserTrace]:
        """Every trace in user order (for in-memory analysis at small scales)."""
        return list(self.iter_traces())

    def run_to_store(self, store, *, rows_per_segment: int = 8192,
                     user_range: Optional[tuple[int, int]] = None) -> int:
        """Stream the whole simulation into a results store; returns the row count.

        ``store`` is a :class:`~repro.store.store.ResultStore` (or a path to
        create one at).  Each trace's column arrays are appended as one
        batch (:meth:`UserTrace.column_batch` — no array -> dict -> array
        round trip) in deterministic (user, time) order and committed in
        checksummed columnar ``fleet_events`` segments, so a crash loses at
        most the trailing partial segment; memory stays flat in the number
        of events.  ``user_range`` restricts the run to a half-open user-id
        range (see :meth:`iter_traces`).  ``benchmarks/test_bench_ingest.py``
        holds this path >= 5x faster end-to-end than the per-row ingestion
        it replaced, with bit-identical query results.
        """
        from repro.store.schema import kind_for
        from repro.store.store import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        kind = kind_for("fleet_events")
        with obs.span("fleet.run_to_store"):
            with store.writer(rows_per_segment=rows_per_segment) as writer:
                for trace in self.iter_traces(user_range):
                    writer.append_batch(kind, trace.column_batch())
        return writer.rows_committed
