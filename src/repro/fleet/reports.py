"""Fleet-level reports, served from the results store.

Once a simulation has streamed its ``fleet_events`` rows into a
:class:`~repro.store.store.ResultStore`, the campaign-level questions the
paper's framing asks — what does latency look like under sustained load,
what does a day of DNN traffic cost in battery, how much traffic leaves the
device for cloud APIs — are aggregations over those rows.  Everything here
evaluates through the store's vectorised query engine (predicate pushdown,
column pruning), so the reports stay cheap on million-event campaigns.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.analysis.ecdf import Ecdf
from repro.fleet.queueing import ROUTE_TARGETS

__all__ = ["tail_latency_table", "battery_drain_ecdf", "offload_summary",
           "queue_summary"]

#: Percentile columns of the tail-latency table.
TAIL_PERCENTILES = ("p50", "p90", "p99", "p999")


def tail_latency_table(store, *, group_by: Union[str, Sequence[str]] = "device_name",
                       target: Optional[str] = "device") -> list[dict]:
    """Tail-latency percentiles under load, grouped as requested.

    ``target`` filters to on-device (``"device"``), offloaded (``"cloud"``)
    or all (``None``) requests.  Each output row carries the group key
    columns, the event count and the :data:`TAIL_PERCENTILES` of
    ``latency_ms`` — the fleet's Fig. 9 analogue with throttling and
    routing effects included.
    """
    keys = (group_by,) if isinstance(group_by, str) else tuple(group_by)
    query = store.query("fleet_events")
    if target is not None:
        query.where(target=target)
    query.group_by(*keys).agg(
        events=("latency_ms", "count"),
        **{f"{name}_ms": ("latency_ms", name) for name in TAIL_PERCENTILES},
    )
    return query.aggregate()


def battery_drain_ecdf(store) -> Ecdf:
    """ECDF of per-user total battery discharge (mAh) over the horizon.

    The fleet analogue of Table 4: instead of one scenario cost per model,
    the distribution of what a simulated day actually drained per user.
    """
    rows = (store.query("fleet_events")
            .group_by("user_id")
            .agg(total_mah=("discharge_mah", "sum"))
            .aggregate())
    if not rows:
        raise ValueError("store holds no fleet_events rows")
    return Ecdf.from_samples(row["total_mah"] for row in rows)


def offload_summary(store) -> dict:
    """Cloud-offload traffic volume: how much left the device, and where to.

    Returns total/offloaded event counts, the offload fraction, total uplink
    bytes, and a per-API breakdown (requests + bytes, sorted by request
    count) — the fleet's Fig. 15 analogue measured in traffic rather than
    app counts.
    """
    total = store.query("fleet_events").count()
    grouped = (store.query("fleet_events")
               .where(target="cloud")
               .group_by("cloud_api")
               .agg(requests=("latency_ms", "count"),
                    bytes=("cloud_bytes", "sum"))
               .aggregate())
    by_api = {
        row["cloud_api"]: {"requests": int(row["requests"]),
                           "bytes": int(row["bytes"])}
        for row in sorted(grouped, key=lambda r: -int(r["requests"]))
    }
    offloaded = sum(entry["requests"] for entry in by_api.values())
    return {
        "events": int(total),
        "offloaded": int(offloaded),
        "offload_fraction": (offloaded / total) if total else 0.0,
        "uplink_bytes": sum(entry["bytes"] for entry in by_api.values()),
        "by_api": by_api,
    }


def queue_summary(store, expected_arrived: Optional[int] = None) -> dict:
    """Device-queue back-pressure accounting over a persisted fleet run.

    Returns the per-target event counts (``device`` / ``cloud`` / ``shed`` /
    ``queued``), the total arrivals, whether the queue-conservation
    invariant ``arrived == sum(targets)`` holds, and the wait-time
    percentiles of the served on-device requests.

    ``expected_arrived`` makes the conservation check a genuine audit: pass
    an arrival count from *outside* the store (the simulator's streamed
    event total, e.g. ``InterferenceResult.arrived``) and a dropped or
    duplicated row shows up as ``conserved=False``.  Without it the check
    degenerates to comparing the store against itself — both sides count
    the same rows — and can only ever confirm internal consistency.
    """
    arrived = (expected_arrived if expected_arrived is not None
               else store.query("fleet_events").count())
    grouped = (store.query("fleet_events")
               .group_by("target")
               .agg(events=("latency_ms", "count"))
               .aggregate())
    by_target = {target: 0 for target in ROUTE_TARGETS}
    for row in grouped:
        by_target[row["target"]] = int(row["events"])
    waits = (store.query("fleet_events")
             .where(target="device")
             .agg(p50=("wait_ms", "p50"), p99=("wait_ms", "p99"),
                  max=("wait_ms", "max"))
             .aggregate())
    return {
        "arrived": int(arrived),
        "by_target": by_target,
        "conserved": int(arrived) == sum(by_target.values()),
        "wait_ms": waits,
    }
