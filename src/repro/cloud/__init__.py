"""Shared-capacity cloud serving: deterministic cross-user interference.

The fleet simulator (PR 3) offloads to cloud APIs at a fixed service time;
at the north star's scale — millions of users — those APIs are a shared
resource whose latency depends on aggregate load.  This package closes the
loop deterministically:

* :mod:`~repro.cloud.capacity` — :class:`CloudRegion` / :class:`ApiCapacity`
  / :class:`CapacityModel`: a region-sharded M/M/c-style load -> service-time
  curve per Fig. 15 API category;
* :mod:`~repro.cloud.load` — :class:`LoadProfile`: time-binned regional
  offload demand, mergeable by exact integer addition (bit-identical for
  any fan-out), persisted as ``fleet_load`` store rows;
  :class:`ServiceTable`: the frozen per-(region, API, bin) service times the
  event loops read;
* :mod:`~repro.cloud.interference` — :class:`InterferenceSimulator`: pass 1
  aggregates demand at nominal service times, subsequent passes re-simulate
  against the frozen table of the previous iterate, damped to a fixed point
  with a convergence gate, then a final definitive pass lands in the results
  store.

See the README's "Cloud capacity" section for a runnable example and
``benchmarks/test_bench_cloud.py`` for the enforced acceptance gates.
"""

from repro.cloud.capacity import (REFERENCE_REGIONS, ApiCapacity,
                                  CapacityModel, CloudRegion)
from repro.cloud.interference import (InterferenceConfig, InterferenceResult,
                                      InterferenceSimulator)
from repro.cloud.load import (FIG15_API_NAMES, LoadCell, LoadProfile,
                              ServiceTable, load_report)

__all__ = [
    "CloudRegion",
    "ApiCapacity",
    "CapacityModel",
    "REFERENCE_REGIONS",
    "LoadCell",
    "LoadProfile",
    "ServiceTable",
    "FIG15_API_NAMES",
    "InterferenceConfig",
    "InterferenceResult",
    "InterferenceSimulator",
    "load_report",
]
