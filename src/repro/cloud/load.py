"""Time-binned regional cloud load: the fleet's offload demand, aggregated.

A :class:`LoadProfile` counts the offloaded requests of a fleet simulation
into a dense ``[region, API category, time bin]`` integer grid.  Counts are
**mergeable by pure addition**: integer sums are exact and order-independent,
so a profile built from per-user traces is bit-identical for any worker
count, chunk size or pool kind — the property the two-pass interference
simulator's determinism rests on.

Profiles persist as ``fleet_load`` store rows (one :class:`LoadCell` per
non-empty grid cell), and :meth:`LoadProfile.from_store` rebuilds a profile
by — again — pure addition over the committed rows, so splitting the rows
across many segments, compacting them, or ingesting them from several
writers never changes the reconstructed profile.

A :class:`ServiceTable` is the frozen read side: the capacity model's
service time per (region, API, bin), looked up per event by both fleet event
loops via :meth:`ServiceTable.service_for`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.analysis.stats import time_bin_indices
from repro.android.cloud_apis import CLOUD_APIS
from repro.fleet.queueing import ROUTE_CLOUD

__all__ = ["LoadCell", "LoadProfile", "ServiceTable", "FIG15_API_NAMES",
           "load_report"]

#: Canonical Fig. 15 API category order (the profile's API axis).
FIG15_API_NAMES: tuple[str, ...] = tuple(api.name for api in CLOUD_APIS)


def _axis_indices(names: np.ndarray, axis: Sequence[str],
                  label: str) -> np.ndarray:
    """Map an array of axis names to their integer indices, vectorised.

    A ``searchsorted`` over the sorted axis replaces a per-row dict lookup;
    an unknown name raises :class:`KeyError` naming it, matching what the
    scalar ``dict[name]`` lookup used to raise.
    """
    axis_array = np.asarray(axis, dtype=np.str_)
    order = np.argsort(axis_array)
    positions = np.searchsorted(axis_array[order], names)
    positions = np.clip(positions, 0, axis_array.size - 1)
    indices = order[positions]
    bad = axis_array[indices] != names
    if bad.any():
        raise KeyError(f"unknown {label} {str(names[bad][0])!r}")
    return indices


@dataclass(frozen=True)
class LoadCell:
    """One non-empty (region, API, time-bin) cell of a load profile."""

    region: str
    cloud_api: str
    bin_index: int
    bin_start_s: float
    bin_seconds: float
    requests: int
    payload_bytes: int

    #: Store row kind these cells persist as (see repro.store.schema).
    __row_kind__ = "fleet_load"


class LoadProfile:
    """Offload demand over time, per region and Fig. 15 API category."""

    def __init__(self, regions: Sequence[str], horizon_s: float,
                 bin_seconds: float,
                 apis: Sequence[str] = FIG15_API_NAMES) -> None:
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if not regions:
            raise ValueError("regions must be non-empty")
        self.regions = tuple(regions)
        self.apis = tuple(apis)
        self.horizon_s = float(horizon_s)
        self.bin_seconds = float(bin_seconds)
        self.num_bins = int(np.ceil(horizon_s / bin_seconds))
        shape = (len(self.regions), len(self.apis), self.num_bins)
        self.requests = np.zeros(shape, dtype=np.int64)
        self.payload_bytes = np.zeros(shape, dtype=np.int64)
        self._region_index = {name: i for i, name in enumerate(self.regions)}
        self._api_index = {name: i for i, name in enumerate(self.apis)}

    # ------------------------------------------------------------------ #
    # Accumulation (exact integer addition — order never matters)
    # ------------------------------------------------------------------ #
    def bin_indices(self, times_s: np.ndarray) -> np.ndarray:
        """Time-bin index of each event time (clipped to the last bin)."""
        return time_bin_indices(times_s, self.bin_seconds, self.num_bins)

    def add_trace(self, trace) -> int:
        """Accumulate one :class:`~repro.fleet.simulator.UserTrace`'s offloads.

        Returns the number of requests added.  Only cloud-served events
        count — shed and queued requests never reached the API.
        """
        mask = trace.route == ROUTE_CLOUD
        count = int(mask.sum())
        if not count:
            return 0
        r = self._region_index[trace.user.region]
        a = self._api_index[trace.cloud_api]
        bins = np.bincount(self.bin_indices(trace.times_s[mask]),
                           minlength=self.num_bins).astype(np.int64)
        self.requests[r, a] += bins
        self.payload_bytes[r, a] += bins * int(trace.payload_bytes)
        return count

    def merge(self, other: "LoadProfile") -> "LoadProfile":
        """Add another profile of the same shape into this one (exact)."""
        if (self.regions, self.apis, self.num_bins,
                self.bin_seconds) != (other.regions, other.apis,
                                      other.num_bins, other.bin_seconds):
            raise ValueError("cannot merge profiles of different shapes")
        self.requests += other.requests
        self.payload_bytes += other.payload_bytes
        return self

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def total_requests(self) -> int:
        """All offloaded requests counted into the profile."""
        return int(self.requests.sum())

    def offered_rps(self, region_index: int, api_index: int) -> np.ndarray:
        """Per-bin offered load of one (region, API) pair, requests/second."""
        return self.requests[region_index, api_index] / self.bin_seconds

    def peak_rps(self) -> float:
        """The busiest single (region, API, bin) cell's offered load."""
        return float(self.requests.max()) / self.bin_seconds

    # ------------------------------------------------------------------ #
    # Store round-trip
    # ------------------------------------------------------------------ #
    def cells(self) -> Iterator[LoadCell]:
        """Non-empty grid cells in canonical (region, api, bin) order."""
        for r, region in enumerate(self.regions):
            for a, api in enumerate(self.apis):
                for b in np.nonzero(self.requests[r, a])[0]:
                    b = int(b)
                    yield LoadCell(
                        region=region,
                        cloud_api=api,
                        bin_index=b,
                        bin_start_s=b * self.bin_seconds,
                        bin_seconds=self.bin_seconds,
                        requests=int(self.requests[r, a, b]),
                        payload_bytes=int(self.payload_bytes[r, a, b]),
                    )

    def column_batch(self) -> dict[str, np.ndarray]:
        """Non-empty grid cells as one ``fleet_load`` column batch.

        The batch-native counterpart of :meth:`cells`: ``np.nonzero`` walks
        the grid in C (region-major) order — exactly the order
        :meth:`cells` yields — and every column derives from the index
        arrays in one vectorised step, so the persisted rows are identical
        to appending each :class:`LoadCell` individually.
        """
        r_idx, a_idx, b_idx = np.nonzero(self.requests)
        batch = {
            "region": np.array(self.regions)[r_idx] if r_idx.size
            else np.empty(0, dtype=np.str_),
            "cloud_api": np.array(self.apis)[a_idx] if a_idx.size
            else np.empty(0, dtype=np.str_),
            "bin_index": b_idx.astype(np.int64),
            "bin_start_s": b_idx * self.bin_seconds,
            "bin_seconds": np.full(b_idx.size, self.bin_seconds),
            "requests": self.requests[r_idx, a_idx, b_idx],
            "payload_bytes": self.payload_bytes[r_idx, a_idx, b_idx],
        }
        for array in batch.values():
            array.setflags(write=False)  # fresh arrays: skip the writer copy
        return batch

    @classmethod
    def from_store(cls, store, regions: Sequence[str], horizon_s: float,
                   bin_seconds: float,
                   apis: Sequence[str] = FIG15_API_NAMES) -> "LoadProfile":
        """Rebuild a profile by summing a store's ``fleet_load`` rows.

        Pure addition over however many rows/segments the cells were split
        into — re-ingestion, segment splits and compaction all reconstruct
        the identical grid.  The accumulation is one vectorised
        ``np.add.at`` scatter per grid (region/API names map to axis
        indices via a sorted lookup), so rebuilding from millions of cells
        costs no per-row Python loop.
        """
        profile = cls(regions, horizon_s, bin_seconds, apis=apis)
        arrays = store.query("fleet_load").where(
            "bin_seconds", "==", float(bin_seconds)).arrays(
            "region", "cloud_api", "bin_index", "requests", "payload_bytes")
        if not arrays["bin_index"].size:
            return profile
        r = _axis_indices(arrays["region"], profile.regions, "region")
        a = _axis_indices(arrays["cloud_api"], profile.apis, "cloud_api")
        b = arrays["bin_index"].astype(np.intp)
        if b.size and (b.min() < 0 or b.max() >= profile.num_bins):
            raise ValueError(
                "fleet_load rows hold bin indices outside the profile's "
                "horizon")
        np.add.at(profile.requests, (r, a, b),
                  arrays["requests"].astype(np.int64))
        np.add.at(profile.payload_bytes, (r, a, b),
                  arrays["payload_bytes"].astype(np.int64))
        return profile


@dataclass(frozen=True)
class ServiceTable:
    """Frozen per-(region, API, time-bin) cloud service times, milliseconds.

    The read side the event loops consume: built once per interference pass
    from a load profile and a capacity model, then treated as immutable —
    which is what makes a pass a pure function of (spec, table) and the
    whole two-pass run deterministic.  Picklable (plain arrays), so process
    pools ship it to workers unchanged.
    """

    regions: tuple[str, ...]
    apis: tuple[str, ...]
    bin_seconds: float
    #: Service time grid ``[region, api, bin]``, ms.
    service_ms: np.ndarray

    def __post_init__(self) -> None:
        expected = (len(self.regions), len(self.apis))
        if self.service_ms.ndim != 3 or self.service_ms.shape[:2] != expected:
            raise ValueError("service_ms must be [region, api, bin]")

    @classmethod
    def constant(cls, regions: Sequence[str], apis: Sequence[str],
                 horizon_s: float, bin_seconds: float,
                 service_ms: float) -> "ServiceTable":
        """A flat table (every bin at the routing policy's nominal time)."""
        num_bins = int(np.ceil(horizon_s / bin_seconds))
        grid = np.full((len(regions), len(apis), num_bins), float(service_ms))
        return cls(tuple(regions), tuple(apis), float(bin_seconds), grid)

    @property
    def num_bins(self) -> int:
        """Time bins per (region, API) row."""
        return int(self.service_ms.shape[2])

    def row(self, region: str, api: str) -> np.ndarray:
        """Per-bin service times of one (region, API) pair."""
        return self.service_ms[self.regions.index(region),
                               self.apis.index(api)]

    def service_for(self, region: str, api: str,
                    times_s: np.ndarray) -> np.ndarray:
        """Service time of requests arriving at ``times_s`` (elementwise)."""
        bins = time_bin_indices(times_s, self.bin_seconds, self.num_bins)
        return self.row(region, api)[bins]

    def max_delta_ms(self, other: "ServiceTable") -> float:
        """Largest absolute per-bin difference to another table (the
        convergence metric of the damped fixed-point iteration)."""
        if self.service_ms.shape != other.service_ms.shape:
            raise ValueError("cannot compare tables of different shapes")
        if not self.service_ms.size:
            return 0.0
        return float(np.abs(self.service_ms - other.service_ms).max())


def load_report(store) -> list[dict]:
    """Per-(region, API) cloud load summary from persisted ``fleet_load`` rows.

    One output row per (region, API category) with total requests, uplink
    bytes, the busiest bin's offered load in requests/second and the active
    bin count — sorted by request volume.  A grid cell may be split across
    several rows (multiple ingestions of the same horizon are additive, the
    contract :meth:`LoadProfile.from_store` rests on), so per-bin peaks are
    taken only after summing each cell's rows.  ``bin_seconds`` is part of
    the cell key: rows written at different bin widths (two campaigns with
    different ``--cloud-bin-minutes`` in one store) stay separate cells,
    each contributing its peak at its own width, rather than being summed
    into one fictitious time window.
    """
    grouped = (store.query("fleet_load")
               .group_by("region", "cloud_api", "bin_seconds", "bin_index")
               .agg(requests=("requests", "sum"),
                    payload_bytes=("payload_bytes", "sum"))
               .aggregate())
    by_pair: dict[tuple[str, str], dict] = {}
    for cell in grouped:
        entry = by_pair.setdefault((cell["region"], cell["cloud_api"]), {
            "requests": 0, "payload_bytes": 0, "peak_rps": 0.0,
            "active_bins": 0,
        })
        entry["requests"] += int(cell["requests"])
        entry["payload_bytes"] += int(cell["payload_bytes"])
        entry["peak_rps"] = max(entry["peak_rps"],
                                int(cell["requests"])
                                / float(cell["bin_seconds"]))
        entry["active_bins"] += 1
    rows = [
        {"region": region, "cloud_api": api, **entry}
        for (region, api), entry in by_pair.items()
    ]
    return sorted(rows, key=lambda r: (-r["requests"], r["region"],
                                       r["cloud_api"]))
