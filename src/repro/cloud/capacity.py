"""Region-sharded cloud capacity: the load -> service-time curve.

The paper's Sec. 5 offload analysis answers at one fixed service time; at
fleet scale the Fig. 15 cloud APIs are a *shared* resource.  This module
models each (region, API category) pair as an M/M/c-style service pool:
``servers`` parallel workers, each sustaining ``per_server_rps`` requests
per second at the API's base service time, scaled by the region's capacity
share.  The expected queueing delay under offered load follows Sakasegawa's
closed-form M/M/c approximation

    ``W_q ~= rho^sqrt(2 (c + 1)) / (c * mu * (1 - rho))``

which is exact for M/M/1, asymptotically exact in heavy traffic, and — the
property everything here rests on — a *deterministic, monotone* function of
the offered load.  Utilisation is clamped below 1 (``max_utilization``), so
an overloaded bin saturates at a finite, reproducible service time instead
of diverging; the damped fixed-point iteration in
:mod:`repro.cloud.interference` needs that boundedness to converge.

Nothing in this module draws randomness: the same load profile always maps
to the same service-time table, bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Union

import numpy as np

from repro.android.cloud_apis import api_by_name

__all__ = ["CloudRegion", "ApiCapacity", "CapacityModel", "REFERENCE_REGIONS"]


@dataclass(frozen=True)
class CloudRegion:
    """One regional shard of the cloud APIs' serving capacity."""

    name: str
    #: Multiplier on every API pool's throughput in this region (smaller
    #: regions congest earlier under the same per-capita demand).
    capacity_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name must be non-empty")
        if self.capacity_scale <= 0:
            raise ValueError("capacity_scale must be positive")


#: A small reference deployment: one well-provisioned home region and two
#: thinner remote ones, mirroring how managed ML APIs are actually sharded.
REFERENCE_REGIONS: tuple[CloudRegion, ...] = (
    CloudRegion("us-central", capacity_scale=1.0),
    CloudRegion("eu-west", capacity_scale=0.7),
    CloudRegion("apac-se", capacity_scale=0.5),
)


@dataclass(frozen=True)
class ApiCapacity:
    """Serving capacity of one Fig. 15 API category (per unit region scale)."""

    #: Unloaded server-side execution time, milliseconds.
    base_service_ms: float = 45.0
    #: Parallel servers in the pool (the ``c`` of M/M/c).
    servers: int = 4
    #: Sustained throughput of one server, requests per second.
    per_server_rps: float = 3.0

    def __post_init__(self) -> None:
        if self.base_service_ms <= 0:
            raise ValueError("base_service_ms must be positive")
        if self.servers <= 0:
            raise ValueError("servers must be positive")
        if self.per_server_rps <= 0:
            raise ValueError("per_server_rps must be positive")


@dataclass(frozen=True)
class CapacityModel:
    """The fleet-facing load -> service-time map, sharded by region.

    ``api_capacities`` overrides the ``default`` pool per Fig. 15 API name
    (validated against the known table).  :meth:`service_ms` is the single
    entry point: offered load in, expected service time (base + M/M/c queue
    wait) out, elementwise over NumPy arrays.
    """

    regions: tuple[CloudRegion, ...] = REFERENCE_REGIONS
    default: ApiCapacity = field(default_factory=ApiCapacity)
    api_capacities: Mapping[str, ApiCapacity] = field(default_factory=dict)
    #: Utilisation clamp keeping overloaded bins finite and monotone.
    max_utilization: float = 0.97

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", tuple(self.regions))
        object.__setattr__(self, "api_capacities", dict(self.api_capacities))
        if not self.regions:
            raise ValueError("CapacityModel requires at least one region")
        if len({region.name for region in self.regions}) != len(self.regions):
            raise ValueError("region names must be unique")
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")
        for name in self.api_capacities:
            api_by_name(name)  # unknown API categories fail fast

    @property
    def region_names(self) -> tuple[str, ...]:
        """Region names in declaration order (the fleet spec's shard keys)."""
        return tuple(region.name for region in self.regions)

    def region(self, name: str) -> CloudRegion:
        """Look up a region by name."""
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"unknown region {name!r} (have {self.region_names})")

    def api_capacity(self, api_name: str) -> ApiCapacity:
        """Capacity of one API category (the default unless overridden)."""
        return self.api_capacities.get(api_name, self.default)

    # ------------------------------------------------------------------ #
    # The curve
    # ------------------------------------------------------------------ #
    def utilization(self, api_name: str, region_name: str,
                    offered_rps: Union[float, np.ndarray]) -> np.ndarray:
        """Unclamped pool utilisation ``rho`` under an offered load."""
        capacity = self.api_capacity(api_name)
        scale = self.region(region_name).capacity_scale
        pool_rps = capacity.servers * capacity.per_server_rps * scale
        return np.asarray(offered_rps, dtype=np.float64) / pool_rps

    def service_ms(self, api_name: str, region_name: str,
                   offered_rps: Union[float, np.ndarray]) -> np.ndarray:
        """Expected service time under load (base + M/M/c queue wait), ms.

        Elementwise over ``offered_rps``; monotone non-decreasing in load
        and bounded by the ``max_utilization`` clamp.
        """
        capacity = self.api_capacity(api_name)
        scale = self.region(region_name).capacity_scale
        servers = capacity.servers
        mu = capacity.per_server_rps * scale  # one server's rate in region
        rho = np.clip(self.utilization(api_name, region_name, offered_rps),
                      0.0, self.max_utilization)
        exponent = math.sqrt(2.0 * (servers + 1))
        wait_s = np.power(rho, exponent) / (servers * mu * (1.0 - rho))
        return capacity.base_service_ms + wait_s * 1e3

    def saturated_service_ms(self, api_name: str, region_name: str) -> float:
        """The finite ceiling an overloaded (region, API) bin saturates at."""
        capacity = self.api_capacity(api_name)
        scale = self.region(region_name).capacity_scale
        pool_rps = capacity.servers * capacity.per_server_rps * scale
        return float(self.service_ms(api_name, region_name, pool_rps * 2.0))

    def service_table(self, profile) -> "np.ndarray":
        """Service-time grid ``[region, api, bin]`` for a whole load profile.

        ``profile`` is a :class:`~repro.cloud.load.LoadProfile` whose region
        names must match this model's.  Returned in the profile's region/API
        order, milliseconds per bin.
        """
        if tuple(profile.regions) != self.region_names:
            raise ValueError(
                f"profile regions {profile.regions} do not match the "
                f"capacity model's {self.region_names}")
        table = np.empty(profile.requests.shape, dtype=np.float64)
        for r, region_name in enumerate(profile.regions):
            for a, api_name in enumerate(profile.apis):
                table[r, a] = self.service_ms(
                    api_name, region_name, profile.offered_rps(r, a))
        return table
