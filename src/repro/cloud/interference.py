"""Two-pass deterministic cross-user interference on shared cloud capacity.

The fleet's routing creates a feedback loop the single-pass simulator cannot
see: offloaded traffic raises regional load, load raises API service times
(:mod:`repro.cloud.capacity`), slower cloud responses burn more radio energy,
earlier battery-saver switches offload *more* traffic — and queue overflow
policies that spill to the cloud add on-device congestion into the same
pool.  :class:`InterferenceSimulator` resolves that loop as a **damped fixed
point over frozen tables**:

1. **Pass 1** runs the existing vectorised per-user loop at the nominal
   (unloaded) service time and aggregates offload demand into a time-binned
   regional :class:`~repro.cloud.load.LoadProfile`;
2. each subsequent pass re-simulates with service times read from the
   *frozen* table of the previous iterate, producing a new profile; the
   table is updated by damped blending (``table += damping * (target -
   table)``) and the iteration stops when the largest per-bin change falls
   under ``tolerance_ms`` — or at ``max_passes``, whichever first;
3. a final pass runs at the converged frozen table and is the definitive
   result: its traces, events and load profile are what :meth:`run` returns
   and :meth:`run_to_store` persists (``fleet_events`` + ``fleet_load``
   rows).

Every pass is a pure function of (spec, frozen table): users are
materialised from their own derived seeds, profiles merge by exact integer
addition, and the capacity curve is deterministic — so the entire multi-pass
run is **bit-identical for any worker count, chunk size or pool kind**,
which ``benchmarks/test_bench_cloud.py`` enforces together with the bounded
iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro import obs
from repro.cloud.capacity import CapacityModel
from repro.cloud.load import FIG15_API_NAMES, LoadProfile, ServiceTable
from repro.fleet.population import FleetSpec
from repro.fleet.simulator import FleetSimulator, UserTrace

__all__ = ["InterferenceConfig", "InterferenceResult", "InterferenceSimulator"]


@dataclass(frozen=True)
class InterferenceConfig:
    """Knobs of the damped fixed-point iteration."""

    #: Width of the load/service time bins, seconds.
    bin_seconds: float = 900.0
    #: Fraction of each pass's target table blended into the iterate.
    damping: float = 0.5
    #: Cap on the fixed-point loop's profile passes, *including* the initial
    #: nominal pass (the definitive final pass after convergence is on top).
    #: At least 2 is needed for any interference feedback to apply.
    max_passes: int = 8
    #: Convergence gate: largest per-bin service-time change, ms.
    tolerance_ms: float = 0.05

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if self.max_passes < 1:
            raise ValueError("max_passes must be at least 1")
        if self.tolerance_ms < 0:
            raise ValueError("tolerance_ms must be non-negative")


@dataclass
class InterferenceResult:
    """Outcome of a converged (or capped) interference run."""

    #: The frozen service-time table of the final pass.
    table: ServiceTable
    #: Offload demand of the final pass.
    profile: LoadProfile
    #: Total simulation passes executed (nominal + iterations + final).
    passes: int
    #: Whether the table change fell under the tolerance before the cap.
    converged: bool
    #: Per-iteration ``max |delta service_ms|`` history.
    deltas_ms: list[float] = field(default_factory=list)
    #: Final traces (populated by :meth:`InterferenceSimulator.run`).
    traces: Optional[list[UserTrace]] = None
    #: Arrivals of the final pass, counted while streaming — the external
    #: side of the queue-conservation audit
    #: (``repro.fleet.reports.queue_summary(store, expected_arrived=...)``).
    arrived: Optional[int] = None

    @property
    def peak_service_ms(self) -> float:
        """Slowest (region, API, bin) service time of the converged table."""
        return float(self.table.service_ms.max())


class InterferenceSimulator:
    """Damped fixed-point fleet simulation over shared cloud capacity."""

    def __init__(self, spec: FleetSpec, capacity: CapacityModel, *,
                 config: Optional[InterferenceConfig] = None,
                 max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 use_processes: bool = False) -> None:
        if spec.regions != capacity.region_names:
            # Align the population's region shards with the capacity model
            # rather than erroring: region assignment is a separate hash
            # stream, so this never perturbs any user's event plan.
            spec = replace(spec, regions=capacity.region_names)
        self.spec = spec
        self.capacity = capacity
        self.config = config or InterferenceConfig()
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.use_processes = use_processes

    # ------------------------------------------------------------------ #
    # Single passes
    # ------------------------------------------------------------------ #
    def _simulator(self, table: Optional[ServiceTable]) -> FleetSimulator:
        return FleetSimulator(
            self.spec,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            use_processes=self.use_processes,
            service_table=table,
        )

    def _empty_profile(self) -> LoadProfile:
        return LoadProfile(self.spec.regions, self.spec.horizon_s,
                           self.config.bin_seconds)

    def _nominal_table(self) -> ServiceTable:
        return ServiceTable.constant(
            self.spec.regions, FIG15_API_NAMES, self.spec.horizon_s,
            self.config.bin_seconds, self.spec.policy.cloud.service_ms)

    def _profile_pass(self, table: Optional[ServiceTable]) -> LoadProfile:
        """One streaming simulation pass, reduced to its load profile."""
        profile = self._empty_profile()
        for trace in self._simulator(table).iter_traces():
            profile.add_trace(trace)
        return profile

    def _target_table(self, profile: LoadProfile) -> np.ndarray:
        return self.capacity.service_table(profile)

    # ------------------------------------------------------------------ #
    # The fixed point
    # ------------------------------------------------------------------ #
    def solve(self) -> InterferenceResult:
        """Iterate to the damped fixed point; no final traces retained.

        The convergence metric is the distance between the current table and
        the target it induces (``max |f(load(table)) - table|``): under the
        tolerance means the table reproduces itself.  While demand is still
        moving, updates are damped (``damping`` of the way to the target) to
        keep the discrete routing feedback from oscillating; once two
        consecutive passes produce *bit-identical* demand profiles, the
        iteration takes the full undamped step — with stable demand the
        target is already the fixed point, so crawling toward it
        geometrically would only waste passes.
        """
        config = self.config
        table = self._nominal_table()
        passes = 0
        converged = False
        deltas: list[float] = []
        profile = self._empty_profile()
        previous_requests: Optional[np.ndarray] = None
        with obs.span("cloud.solve"):
            for iteration in range(config.max_passes):
                # Pass 1 runs at the nominal table == the plain PR 3 loop.
                with obs.span("cloud.pass", items=self.spec.num_users,
                              detail=f"iteration {iteration + 1}"):
                    profile = self._profile_pass(table if iteration else None)
                passes += 1
                target = self._target_table(profile)
                delta = float(np.abs(target - table.service_ms).max()) \
                    if target.size else 0.0
                deltas.append(delta)
                # The convergence trajectory is a pure function of (spec,
                # capacity, config) — pass counts are deterministic-class;
                # the delta magnitudes are floats, kept as observations.
                obs.observe("cloud.delta_ms", delta)
                if delta <= config.tolerance_ms:
                    converged = True
                    break
                demand_stable = (previous_requests is not None
                                 and np.array_equal(previous_requests,
                                                    profile.requests))
                blended = target if demand_stable else (
                    table.service_ms
                    + config.damping * (target - table.service_ms))
                table = ServiceTable(table.regions, table.apis,
                                     table.bin_seconds, blended)
                previous_requests = profile.requests.copy()
        obs.count("cloud.passes", passes)
        return InterferenceResult(table=table, profile=profile,
                                  passes=passes, converged=converged,
                                  deltas_ms=deltas)

    def run(self) -> InterferenceResult:
        """Solve the fixed point, then collect the definitive final pass."""
        result = self.solve()
        with obs.span("cloud.final_pass", items=self.spec.num_users):
            traces = self._simulator(result.table).collect()
        profile = self._empty_profile()
        for trace in traces:
            profile.add_trace(trace)
        result.traces = traces
        result.profile = profile
        result.arrived = sum(trace.num_events for trace in traces)
        result.passes += 1
        obs.count("cloud.passes", 1)
        return result

    def run_to_store(self, store, *,
                     rows_per_segment: int = 8192) -> tuple[int, "InterferenceResult"]:
        """Solve, then stream the final pass into a results store.

        Writes the final pass's ``fleet_events`` rows (memory-flat,
        batch-native column ingestion exactly like
        :meth:`FleetSimulator.run_to_store`) followed by the converged load
        profile as one ``fleet_load`` column batch.  Returns
        ``(rows_committed, result)``; ``result.traces`` stays ``None`` —
        the store holds them.
        """
        from repro.store.schema import kind_for
        from repro.store.store import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        result = self.solve()
        profile = self._empty_profile()
        arrived = 0
        events_kind = kind_for("fleet_events")
        load_kind = kind_for("fleet_load")
        with obs.span("cloud.final_pass", items=self.spec.num_users):
            with store.writer(rows_per_segment=rows_per_segment) as writer:
                for trace in self._simulator(result.table).iter_traces():
                    profile.add_trace(trace)
                    arrived += trace.num_events
                    writer.append_batch(events_kind, trace.column_batch())
                writer.append_batch(load_kind, profile.column_batch())
        result.profile = profile
        result.arrived = arrived
        result.passes += 1
        obs.count("cloud.passes", 1)
        return writer.rows_committed, result
