"""Battery model: converting measured energy into battery discharge.

The paper's Table 4 reports scenario energy as battery discharge in mAh; the
conversion from joules uses the pack's nominal voltage.  Battery technology is
highlighted as the stagnating resource of mobile DNN deployment (Sec. 8.1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Battery"]


@dataclass(frozen=True)
class Battery:
    """A lithium battery pack described by capacity and nominal voltage."""

    capacity_mah: int
    voltage: float = 3.85

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError("capacity_mah must be positive")
        if self.voltage <= 0:
            raise ValueError("voltage must be positive")

    @property
    def capacity_joules(self) -> float:
        """Total energy stored at nominal voltage, in joules."""
        return self.capacity_mah / 1000.0 * 3600.0 * self.voltage

    def discharge_mah(self, energy_joules: float) -> float:
        """Convert an energy draw in joules into consumed battery charge (mAh)."""
        if energy_joules < 0:
            raise ValueError("energy_joules must be non-negative")
        return energy_joules / self.voltage / 3600.0 * 1000.0

    def discharge_fraction(self, energy_joules: float) -> float:
        """Fraction of the full battery consumed by an energy draw."""
        return min(1.0, energy_joules / self.capacity_joules)

    def hours_of_runtime(self, power_watts: float) -> float:
        """How long the battery sustains a constant power draw, in hours."""
        if power_watts <= 0:
            raise ValueError("power_watts must be positive")
        return self.capacity_joules / power_watts / 3600.0
