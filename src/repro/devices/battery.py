"""Battery model: converting measured energy into battery discharge.

The paper's Table 4 reports scenario energy as battery discharge in mAh; the
conversion from joules uses the pack's nominal voltage.  Battery technology is
highlighted as the stagnating resource of mobile DNN deployment (Sec. 8.1).

:class:`Battery` describes the immutable pack; :class:`BatteryState` tracks a
charge level across repeated draws — the per-device state the fleet simulator
carries over days of virtual time, and what battery-saver routing policies
read their threshold from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Battery", "BatteryState", "RechargeSchedule"]


@dataclass(frozen=True)
class Battery:
    """A lithium battery pack described by capacity and nominal voltage."""

    capacity_mah: int
    voltage: float = 3.85

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError("capacity_mah must be positive")
        if self.voltage <= 0:
            raise ValueError("voltage must be positive")

    @property
    def capacity_joules(self) -> float:
        """Total energy stored at nominal voltage, in joules."""
        return self.capacity_mah / 1000.0 * 3600.0 * self.voltage

    def discharge_mah(self, energy_joules: float) -> float:
        """Convert an energy draw in joules into consumed battery charge (mAh)."""
        if energy_joules < 0:
            raise ValueError("energy_joules must be non-negative")
        return energy_joules / self.voltage / 3600.0 * 1000.0

    def discharge_fraction(self, energy_joules: float) -> float:
        """Fraction of the full battery consumed by an energy draw."""
        return min(1.0, energy_joules / self.capacity_joules)

    def hours_of_runtime(self, power_watts: float) -> float:
        """How long the battery sustains a constant power draw, in hours."""
        if power_watts <= 0:
            raise ValueError("power_watts must be positive")
        return self.capacity_joules / power_watts / 3600.0

    def state(self, level_fraction: float = 1.0) -> "BatteryState":
        """A mutable charge tracker over this pack, starting at the given level."""
        return BatteryState(self, level_fraction=level_fraction)


class BatteryState:
    """Charge level of one battery pack across repeated energy draws.

    Discharge accounting is exact in mAh (the paper's Table 4 unit): every
    draw is converted through the pack's nominal voltage and accumulated, so
    multi-day simulations can audit ``drained_mah`` against the sum of their
    per-event costs.  The *level* clamps at empty — a dead device draws
    nothing further — but ``drained_mah`` keeps recording what was asked for,
    which is what scenario energy accounting wants.
    """

    def __init__(self, battery: Battery, *, level_fraction: float = 1.0) -> None:
        if not 0.0 <= level_fraction <= 1.0:
            raise ValueError("level_fraction must be in [0, 1]")
        self.battery = battery
        self._level_mah = level_fraction * battery.capacity_mah
        self.drained_mah = 0.0

    @property
    def level_mah(self) -> float:
        """Remaining charge in mAh."""
        return self._level_mah

    @property
    def fraction(self) -> float:
        """Remaining charge as a fraction of full capacity."""
        return self._level_mah / self.battery.capacity_mah

    @property
    def is_empty(self) -> bool:
        """Whether the pack has no usable charge left."""
        return self._level_mah <= 0.0

    def drain_joules(self, energy_joules: float) -> float:
        """Draw energy from the pack; returns the discharge in mAh.

        The returned value is the requested discharge (added to
        ``drained_mah``); the stored level clamps at zero.
        """
        mah = self.battery.discharge_mah(energy_joules)
        self.drained_mah += mah
        self._level_mah = max(0.0, self._level_mah - mah)
        return mah

    def drain_mj(self, energy_mj: float) -> float:
        """Draw energy given in millijoules; returns the discharge in mAh."""
        return self.drain_joules(energy_mj / 1e3)

    def recharge(self, level_fraction: float = 1.0) -> None:
        """Recharge to the given fraction of capacity (default: full)."""
        if not 0.0 <= level_fraction <= 1.0:
            raise ValueError("level_fraction must be in [0, 1]")
        self._level_mah = level_fraction * self.battery.capacity_mah


@dataclass(frozen=True)
class RechargeSchedule:
    """Nightly charging windows, so multi-day horizons do not monotonically drain.

    Users plug their phone in once a day; when the window ends the pack is
    back at ``level``.  The schedule is deterministic — the same boundary
    times for every simulation of the same horizon — which is what lets the
    fleet's vectorised and per-event loops treat the day as independent
    *recharge spans*: at each boundary the battery resets to ``level`` and
    the SoC (idle on the charger for hours, many thermal time constants) is
    back to cold.  Requests still arriving inside the window are simulated
    normally; the recharge takes effect at the window's end.
    """

    #: Hour of (virtual) day the charge window opens, e.g. 1.0 = 01:00.
    start_hour: float = 1.0
    #: Window length in hours; the pack is full when it closes.
    duration_h: float = 4.0
    #: Charge fraction restored at the end of each window.
    level: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_hour < 24.0:
            raise ValueError("start_hour must be in [0, 24)")
        if self.duration_h <= 0:
            raise ValueError("duration_h must be positive")
        if not 0.0 < self.level <= 1.0:
            raise ValueError("level must be in (0, 1]")

    @property
    def end_of_day_s(self) -> float:
        """Seconds into a day at which the charge window closes."""
        return (self.start_hour + self.duration_h) * 3600.0

    def boundaries(self, horizon_s: float) -> np.ndarray:
        """Window-end times inside ``(0, horizon_s)``, one per simulated day."""
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        first = self.end_of_day_s
        ends = np.arange(first, horizon_s, 86400.0, dtype=np.float64)
        return ends[(ends > 0.0) & (ends < horizon_s)]

    def apply(self, state: BatteryState) -> None:
        """Recharge a battery state to the schedule's level."""
        state.recharge(self.level)
