"""System-on-chip models: heterogeneous core islands and accelerators.

Each SoC is described by its CPU core clusters (ARM big.LITTLE / DynamIQ
islands with per-core sustained GFLOPS), its memory bandwidth, and optional
GPU / DSP accelerators.  The numbers are calibrated so relative performance
across the paper's device fleet (Table 1, Figs. 8-14) is preserved: low-tier
devices are several times slower, successive Snapdragon generations gain
incrementally, DSPs run int8 at a fraction of the CPU's power, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CoreCluster", "Accelerator", "SoC", "SOC_CATALOG", "soc_by_name"]


@dataclass(frozen=True)
class CoreCluster:
    """A homogeneous island of CPU cores (e.g. 4x Cortex-A55)."""

    name: str
    core_count: int
    frequency_ghz: float
    flops_per_cycle: float
    is_big: bool = False

    def __post_init__(self) -> None:
        if self.core_count <= 0:
            raise ValueError("core_count must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")

    @property
    def per_core_gflops(self) -> float:
        """Sustained single-core throughput in GFLOPS."""
        return self.frequency_ghz * self.flops_per_cycle

    @property
    def cluster_gflops(self) -> float:
        """Sustained throughput of the whole cluster in GFLOPS."""
        return self.per_core_gflops * self.core_count


@dataclass(frozen=True)
class Accelerator:
    """A non-CPU compute unit on the SoC (GPU, DSP or NPU)."""

    kind: str
    name: str
    peak_gflops: float
    supports_int8: bool = False
    int8_speedup: float = 1.0
    power_watts: float = 1.0
    per_layer_overhead_ms: float = 0.05


@dataclass(frozen=True)
class SoC:
    """A mobile system-on-chip."""

    name: str
    vendor: str
    year: int
    process_nm: int
    clusters: tuple[CoreCluster, ...]
    memory_bandwidth_gbps: float
    gpu: Optional[Accelerator] = None
    dsp: Optional[Accelerator] = None
    #: Sustained power of an all-core CPU inference workload, in watts.
    cpu_power_watts: float = 3.0
    #: Idle platform power (rails that stay on during a benchmark), in watts.
    idle_power_watts: float = 0.7
    #: Per-layer dispatch overhead of the default CPU runtime, in ms.
    cpu_layer_overhead_ms: float = 0.03
    #: Fixed per-inference invocation overhead (input copy, scheduling), in ms.
    invocation_overhead_ms: float = 2.0
    #: Fraction of peak CPU GFLOPS a well-optimised kernel typically sustains.
    cpu_efficiency: float = 0.5

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("SoC requires at least one core cluster")

    @property
    def total_cores(self) -> int:
        """Total number of CPU cores across all clusters."""
        return sum(cluster.core_count for cluster in self.clusters)

    @property
    def big_cores(self) -> int:
        """Number of cores in "big" clusters."""
        return sum(cluster.core_count for cluster in self.clusters if cluster.is_big)

    @property
    def peak_cpu_gflops(self) -> float:
        """Aggregate CPU throughput with every core busy."""
        return sum(cluster.cluster_gflops for cluster in self.clusters)

    def cores_fastest_first(self) -> tuple[CoreCluster, ...]:
        """Clusters ordered from fastest to slowest per-core throughput."""
        return tuple(sorted(self.clusters, key=lambda c: c.per_core_gflops, reverse=True))

    def accelerator(self, kind: str) -> Optional[Accelerator]:
        """Look up an accelerator by kind (``gpu`` or ``dsp``)."""
        if kind == "gpu":
            return self.gpu
        if kind == "dsp":
            return self.dsp
        return None


def _snapdragon_888() -> SoC:
    return SoC(
        name="Snapdragon 888",
        vendor="Qualcomm",
        year=2021,
        process_nm=5,
        clusters=(
            CoreCluster("Cortex-X1", 1, 2.84, 10.0, is_big=True),
            CoreCluster("Cortex-A78", 3, 2.42, 8.0, is_big=True),
            CoreCluster("Cortex-A55", 4, 1.80, 2.2),
        ),
        memory_bandwidth_gbps=25.0,
        gpu=Accelerator("gpu", "Adreno 660", peak_gflops=115.0, power_watts=1.1,
                        per_layer_overhead_ms=0.06),
        dsp=Accelerator("dsp", "Hexagon 780", peak_gflops=230.0, supports_int8=True,
                        int8_speedup=2.4, power_watts=0.55, per_layer_overhead_ms=0.02),
        cpu_power_watts=6.9,
        idle_power_watts=0.8,
        cpu_layer_overhead_ms=0.020,
        invocation_overhead_ms=1.2,
        cpu_efficiency=0.52,
    )


def _snapdragon_855() -> SoC:
    return SoC(
        name="Snapdragon 855",
        vendor="Qualcomm",
        year=2019,
        process_nm=7,
        clusters=(
            CoreCluster("Kryo 485 Prime", 1, 2.84, 7.0, is_big=True),
            CoreCluster("Kryo 485 Gold", 3, 2.42, 5.0, is_big=True),
            CoreCluster("Kryo 485 Silver", 4, 1.80, 2.0),
        ),
        memory_bandwidth_gbps=20.0,
        gpu=Accelerator("gpu", "Adreno 640", peak_gflops=72.0, power_watts=0.9,
                        per_layer_overhead_ms=0.07),
        dsp=Accelerator("dsp", "Hexagon 690", peak_gflops=170.0, supports_int8=True,
                        int8_speedup=2.2, power_watts=0.5, per_layer_overhead_ms=0.025),
        cpu_power_watts=4.6,
        idle_power_watts=0.75,
        cpu_layer_overhead_ms=0.028,
        invocation_overhead_ms=1.6,
        cpu_efficiency=0.50,
    )


def _snapdragon_845() -> SoC:
    return SoC(
        name="Snapdragon 845",
        vendor="Qualcomm",
        year=2018,
        process_nm=10,
        clusters=(
            CoreCluster("Kryo 385 Gold", 4, 2.80, 3.5, is_big=True),
            CoreCluster("Kryo 385 Silver", 4, 1.77, 1.8),
        ),
        memory_bandwidth_gbps=15.0,
        gpu=Accelerator("gpu", "Adreno 630", peak_gflops=52.0, power_watts=0.7,
                        per_layer_overhead_ms=0.08),
        dsp=Accelerator("dsp", "Hexagon 685", peak_gflops=130.0, supports_int8=True,
                        int8_speedup=2.0, power_watts=0.45, per_layer_overhead_ms=0.03),
        cpu_power_watts=3.6,
        idle_power_watts=0.7,
        cpu_layer_overhead_ms=0.035,
        invocation_overhead_ms=2.0,
        cpu_efficiency=0.48,
    )


def _snapdragon_675() -> SoC:
    return SoC(
        name="Snapdragon 675",
        vendor="Qualcomm",
        year=2019,
        process_nm=11,
        clusters=(
            CoreCluster("Kryo 460 Gold", 2, 2.0, 8.0, is_big=True),
            CoreCluster("Kryo 460 Silver", 6, 1.78, 2.0),
        ),
        memory_bandwidth_gbps=10.0,
        gpu=Accelerator("gpu", "Adreno 612", peak_gflops=22.0, power_watts=0.9,
                        per_layer_overhead_ms=0.12),
        dsp=Accelerator("dsp", "Hexagon 685", peak_gflops=40.0, supports_int8=True,
                        int8_speedup=1.9, power_watts=1.1, per_layer_overhead_ms=0.09),
        cpu_power_watts=2.9,
        idle_power_watts=0.65,
        cpu_layer_overhead_ms=0.045,
        invocation_overhead_ms=2.6,
        cpu_efficiency=0.45,
    )


def _exynos_7884() -> SoC:
    return SoC(
        name="Exynos 7884",
        vendor="Samsung",
        year=2018,
        process_nm=14,
        clusters=(
            CoreCluster("Cortex-A73", 2, 1.77, 4.0, is_big=True),
            CoreCluster("Cortex-A53", 6, 1.59, 2.6),
        ),
        memory_bandwidth_gbps=6.0,
        gpu=Accelerator("gpu", "Mali-G71 MP2", peak_gflops=10.0, power_watts=0.8,
                        per_layer_overhead_ms=0.20),
        dsp=None,
        cpu_power_watts=2.2,
        idle_power_watts=0.6,
        cpu_layer_overhead_ms=0.075,
        invocation_overhead_ms=3.5,
        cpu_efficiency=0.40,
    )


#: Every SoC appearing in Table 1.
SOC_CATALOG: dict[str, SoC] = {
    soc.name: soc
    for soc in (
        _exynos_7884(),
        _snapdragon_675(),
        _snapdragon_845(),
        _snapdragon_855(),
        _snapdragon_888(),
    )
}


def soc_by_name(name: str) -> SoC:
    """Look up a SoC model by its marketing name."""
    try:
        return SOC_CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown SoC {name!r}; known: {sorted(SOC_CATALOG)}") from None
