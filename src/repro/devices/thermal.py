"""Thermal throttling model for sustained inference workloads.

Continuous inference heats the SoC until DVFS governors scale frequencies
down; the paper lists thermal throttling among the reasons FLOPs do not
predict latency (Sec. 5.1) and credits the open-deck boards' heat dissipation
for their edge over phones with the same SoC.  The model here is a simple
exponential heat-up towards a steady-state throttle factor.

Two interfaces expose it:

* :class:`ThermalModel` — stateless curves: the throttle factor after a given
  amount of *continuous* sustained load (scalar or vectorised);
* :class:`ThermalState` — a resumable accumulator for workloads that are not
  continuous: inference bursts heat the device up
  (:meth:`~ThermalState.heat_up`), idle gaps between them cool it down
  exponentially (:meth:`~ThermalState.cool_down`), and the current throttle
  factor can be read at any point.  This is the state the fleet simulator
  carries per device across events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import math

import numpy as np

__all__ = ["ThermalModel", "ThermalState"]


@dataclass
class ThermalModel:
    """Tracks how much sustained load slows a device down.

    Parameters
    ----------
    throttle_floor:
        Steady-state performance multiplier after indefinite sustained load
        (1.0 = no throttling).  Phones sit around 0.7-0.85; open-deck boards
        barely throttle.
    time_constant_s:
        Seconds of sustained load after which ~63% of the throttling has
        materialised.
    cooldown_time_constant_s:
        Seconds of idle after which ~63% of the accumulated heat has drained.
        ``None`` (the default) reuses ``time_constant_s``, i.e. symmetric
        heat-up and cool-down.
    """

    throttle_floor: float = 0.8
    time_constant_s: float = 120.0
    cooldown_time_constant_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.throttle_floor <= 1.0:
            raise ValueError("throttle_floor must be in (0, 1]")
        if self.time_constant_s <= 0:
            raise ValueError("time_constant_s must be positive")
        if self.cooldown_time_constant_s is not None and self.cooldown_time_constant_s <= 0:
            raise ValueError("cooldown_time_constant_s must be positive when given")

    @classmethod
    def for_device(cls, is_dev_board: bool, tier: str) -> "ThermalModel":
        """Typical thermal behaviour per form factor and tier."""
        if is_dev_board:
            return cls(throttle_floor=0.95, time_constant_s=300.0)
        floors = {"low": 0.70, "mid": 0.78, "high": 0.85}
        return cls(throttle_floor=floors.get(tier, 0.8), time_constant_s=120.0)

    @property
    def cooldown_tau_s(self) -> float:
        """Effective cool-down time constant (defaults to the heat-up one)."""
        return (self.cooldown_time_constant_s
                if self.cooldown_time_constant_s is not None
                else self.time_constant_s)

    def throttle_factor(self, sustained_seconds: float) -> float:
        """Performance multiplier after ``sustained_seconds`` of continuous load."""
        if sustained_seconds < 0:
            raise ValueError("sustained_seconds must be non-negative")
        progress = 1.0 - math.exp(-sustained_seconds / self.time_constant_s)
        return 1.0 - (1.0 - self.throttle_floor) * progress

    def throttle_factors(self, sustained_seconds: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`throttle_factor` over an array of sustained loads.

        Elementwise identical to the scalar path (same expression, same
        operation order); the fleet simulator evaluates whole event vectors
        through this in one call.
        """
        sustained = np.asarray(sustained_seconds, dtype=np.float64)
        if sustained.size and float(sustained.min()) < 0:
            raise ValueError("sustained_seconds must be non-negative")
        progress = 1.0 - np.exp(-sustained / self.time_constant_s)
        return 1.0 - (1.0 - self.throttle_floor) * progress

    def sustained_latency_ms(self, cold_latency_ms: float, sustained_seconds: float) -> float:
        """Latency of one inference after sustained prior load."""
        return cold_latency_ms / self.throttle_factor(sustained_seconds)

    def state(self, heat_seconds: float = 0.0) -> "ThermalState":
        """A fresh resumable thermal accumulator bound to this model."""
        return ThermalState(model=self, heat_seconds=heat_seconds)


@dataclass
class ThermalState:
    """Resumable heat accumulator: busy time heats, idle time cools.

    ``heat_seconds`` is the *equivalent continuous sustained load*: a device
    that just ran ``h`` seconds of back-to-back inference throttles exactly
    like :meth:`ThermalModel.throttle_factor` at ``h``.  Idle gaps drain it
    exponentially with the model's cool-down time constant, so a long enough
    gap returns the device to (numerically) cold state.  The throttle factor
    read from the state is always clamped to ``[throttle_floor, 1.0]`` by
    construction — heat can grow without bound, the factor cannot fall
    through the floor.
    """

    model: ThermalModel
    heat_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.heat_seconds < 0:
            raise ValueError("heat_seconds must be non-negative")

    def heat_up(self, busy_seconds: float) -> None:
        """Accumulate ``busy_seconds`` of inference load."""
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        self.heat_seconds += busy_seconds

    def cool_down(self, idle_seconds: float) -> None:
        """Exponentially drain heat over an idle gap."""
        if idle_seconds < 0:
            raise ValueError("idle_seconds must be non-negative")
        self.heat_seconds *= math.exp(-idle_seconds / self.model.cooldown_tau_s)

    def reset(self) -> None:
        """Return to the cold state (e.g. device rebooted / long shelf gap)."""
        self.heat_seconds = 0.0

    @property
    def throttle_factor(self) -> float:
        """Current performance multiplier given the accumulated heat."""
        return self.model.throttle_factor(self.heat_seconds)

    def latency_ms(self, cold_latency_ms: float) -> float:
        """Latency of one inference issued right now (no state mutation)."""
        return cold_latency_ms / self.throttle_factor
