"""Thermal throttling model for sustained inference workloads.

Continuous inference heats the SoC until DVFS governors scale frequencies
down; the paper lists thermal throttling among the reasons FLOPs do not
predict latency (Sec. 5.1) and credits the open-deck boards' heat dissipation
for their edge over phones with the same SoC.  The model here is a simple
exponential heat-up towards a steady-state throttle factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

__all__ = ["ThermalModel"]


@dataclass
class ThermalModel:
    """Tracks how much sustained load slows a device down.

    Parameters
    ----------
    throttle_floor:
        Steady-state performance multiplier after indefinite sustained load
        (1.0 = no throttling).  Phones sit around 0.7-0.85; open-deck boards
        barely throttle.
    time_constant_s:
        Seconds of sustained load after which ~63% of the throttling has
        materialised.
    """

    throttle_floor: float = 0.8
    time_constant_s: float = 120.0

    def __post_init__(self) -> None:
        if not 0.0 < self.throttle_floor <= 1.0:
            raise ValueError("throttle_floor must be in (0, 1]")
        if self.time_constant_s <= 0:
            raise ValueError("time_constant_s must be positive")

    @classmethod
    def for_device(cls, is_dev_board: bool, tier: str) -> "ThermalModel":
        """Typical thermal behaviour per form factor and tier."""
        if is_dev_board:
            return cls(throttle_floor=0.95, time_constant_s=300.0)
        floors = {"low": 0.70, "mid": 0.78, "high": 0.85}
        return cls(throttle_floor=floors.get(tier, 0.8), time_constant_s=120.0)

    def throttle_factor(self, sustained_seconds: float) -> float:
        """Performance multiplier after ``sustained_seconds`` of continuous load."""
        if sustained_seconds < 0:
            raise ValueError("sustained_seconds must be non-negative")
        progress = 1.0 - math.exp(-sustained_seconds / self.time_constant_s)
        return 1.0 - (1.0 - self.throttle_floor) * progress

    def sustained_latency_ms(self, cold_latency_ms: float, sustained_seconds: float) -> float:
        """Latency of one inference after sustained prior load."""
        return cold_latency_ms / self.throttle_factor(sustained_seconds)
