"""CPU scheduling model: thread counts, core affinity and island heterogeneity.

The paper's Fig. 12 sweeps thread counts (2/4/8) and affinity masks (a2/a4)
and finds that the optimal configuration varies per device, oversubscription
(more threads than pinned cores) hurts badly, and adding threads on LITTLE
cores can be counter-productive.  The model here reproduces those effects by
treating a layer as work split *equally* across worker threads (as TFLite's
thread pool does), so the layer finishes when the slowest worker finishes:

* threads are placed on the fastest available cores first;
* throughput is ``workers x slowest-worker-core`` discounted by a mild
  per-thread synchronisation loss;
* using every core of the SoC leaves no headroom for the OS and collapses
  throughput (the Fig. 12 "8 threads" cliff);
* pinning to fewer cores than threads causes time-sharing, and pinning to
  exactly as many cores as threads gains nothing over letting the scheduler
  migrate (both observations from Sec. 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.devices.soc import SoC

__all__ = ["ThreadConfig", "CpuScheduler"]

#: Throughput multiplier applied when threads time-share a pinned core set.
OVERSUBSCRIPTION_FACTOR = 0.55

#: Throughput multiplier for pinning threads to exactly as many cores.
PINNING_FACTOR = 0.95

#: Per-extra-thread synchronisation efficiency loss.
PER_THREAD_EFFICIENCY_LOSS = 0.03

#: Multiplier when every physical core is occupied by worker threads.
ALL_CORES_CONTENTION_FACTOR = 0.5


@dataclass(frozen=True)
class ThreadConfig:
    """An execution configuration: thread count plus optional core affinity.

    ``affinity`` of ``None`` lets threads run on any core; an integer pins the
    threads to that many of the fastest cores (the paper's ``<n>a<m>`` setups,
    e.g. ``4a2`` = ``ThreadConfig(threads=4, affinity=2)``).
    """

    threads: int = 4
    affinity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.affinity is not None and self.affinity <= 0:
            raise ValueError("affinity must be positive when given")

    @property
    def label(self) -> str:
        """Fig. 12-style label (``4``, ``4a2``, ...)."""
        if self.affinity is None:
            return str(self.threads)
        return f"{self.threads}a{self.affinity}"


class CpuScheduler:
    """Computes the effective CPU throughput of a thread configuration on a SoC."""

    def __init__(self, soc: SoC) -> None:
        self.soc = soc

    def core_speeds(self) -> list[float]:
        """Per-core sustained GFLOPS, fastest first."""
        speeds: list[float] = []
        for cluster in self.soc.cores_fastest_first():
            speeds.extend([cluster.per_core_gflops] * cluster.core_count)
        return speeds

    def effective_gflops(self, config: ThreadConfig) -> float:
        """Aggregate usable GFLOPS under the given thread/affinity configuration."""
        speeds = self.core_speeds()
        usable_cores = len(speeds) if config.affinity is None else min(config.affinity,
                                                                       len(speeds))
        pinned = config.affinity is not None
        workers = config.threads
        worker_cores = speeds[:min(workers, usable_cores)]

        # Equal work split: the layer completes when the slowest worker does.
        slowest = min(worker_cores)
        raw = len(worker_cores) * slowest

        efficiency = max(0.5, 1.0 - PER_THREAD_EFFICIENCY_LOSS * (len(worker_cores) - 1))
        throughput = raw * efficiency * self.soc.cpu_efficiency

        if pinned and workers > usable_cores:
            # More threads than pinned cores: pure time-sharing on those cores.
            throughput *= OVERSUBSCRIPTION_FACTOR
        elif pinned:
            # Pinning to exactly the used cores gives no benefit in practice.
            throughput *= PINNING_FACTOR
        elif workers >= len(speeds):
            # Worker threads on every core leave no room for the OS/runtime.
            throughput *= ALL_CORES_CONTENTION_FACTOR
        return throughput

    def best_configuration(
        self, candidates: Optional[Sequence[ThreadConfig]] = None
    ) -> ThreadConfig:
        """Pick the highest-throughput configuration among the candidates.

        The default candidate set is the plain (unpinned) 1/2/4/8-thread sweep
        of Fig. 12; the paper observes that picking the right point of that
        sweep per device is worth up to ~2x throughput.
        """
        if candidates is None:
            candidates = [ThreadConfig(threads) for threads in (1, 2, 4, 8)]
        return max(candidates, key=self.effective_gflops)
