"""Device substrate: SoCs, phones/dev-boards, power monitoring and scheduling.

Stands in for the paper's physical benchmark platform (Fig. 2): three Samsung
phones of different tiers and three Qualcomm development boards wired to a
Monsoon power monitor through a programmable USB switch.  The analytical SoC
models encode the first-order performance/energy characteristics (core
islands, frequencies, memory bandwidth, accelerators, per-generation
efficiency) needed to reproduce the *shape* of the paper's runtime results.
"""

from repro.devices.soc import Accelerator, CoreCluster, SoC
from repro.devices.device import DEVICE_FLEET, DEV_BOARDS, PHONES, Device, device_by_name
from repro.devices.battery import Battery, BatteryState
from repro.devices.thermal import ThermalModel, ThermalState
from repro.devices.power_monitor import PowerMonitor, PowerTrace
from repro.devices.usb_control import UsbSwitch
from repro.devices.scheduler import CpuScheduler, ThreadConfig

__all__ = [
    "Accelerator",
    "CoreCluster",
    "SoC",
    "Device",
    "DEVICE_FLEET",
    "DEV_BOARDS",
    "PHONES",
    "device_by_name",
    "Battery",
    "BatteryState",
    "ThermalModel",
    "ThermalState",
    "PowerMonitor",
    "PowerTrace",
    "UsbSwitch",
    "CpuScheduler",
    "ThreadConfig",
]
