"""Monsoon-style power monitor simulator.

The paper measures energy on open-deck devices with a Monsoon AAA10F power
monitor sampling the main rail; screen power is measured and accounted for
separately (Sec. 3.3).  The simulator produces sampled power traces from a
piecewise-constant power profile and integrates them into energy, mimicking
how the real monitor's samples are post-processed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["PowerTrace", "PowerMonitor"]


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power trace: timestamps (s) and instantaneous power (W)."""

    timestamps_s: tuple[float, ...]
    power_watts: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.timestamps_s) != len(self.power_watts):
            raise ValueError("timestamps and power samples must align")

    @property
    def duration_s(self) -> float:
        """Length of the trace in seconds."""
        if not self.timestamps_s:
            return 0.0
        return self.timestamps_s[-1] - self.timestamps_s[0]

    def energy_joules(self) -> float:
        """Trapezoidal integral of the power trace."""
        if len(self.timestamps_s) < 2:
            return 0.0
        return float(np.trapezoid(np.asarray(self.power_watts),
                                  np.asarray(self.timestamps_s)))

    def average_power_watts(self) -> float:
        """Mean power over the trace duration."""
        if self.duration_s <= 0:
            return float(self.power_watts[0]) if self.power_watts else 0.0
        return self.energy_joules() / self.duration_s

    def peak_power_watts(self) -> float:
        """Maximum sampled power."""
        return max(self.power_watts) if self.power_watts else 0.0


class PowerMonitor:
    """Samples a power profile at a fixed rate, adding measurement noise.

    Parameters
    ----------
    sample_rate_hz:
        Sampling frequency; the Monsoon AAA10F samples at 5 kHz.
    noise_watts:
        Standard deviation of additive Gaussian measurement noise.
    seed:
        RNG seed for reproducible traces.
    """

    def __init__(self, sample_rate_hz: float = 5000.0, noise_watts: float = 0.02,
                 seed: int = 0) -> None:
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        if noise_watts < 0:
            raise ValueError("noise_watts must be non-negative")
        self.sample_rate_hz = sample_rate_hz
        self.noise_watts = noise_watts
        self._rng = np.random.default_rng(seed)

    def record(self, segments: Sequence[tuple[float, float]]) -> PowerTrace:
        """Record a trace from (duration_s, power_watts) segments.

        Segments shorter than one sample period still contribute at least one
        sample so short inferences are never lost.
        """
        period = 1.0 / self.sample_rate_hz
        timestamps: list[float] = []
        power: list[float] = []
        clock = 0.0
        for duration, watts in segments:
            if duration < 0 or watts < 0:
                raise ValueError("segment durations and power must be non-negative")
            samples = max(1, int(round(duration * self.sample_rate_hz)))
            for _ in range(samples):
                noisy = watts + float(self._rng.normal(0.0, self.noise_watts))
                timestamps.append(clock)
                power.append(max(0.0, noisy))
                clock += period
        return PowerTrace(tuple(timestamps), tuple(power))

    def measure_inference(self, latency_ms: float, active_power_watts: float,
                          idle_power_watts: float, idle_ms: float = 50.0) -> PowerTrace:
        """Record an idle / active / idle trace around a single inference."""
        return self.record([
            (idle_ms / 1000.0, idle_power_watts),
            (latency_ms / 1000.0, active_power_watts),
            (idle_ms / 1000.0, idle_power_watts),
        ])
