"""Programmable USB switch (YKUSH-style) used during energy benchmarks.

Connecting a phone over USB charges it and corrupts energy measurements, so
the paper's rig cuts USB power programmatically while a benchmark runs and
re-enables it to collect results over adb (Sec. 3.3, Fig. 3).  The simulator
tracks port state and records the switching events the benchmark workflow
issues, so the workflow logic can be tested end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["UsbSwitch"]


@dataclass
class UsbSwitch:
    """A multi-port USB hub whose power/data channels can be toggled in software."""

    num_ports: int = 3
    _power_on: dict[int, bool] = field(default_factory=dict)
    _data_on: dict[int, bool] = field(default_factory=dict)
    events: list[tuple[str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_ports <= 0:
            raise ValueError("num_ports must be positive")
        for port in range(self.num_ports):
            self._power_on[port] = True
            self._data_on[port] = True

    def _check_port(self, port: int) -> None:
        if port not in self._power_on:
            raise ValueError(f"port {port} out of range (0..{self.num_ports - 1})")

    def power_off(self, port: int) -> None:
        """Cut USB power to a port (device now runs from its battery/bench supply)."""
        self._check_port(port)
        self._power_on[port] = False
        self._data_on[port] = False
        self.events.append(("power_off", port))

    def power_on(self, port: int) -> None:
        """Restore USB power and data to a port."""
        self._check_port(port)
        self._power_on[port] = True
        self._data_on[port] = True
        self.events.append(("power_on", port))

    def is_powered(self, port: int) -> bool:
        """Whether the port currently supplies power."""
        self._check_port(port)
        return self._power_on[port]

    def has_data(self, port: int) -> bool:
        """Whether adb connectivity is available on the port."""
        self._check_port(port)
        return self._data_on[port]
