"""Device fleet: the phones and development boards of the paper's Table 1.

The fleet has two groups: consumer phones representing three market tiers
(A20 low, A70 mid, S21 high) and Qualcomm HDK development boards representing
three successive flagship SoC generations (845, 855, 888) whose open-deck
design allows per-rail power measurement with a Monsoon monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.devices.battery import Battery
from repro.devices.soc import SoC, soc_by_name

__all__ = ["Device", "PHONES", "DEV_BOARDS", "DEVICE_FLEET", "device_by_name"]


@dataclass(frozen=True)
class Device:
    """One benchmark target: a phone or an open-deck development board."""

    name: str
    model_code: str
    soc: SoC
    ram_gb: int
    battery: Optional[Battery]
    tier: str
    is_dev_board: bool = False
    #: Multiplier on top of the SoC's raw throughput capturing vendor
    #: configuration, installed software and thermal headroom.  Open-deck
    #: boards dissipate heat better and run a vanilla OS, so they edge out
    #: phones with the same SoC (Sec. 5.1).
    vendor_factor: float = 1.0
    #: Steady-state screen power during benchmarks (black background), watts.
    screen_power_watts: float = 0.45

    def __post_init__(self) -> None:
        if self.tier not in ("low", "mid", "high"):
            raise ValueError(f"tier must be low/mid/high, got {self.tier!r}")
        if self.vendor_factor <= 0:
            raise ValueError("vendor_factor must be positive")

    @property
    def supports_power_measurement(self) -> bool:
        """Only open-deck boards can be wired to the power monitor."""
        return self.is_dev_board

    @property
    def battery_capacity_mah(self) -> Optional[int]:
        """Battery capacity, or ``None`` for boards powered from the bench."""
        return self.battery.capacity_mah if self.battery else None


def _fleet() -> tuple[tuple[Device, ...], tuple[Device, ...]]:
    phones = (
        Device(
            name="A20",
            model_code="SM-A205F",
            soc=soc_by_name("Exynos 7884"),
            ram_gb=4,
            battery=Battery(capacity_mah=4000, voltage=3.85),
            tier="low",
            vendor_factor=0.95,
        ),
        Device(
            name="A70",
            model_code="SM-A705F",
            soc=soc_by_name("Snapdragon 675"),
            ram_gb=6,
            battery=Battery(capacity_mah=4500, voltage=3.85),
            tier="mid",
            vendor_factor=0.97,
        ),
        Device(
            name="S21",
            model_code="SM-G991B",
            soc=soc_by_name("Snapdragon 888"),
            ram_gb=8,
            battery=Battery(capacity_mah=4000, voltage=3.85),
            tier="high",
            vendor_factor=0.93,
        ),
    )
    boards = (
        Device(
            name="Q845",
            model_code="Snapdragon 845 HDK",
            soc=soc_by_name("Snapdragon 845"),
            ram_gb=8,
            battery=Battery(capacity_mah=2850, voltage=3.8),
            tier="high",
            is_dev_board=True,
            vendor_factor=1.0,
            screen_power_watts=0.40,
        ),
        Device(
            name="Q855",
            model_code="Snapdragon 855 HDK",
            soc=soc_by_name("Snapdragon 855"),
            ram_gb=8,
            battery=None,
            tier="high",
            is_dev_board=True,
            vendor_factor=1.0,
            screen_power_watts=0.40,
        ),
        Device(
            name="Q888",
            model_code="Snapdragon 888 HDK",
            soc=soc_by_name("Snapdragon 888"),
            ram_gb=8,
            battery=None,
            tier="high",
            is_dev_board=True,
            vendor_factor=1.0,
            screen_power_watts=0.40,
        ),
    )
    return phones, boards


PHONES, DEV_BOARDS = _fleet()

#: The full Table 1 fleet, phones first.
DEVICE_FLEET: tuple[Device, ...] = PHONES + DEV_BOARDS


def device_by_name(name: str) -> Device:
    """Look up a device of the fleet by its short name (A20, A70, S21, Q845...)."""
    for device in DEVICE_FLEET:
        if device.name == name:
            return device
    raise KeyError(f"unknown device {name!r}; fleet: {[d.name for d in DEVICE_FLEET]}")
