"""Serialised model artefacts: one or more files representing a single model."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ModelArtifact"]


@dataclass(frozen=True)
class ModelArtifact:
    """A model as it appears on disk inside an app package.

    Most frameworks store the whole model in a single file; caffe and ncnn
    split structure and weights across two files.  ``primary`` names the file
    the framework's interpreter is pointed at, and ``files`` maps every file
    name belonging to the model to its bytes.
    """

    framework: str
    primary: str
    files: Mapping[str, bytes] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.primary not in self.files:
            raise ValueError(
                f"primary file {self.primary!r} missing from artifact files "
                f"{sorted(self.files)}"
            )

    @property
    def total_size(self) -> int:
        """Total byte size across all files of the artefact."""
        return sum(len(data) for data in self.files.values())

    @property
    def file_names(self) -> tuple[str, ...]:
        """Names of all files belonging to the model, primary first."""
        others = sorted(name for name in self.files if name != self.primary)
        return (self.primary, *others)

    def checksum(self) -> str:
        """md5 over model structure and weights across all files.

        This is the whole-model checksum the paper computes "on both the model
        and weights" for the uniqueness analysis (Sec. 4.5).
        """
        digest = hashlib.md5()
        for name in self.file_names:
            digest.update(self.files[name])
        return digest.hexdigest()
