"""ncnn model format: a text ``.param`` structure file plus a binary ``.bin``.

Real ncnn param files start with the magic number ``7767517``; the binary file
holds the raw weights.  ncnn accounts for 2.8% of the models found in the wild
(Sec. 4.3).
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.formats.artifact import ModelArtifact
from repro.formats.payload import decode_graph, encode_graph

__all__ = ["write", "read", "matches_param", "matches_bin"]

#: Magic number on the first line of every ncnn .param file.
PARAM_MAGIC = "7767517"

#: Marker prepended to our ncnn weight binaries.
BIN_MAGIC = b"NCNNBIN1"

PARAM_EXTENSION = ".param"
BIN_EXTENSION = ".bin"


def _param_text(graph: Graph) -> str:
    """Render the layer table of an ncnn .param file."""
    lines = [PARAM_MAGIC, f"{graph.num_layers} {graph.num_layers + len(graph.input_specs)}"]
    for index in range(len(graph.input_specs)):
        lines.append(f"Input input_{index} 0 1 input_{index}")
    for layer in graph.layers:
        bottoms = " ".join(layer.inputs)
        lines.append(
            f"{layer.op.value} {layer.name} {len(layer.inputs)} 1 {bottoms} {layer.name}"
        )
    return "\n".join(lines) + "\n"


def write(graph: Graph, file_stem: str | None = None) -> ModelArtifact:
    """Serialise a graph into a .param + .bin artefact pair."""
    stem = file_stem or graph.name
    param_name = f"{stem}{PARAM_EXTENSION}"
    bin_name = f"{stem}{BIN_EXTENSION}"
    graph = graph.with_metadata(framework="ncnn")
    return ModelArtifact(
        framework="ncnn",
        primary=param_name,
        files={
            param_name: _param_text(graph).encode(),
            bin_name: BIN_MAGIC + encode_graph(graph),
        },
    )


def read(bin_data: bytes) -> Graph:
    """Parse an ncnn weight binary back into a graph."""
    if not matches_bin(bin_data):
        raise ValueError("not an ncnn weight binary: missing marker")
    return decode_graph(bin_data[len(BIN_MAGIC):]).with_metadata(framework="ncnn")


def matches_param(data: bytes) -> bool:
    """Signature check: the 7767517 magic on the first line of .param files."""
    try:
        first_line = data[:32].decode("utf-8").splitlines()[0].strip()
    except (UnicodeDecodeError, IndexError):
        return False
    return first_line == PARAM_MAGIC


def matches_bin(data: bytes) -> bool:
    """Signature check for ncnn weight binaries."""
    return data.startswith(BIN_MAGIC)
