"""TFLite model file format (FlatBuffer-style container with ``TFL3`` identifier).

Real TFLite FlatBuffers carry the file identifier ``TFL3`` at byte offset 4;
the paper's validation checks exactly that string "at certain positions of the
binary file" (Sec. 3.1).  Files written here reproduce the same layout: a
4-byte root offset, the ``TFL3`` identifier, then the graph payload.
"""

from __future__ import annotations

import struct

from repro.dnn.graph import Graph
from repro.formats.artifact import ModelArtifact
from repro.formats.payload import decode_graph, encode_graph

__all__ = ["FILE_IDENTIFIER", "write", "read", "matches"]

#: FlatBuffer file identifier found at offset 4 of every TFLite model.
FILE_IDENTIFIER = b"TFL3"

#: Default extension for TFLite models.
EXTENSION = ".tflite"


def write(graph: Graph, file_name: str | None = None) -> ModelArtifact:
    """Serialise a graph into a single-file TFLite artefact."""
    name = file_name or f"{graph.name}{EXTENSION}"
    payload = encode_graph(graph.with_metadata(framework="tflite"))
    data = struct.pack("<I", 8) + FILE_IDENTIFIER + payload
    return ModelArtifact(framework="tflite", primary=name, files={name: data})


def read(data: bytes) -> Graph:
    """Parse a TFLite file back into a graph."""
    if not matches(data):
        raise ValueError("not a TFLite model: missing TFL3 identifier at offset 4")
    return decode_graph(data[8:]).with_metadata(framework="tflite")


def matches(data: bytes) -> bool:
    """Signature check: ``TFL3`` at byte offset 4 (the gaugeNN validation rule)."""
    return len(data) >= 8 and data[4:8] == FILE_IDENTIFIER
