"""Caffe model format: a ``.prototxt`` network definition plus a ``.caffemodel``.

Caffe is the second most common framework found in the wild (10.6% of models)
despite being long deprecated (Sec. 4.3).  Caffe apps "distribute the model
weights ... in separate files" (Sec. 4.5), which is why this serialiser emits
a two-file artefact and the extractor has to group them back together.
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.formats.artifact import ModelArtifact
from repro.formats.payload import decode_graph, encode_graph

__all__ = ["write", "read", "matches_prototxt", "matches_caffemodel"]

#: Binary marker embedded in .caffemodel files (protobuf NetParameter message).
CAFFEMODEL_MAGIC = b"\x0acaffe::NetParameter\x12"

PROTOTXT_EXTENSION = ".prototxt"
CAFFEMODEL_EXTENSION = ".caffemodel"


def _prototxt_text(graph: Graph) -> str:
    """Render a human-readable network definition, as a real prototxt would."""
    lines = [f'name: "{graph.name}"']
    for index, spec in enumerate(graph.input_specs):
        lines.append(f'input: "input_{index}"')
        dims = " ".join(f"dim: {d}" for d in spec.shape)
        lines.append(f"input_shape {{ {dims} }}")
    for layer in graph.layers:
        lines.append("layer {")
        lines.append(f'  name: "{layer.name}"')
        lines.append(f'  type: "{layer.op.value}"')
        for dep in layer.inputs:
            lines.append(f'  bottom: "{dep}"')
        lines.append(f'  top: "{layer.name}"')
        lines.append("}")
    return "\n".join(lines) + "\n"


def write(graph: Graph, file_stem: str | None = None) -> ModelArtifact:
    """Serialise a graph into a prototxt + caffemodel artefact pair."""
    stem = file_stem or graph.name
    prototxt_name = f"{stem}{PROTOTXT_EXTENSION}"
    caffemodel_name = f"{stem}{CAFFEMODEL_EXTENSION}"
    graph = graph.with_metadata(framework="caffe")
    caffemodel = CAFFEMODEL_MAGIC + encode_graph(graph)
    return ModelArtifact(
        framework="caffe",
        primary=caffemodel_name,
        files={
            caffemodel_name: caffemodel,
            prototxt_name: _prototxt_text(graph).encode(),
        },
    )


def read(caffemodel_data: bytes) -> Graph:
    """Parse a caffemodel file (the prototxt is redundant for reconstruction)."""
    if not matches_caffemodel(caffemodel_data):
        raise ValueError("not a caffemodel: missing NetParameter marker")
    return decode_graph(caffemodel_data[len(CAFFEMODEL_MAGIC):]).with_metadata(
        framework="caffe"
    )


def matches_caffemodel(data: bytes) -> bool:
    """Signature check for binary caffemodel files."""
    return data.startswith(CAFFEMODEL_MAGIC)


def matches_prototxt(data: bytes) -> bool:
    """Heuristic check for caffe prototxt network definitions."""
    try:
        text = data[:4096].decode("utf-8")
    except UnicodeDecodeError:
        return False
    return "layer {" in text and "bottom:" in text or ("layer {" in text and 'name: "' in text)
