"""Qualcomm SNPE ``.dlc`` model container.

The Snapdragon Neural Processing Engine uses its own ``.dlc`` representation
and can target the CPU, Adreno GPU or Hexagon DSP of Qualcomm SoCs
(Appendix B).  The paper found three apps shipping dlc models, blindly
distributed to all devices alongside TFLite variants (Sec. 6.3).
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.formats.artifact import ModelArtifact
from repro.formats.payload import decode_graph, encode_graph

__all__ = ["write", "read", "matches"]

#: Container marker for DLC archives.
DLC_MAGIC = b"DLC\x01SNPE"

EXTENSION = ".dlc"


def write(graph: Graph, file_name: str | None = None) -> ModelArtifact:
    """Serialise a graph into a single .dlc artefact."""
    name = file_name or f"{graph.name}{EXTENSION}"
    data = DLC_MAGIC + encode_graph(graph.with_metadata(framework="snpe"))
    return ModelArtifact(framework="snpe", primary=name, files={name: data})


def read(data: bytes) -> Graph:
    """Parse a .dlc container back into a graph."""
    if not matches(data):
        raise ValueError("not an SNPE DLC container: missing marker")
    return decode_graph(data[len(DLC_MAGIC):]).with_metadata(framework="snpe")


def matches(data: bytes) -> bool:
    """Signature check for DLC containers."""
    return data.startswith(DLC_MAGIC)
