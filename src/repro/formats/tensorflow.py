"""TensorFlow frozen GraphDef format (``.pb``).

Full TensorFlow (as opposed to TFLite) accounts for a handful of models in
the wild and its adoption is shrinking (0.56x between snapshots, Sec. 4.6).
GraphDef protobufs have no file identifier, so validation relies on the
message structure; we embed an explicit ``tf.GraphDef`` marker to play that
role in the reproduction.
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.formats.artifact import ModelArtifact
from repro.formats.payload import decode_graph, encode_graph

__all__ = ["write", "read", "matches"]

#: Marker bytes standing in for the GraphDef message structure check.
GRAPHDEF_MAGIC = b"\x0a\x0btf.GraphDef\x1a"

EXTENSION = ".pb"


def write(graph: Graph, file_name: str | None = None) -> ModelArtifact:
    """Serialise a graph into a single frozen-GraphDef artefact."""
    name = file_name or f"{graph.name}{EXTENSION}"
    data = GRAPHDEF_MAGIC + encode_graph(graph.with_metadata(framework="tf"))
    return ModelArtifact(framework="tf", primary=name, files={name: data})


def read(data: bytes) -> Graph:
    """Parse a frozen GraphDef back into a graph."""
    if not matches(data):
        raise ValueError("not a TensorFlow GraphDef: missing message marker")
    return decode_graph(data[len(GRAPHDEF_MAGIC):]).with_metadata(framework="tf")


def matches(data: bytes) -> bool:
    """Signature check for frozen GraphDef files."""
    return data.startswith(GRAPHDEF_MAGIC)
