"""Signature-based model file validation (the gaugeNN "Model validation" step).

Many candidate files use generic formats or extensions (``.pb``, ``.bin``,
``.json``), so gaugeNN validates candidates by checking framework-specific
binary signatures before accepting them as DNN models (Sec. 3.1).  Encrypted
or obfuscated models fail these checks and are therefore excluded, exactly as
in the paper.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.formats import caffe, ncnn, snpe, tensorflow, tflite
from repro.formats.registry import known_extensions

__all__ = ["detect_framework", "validate", "is_candidate_extension"]

#: Ordered signature checks.  Each entry is (framework, role, matcher); the
#: first match wins.  TFLite is checked first because its identifier lives at
#: a fixed offset and is the least ambiguous.
_SIGNATURE_CHECKS: tuple[tuple[str, str, Callable[[bytes], bool]], ...] = (
    ("tflite", "model", tflite.matches),
    ("snpe", "model", snpe.matches),
    ("caffe", "weights", caffe.matches_caffemodel),
    ("caffe", "structure", caffe.matches_prototxt),
    ("ncnn", "structure", ncnn.matches_param),
    ("ncnn", "weights", ncnn.matches_bin),
    ("tf", "model", tensorflow.matches),
)


def is_candidate_extension(file_name: str) -> bool:
    """Whether a file's extension appears in the known-format registry."""
    lowered = file_name.lower()
    return any(lowered.endswith(ext) for ext in known_extensions())


def detect_framework(data: bytes) -> Optional[tuple[str, str]]:
    """Return ``(framework, role)`` for the file content, or ``None``.

    ``role`` distinguishes structure-only files (caffe prototxt, ncnn param)
    from the files holding the weights, which matters when grouping multi-file
    models back together.
    """
    for framework, role, matcher in _SIGNATURE_CHECKS:
        if matcher(data):
            return framework, role
    return None


def validate(file_name: str, data: bytes) -> Optional[str]:
    """Full validation: extension shortlist, then binary signature.

    Returns the detected framework name, or ``None`` when the file is not a
    recognisable (unencrypted, unobfuscated) DNN model.
    """
    if not is_candidate_extension(file_name):
        return None
    detected = detect_framework(data)
    if detected is None:
        return None
    return detected[0]
