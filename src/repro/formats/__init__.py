"""Model file formats: serialisers, signature validation and the format registry.

gaugeNN identifies candidate model files by extension (Appendix Table 5) and
then validates them by checking framework-specific binary signatures (e.g. the
``TFL3`` FlatBuffer identifier for TFLite).  This subpackage provides:

* :mod:`repro.formats.registry` — the extension table of 69 known formats;
* per-framework serialisers (:mod:`~repro.formats.tflite`,
  :mod:`~repro.formats.caffe`, :mod:`~repro.formats.ncnn`,
  :mod:`~repro.formats.tensorflow`, :mod:`~repro.formats.snpe`) that write and
  parse model files carrying the real signatures;
* :mod:`repro.formats.detect` — the signature-based validation used by the
  extraction pipeline.
"""

from repro.formats.artifact import ModelArtifact
from repro.formats.detect import detect_framework, validate
from repro.formats.registry import FORMAT_REGISTRY, FormatSpec, extensions_for, known_extensions
from repro.formats.serialize import deserialize_model, serialize_model

__all__ = [
    "ModelArtifact",
    "detect_framework",
    "validate",
    "FORMAT_REGISTRY",
    "FormatSpec",
    "extensions_for",
    "known_extensions",
    "serialize_model",
    "deserialize_model",
]
