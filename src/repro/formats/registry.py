"""Known DNN framework file formats (Appendix Table 5 of the paper).

gaugeNN matches every file extracted from an app package against this list of
framework/extension pairs to shortlist candidate model files before running
the (more expensive) signature validation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FormatSpec", "FORMAT_REGISTRY", "extensions_for", "known_extensions",
           "frameworks_for_extension"]


@dataclass(frozen=True)
class FormatSpec:
    """Extensions associated with one ML framework."""

    framework: str
    extensions: tuple[str, ...]


#: Appendix Table 5: frameworks and the file extensions gaugeNN validates.
FORMAT_REGISTRY: tuple[FormatSpec, ...] = (
    FormatSpec("onnx", (".onnx", ".pb", ".pbtxt", ".prototxt")),
    FormatSpec("mxnet", (".mar", ".model", ".json", ".params")),
    FormatSpec("keras", (".h5", ".hd5", ".hdf5", ".keras", ".json", ".model", ".pb", ".pth")),
    FormatSpec("caffe", (".caffemodel", ".pbtxt", ".prototxt", ".pt")),
    FormatSpec("caffe2", (".pb", ".pbtxt", ".prototxt")),
    FormatSpec("pytorch", (".pt", ".pth", ".pt1", ".pkl", ".h5", ".t7", ".model", ".dms",
                           ".pth.tar", ".ckpt", ".bin", ".pb", ".tar")),
    FormatSpec("torch", (".t7", ".dat")),
    FormatSpec("snpe", (".dlc",)),
    FormatSpec("feathercnn", (".feathermodel",)),
    FormatSpec("tflite", (".tflite", ".lite", ".tfl", ".bin", ".pb")),
    FormatSpec("tf", (".pb", ".meta", ".pbtxt", ".prototxt", ".json", ".index", ".ckpt")),
    FormatSpec("sklearn", (".pkl", ".joblib", ".model")),
    FormatSpec("armnn", (".armnn",)),
    FormatSpec("mnn", (".mnn",)),
    FormatSpec("ncnn", (".param", ".bin", ".cfg.ncnn", ".weights.ncnn", ".ncnn")),
    FormatSpec("tengine", (".tmfile",)),
    FormatSpec("flux", (".bson",)),
    FormatSpec("chainer", (".npz", ".h5", ".hd5", ".hdf5", ".chainermodel")),
)


def extensions_for(framework: str) -> tuple[str, ...]:
    """Return the known extensions for a framework."""
    for spec in FORMAT_REGISTRY:
        if spec.framework == framework:
            return spec.extensions
    raise KeyError(f"unknown framework {framework!r}")


def known_extensions() -> frozenset[str]:
    """Set of every extension appearing in the registry."""
    return frozenset(ext for spec in FORMAT_REGISTRY for ext in spec.extensions)


def frameworks_for_extension(extension: str) -> tuple[str, ...]:
    """Frameworks that could plausibly own a file with the given extension."""
    extension = extension.lower()
    if not extension.startswith("."):
        extension = "." + extension
    return tuple(
        spec.framework for spec in FORMAT_REGISTRY if extension in spec.extensions
    )


def total_format_count() -> int:
    """Total number of (framework, extension) pairs in the registry."""
    return sum(len(spec.extensions) for spec in FORMAT_REGISTRY)
