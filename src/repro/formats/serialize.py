"""Framework-dispatching serialisation helpers.

``serialize_model`` turns a graph into a :class:`~repro.formats.artifact.ModelArtifact`
in the format named by the graph's metadata (or an explicit override), and
``deserialize_model`` parses an artefact (or a raw primary-file byte string)
back into a graph.  These are the entry points the APK generator and the
gaugeNN extractor use.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.dnn.graph import Graph
from repro.formats import caffe, ncnn, snpe, tensorflow, tflite
from repro.formats.artifact import ModelArtifact
from repro.formats.detect import detect_framework

__all__ = ["serialize_model", "deserialize_model", "deserialize_file"]

_WRITERS = {
    "tflite": tflite.write,
    "caffe": caffe.write,
    "ncnn": ncnn.write,
    "tf": tensorflow.write,
    "snpe": snpe.write,
}

_READERS = {
    "tflite": tflite.read,
    "caffe": caffe.read,
    "ncnn": ncnn.read,
    "tf": tensorflow.read,
    "snpe": snpe.read,
}


def supported_frameworks() -> tuple[str, ...]:
    """Frameworks with both a writer and a reader."""
    return tuple(sorted(_WRITERS))


def serialize_model(graph: Graph, framework: Optional[str] = None,
                    file_stem: Optional[str] = None) -> ModelArtifact:
    """Serialise ``graph`` in the given framework's on-disk format."""
    framework = framework or graph.framework
    try:
        writer = _WRITERS[framework]
    except KeyError:
        raise ValueError(
            f"unsupported framework {framework!r}; supported: {supported_frameworks()}"
        ) from None
    if file_stem is not None and framework in ("caffe", "ncnn"):
        return writer(graph, file_stem)
    if file_stem is not None:
        extension = {"tflite": ".tflite", "tf": ".pb", "snpe": ".dlc"}[framework]
        return writer(graph, f"{file_stem}{extension}")
    return writer(graph)


def deserialize_file(data: bytes) -> Graph:
    """Parse a single model file of any supported framework.

    The framework is auto-detected from the binary signature; structure-only
    files (caffe prototxt, ncnn param) cannot be parsed on their own and raise
    ``ValueError``.
    """
    detected = detect_framework(data)
    if detected is None:
        raise ValueError("unrecognised model file: no framework signature matched")
    framework, role = detected
    if role == "structure" and framework in ("caffe", "ncnn"):
        raise ValueError(
            f"{framework} structure file cannot be parsed without its weight file"
        )
    return _READERS[framework](data)


def deserialize_model(artifact: ModelArtifact) -> Graph:
    """Parse a (possibly multi-file) model artefact back into a graph."""
    reader = _READERS.get(artifact.framework)
    if reader is None:
        raise ValueError(f"unsupported framework {artifact.framework!r}")
    if artifact.framework == "ncnn":
        # ncnn's primary file (.param) only holds the structure; the graph is
        # reconstructed from the weight binary.
        bin_files = [name for name in artifact.files if name.endswith(".bin")]
        if not bin_files:
            raise ValueError("ncnn artifact is missing its .bin weight file")
        return reader(artifact.files[bin_files[0]])
    return reader(artifact.files[artifact.primary])
