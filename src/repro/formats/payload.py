"""Shared graph payload codec used by every framework serialiser.

Every framework file format in this reproduction wraps the same payload: a
JSON graph descriptor (layers, shapes, attributes, weight descriptors)
followed by the concatenated weight-tensor bytes.  Framework serialisers add
their own headers/signatures and may split the payload across multiple files
(caffe's prototxt/caffemodel, ncnn's param/bin), but the payload itself always
round-trips to an identical :class:`~repro.dnn.graph.Graph`.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.dnn.graph import Graph, GraphMetadata, Modality
from repro.dnn.layers import Layer, OpType
from repro.dnn.tensor import DType, TensorSpec, WeightTensor

__all__ = ["encode_graph", "decode_graph", "graph_to_descriptor", "graph_from_descriptor"]

_PAYLOAD_MAGIC = b"RPRGRAPH"


def _spec_to_json(spec: TensorSpec | None) -> Any:
    if spec is None:
        return None
    return {"shape": list(spec.shape), "dtype": spec.dtype.value}


def _spec_from_json(data: Any) -> TensorSpec | None:
    if data is None:
        return None
    return TensorSpec(tuple(data["shape"]), DType(data["dtype"]))


def _weight_to_json(weight: WeightTensor) -> dict:
    return {
        "shape": list(weight.shape),
        "dtype": weight.dtype.value,
        "seed": weight.seed,
        "sparsity": weight.sparsity,
        "name": weight.name,
    }


def _weight_from_json(data: dict) -> WeightTensor:
    return WeightTensor(
        tuple(data["shape"]),
        DType(data["dtype"]),
        int(data["seed"]),
        float(data["sparsity"]),
        data.get("name", ""),
    )


def _layer_to_json(layer: Layer) -> dict:
    attrs = {}
    for key, value in layer.attrs.items():
        if isinstance(value, tuple):
            value = list(value)
        attrs[key] = value
    return {
        "name": layer.name,
        "op": layer.op.value,
        "inputs": list(layer.inputs),
        "output_spec": _spec_to_json(layer.output_spec),
        "weights": [_weight_to_json(w) for w in layer.weights],
        "attrs": attrs,
        "activation_dtype": layer.activation_dtype.value,
        "fused_activation": layer.fused_activation.value if layer.fused_activation else None,
    }


def _layer_from_json(data: dict) -> Layer:
    attrs = {}
    for key, value in data.get("attrs", {}).items():
        if isinstance(value, list):
            value = tuple(value)
        attrs[key] = value
    fused = data.get("fused_activation")
    return Layer(
        name=data["name"],
        op=OpType(data["op"]),
        inputs=tuple(data.get("inputs", ())),
        output_spec=_spec_from_json(data.get("output_spec")),
        weights=tuple(_weight_from_json(w) for w in data.get("weights", ())),
        attrs=attrs,
        activation_dtype=DType(data.get("activation_dtype", "float32")),
        fused_activation=OpType(fused) if fused else None,
    )


def graph_to_descriptor(graph: Graph) -> dict:
    """Return a JSON-serialisable descriptor of the full graph."""
    meta = graph.metadata
    return {
        "metadata": {
            "name": meta.name,
            "framework": meta.framework,
            "architecture": meta.architecture,
            "task": meta.task,
            "modality": meta.modality.value if meta.modality else None,
            "version": meta.version,
            "extra": dict(meta.extra),
        },
        "inputs": [_spec_to_json(spec) for spec in graph.input_specs],
        "layers": [_layer_to_json(layer) for layer in graph.layers],
    }


def graph_from_descriptor(descriptor: dict) -> Graph:
    """Rebuild a graph from a descriptor produced by :func:`graph_to_descriptor`."""
    meta_data = descriptor["metadata"]
    modality = meta_data.get("modality")
    metadata = GraphMetadata(
        name=meta_data["name"],
        framework=meta_data.get("framework", "tflite"),
        architecture=meta_data.get("architecture", ""),
        task=meta_data.get("task", ""),
        modality=Modality(modality) if modality else None,
        version=meta_data.get("version", "1.0"),
        extra=meta_data.get("extra", {}),
    )
    input_specs = [_spec_from_json(spec) for spec in descriptor["inputs"]]
    layers = [_layer_from_json(layer) for layer in descriptor["layers"]]
    return Graph(metadata, input_specs, layers)


def encode_graph(graph: Graph, include_weights: bool = True) -> bytes:
    """Encode a graph into the shared binary payload.

    Layout: magic, 4-byte little-endian descriptor length, JSON descriptor,
    then (optionally) the concatenated weight-tensor bytes in layer order.
    """
    descriptor = json.dumps(graph_to_descriptor(graph), sort_keys=True).encode()
    payload = _PAYLOAD_MAGIC + struct.pack("<I", len(descriptor)) + descriptor
    if include_weights:
        for layer in graph.layers:
            for weight in layer.weights:
                payload += weight.to_bytes()
    return payload


def decode_graph(payload: bytes) -> Graph:
    """Decode a payload produced by :func:`encode_graph`."""
    if not payload.startswith(_PAYLOAD_MAGIC):
        raise ValueError("not a graph payload: missing payload magic")
    offset = len(_PAYLOAD_MAGIC)
    (length,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    descriptor = json.loads(payload[offset:offset + length].decode())
    return graph_from_descriptor(descriptor)
