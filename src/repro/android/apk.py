"""APK packaging, expansion files (OBB) and App Bundle asset packs.

Android apps are zip archives (apk) with a 100 MB size limit; larger assets
(such as DNN weights) can be shipped via expansion files (OBBs) or through
Android App Bundles / Play Asset Delivery (Sec. 3.1).  gaugeNN extracts files
from all three sources, so the packaging substrate models them explicitly.
"""

from __future__ import annotations

import io
import zipfile
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.android.dex import DexFile
from repro.android.manifest import AndroidManifest

__all__ = ["APK_SIZE_LIMIT", "ExpansionFile", "AssetPack", "AppPackage", "ApkBuilder"]

#: Google Play's size limit for the base apk, in bytes.
APK_SIZE_LIMIT = 100 * 1024 * 1024


def _build_zip(entries: Mapping[str, bytes]) -> bytes:
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", compression=zipfile.ZIP_STORED) as archive:
        for name in sorted(entries):
            archive.writestr(name, entries[name])
    return buffer.getvalue()


def _read_zip(data: bytes) -> dict[str, bytes]:
    with zipfile.ZipFile(io.BytesIO(data)) as archive:
        return {name: archive.read(name) for name in archive.namelist()}


@dataclass(frozen=True)
class ExpansionFile:
    """An OBB expansion file hosted by Google Play alongside the apk."""

    name: str
    data: bytes

    def entries(self) -> dict[str, bytes]:
        """Files contained in the expansion archive."""
        return _read_zip(self.data)


@dataclass(frozen=True)
class AssetPack:
    """A Play-Asset-Delivery asset pack from an Android App Bundle."""

    name: str
    delivery_mode: str
    data: bytes

    def entries(self) -> dict[str, bytes]:
        """Files contained in the asset pack."""
        return _read_zip(self.data)


@dataclass(frozen=True)
class AppPackage:
    """Everything Google Play serves for one app: apk, OBBs and asset packs."""

    package_name: str
    apk: bytes
    expansions: tuple[ExpansionFile, ...] = ()
    asset_packs: tuple[AssetPack, ...] = ()

    @property
    def apk_size(self) -> int:
        """Size of the base apk in bytes."""
        return len(self.apk)

    def apk_entries(self) -> dict[str, bytes]:
        """Files inside the base apk."""
        return _read_zip(self.apk)

    def all_files(self) -> dict[str, bytes]:
        """Every file across apk, expansion files and asset packs.

        Keys are prefixed with their source (``apk/``, ``obb/<name>/``,
        ``pack/<name>/``) so the extractor can report where a model came from.
        """
        files = {f"apk/{name}": data for name, data in self.apk_entries().items()}
        for expansion in self.expansions:
            for name, data in expansion.entries().items():
                files[f"obb/{expansion.name}/{name}"] = data
        for pack in self.asset_packs:
            for name, data in pack.entries().items():
                files[f"pack/{pack.name}/{name}"] = data
        return files


class ApkBuilder:
    """Assemble an :class:`AppPackage` from manifest, code, libraries and assets.

    Assets that would push the base apk over the 100 MB limit are
    automatically spilled into an OBB expansion file, mirroring how real apps
    ship oversized DNN weights.
    """

    def __init__(self, manifest: AndroidManifest, dex: DexFile | None = None) -> None:
        self.manifest = manifest
        self.dex = dex or DexFile()
        self._assets: dict[str, bytes] = {}
        self._native_libs: dict[str, bytes] = {}
        self._resources: dict[str, bytes] = {}
        self._asset_packs: list[AssetPack] = []

    def add_asset(self, path: str, data: bytes) -> None:
        """Add a file under ``assets/`` in the base apk (or OBB if oversized)."""
        self._assets[path] = data

    def add_native_library(self, library_name: str, abi: str = "arm64-v8a",
                           data: bytes = b"\x7fELF\x02\x01\x01") -> None:
        """Add a native library under ``lib/<abi>/``."""
        self._native_libs[f"lib/{abi}/{library_name}"] = data

    def add_resource(self, path: str, data: bytes) -> None:
        """Add a file under ``res/``."""
        self._resources[f"res/{path}"] = data

    def add_asset_pack(self, name: str, files: Mapping[str, bytes],
                       delivery_mode: str = "on-demand") -> None:
        """Attach a Play-Asset-Delivery pack with the given files."""
        self._asset_packs.append(AssetPack(name, delivery_mode, _build_zip(dict(files))))

    def build(self) -> AppPackage:
        """Assemble the final package, spilling oversized assets into an OBB."""
        entries: dict[str, bytes] = {
            "AndroidManifest.xml": self.manifest.to_xml().encode(),
            "classes.dex": self.dex.to_bytes(),
            "resources.arsc": b"\x02\x00\x0c\x00",
        }
        entries.update(self._native_libs)
        entries.update(self._resources)

        base_size = sum(len(data) for data in entries.values())
        in_apk: dict[str, bytes] = {}
        overflow: dict[str, bytes] = {}
        for path, data in sorted(self._assets.items(), key=lambda item: len(item[1])):
            if base_size + len(data) <= APK_SIZE_LIMIT:
                in_apk[f"assets/{path}"] = data
                base_size += len(data)
            else:
                overflow[path] = data
        entries.update(in_apk)

        expansions: tuple[ExpansionFile, ...] = ()
        if overflow:
            obb_name = f"main.{self.manifest.version_code}.{self.manifest.package}.obb"
            expansions = (ExpansionFile(obb_name, _build_zip(overflow)),)

        return AppPackage(
            package_name=self.manifest.package,
            apk=_build_zip(entries),
            expansions=expansions,
            asset_packs=tuple(self._asset_packs),
        )
