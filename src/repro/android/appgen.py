"""Synthetic Play Store population generator, calibrated to the paper's dataset.

The generator produces :class:`~repro.android.playstore.StoreSnapshot` objects
whose aggregate statistics match the paper's two crawls (Table 2): total app
count, apps shipping ML frameworks, apps with extractable models, total and
unique model counts, per-framework and per-category model distributions
(Fig. 4), task mix (Table 3, via the zoo catalogue weights), fine-tuning and
duplication rates (Sec. 4.5), optimisation adoption (Sec. 6.1), accelerator
traces (Sec. 6.3) and cloud-API usage (Fig. 15).

Everything is driven by a single RNG seed, so a snapshot is fully
reproducible, and the pool of *unique* models is shared between snapshots so
the temporal analysis (Fig. 5) sees genuinely added/removed/retained models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.android.apk import ApkBuilder, AppPackage
from repro.android.cloud_apis import API_APP_WEIGHTS, CLOUD_APIS, CloudApi, apis_for_provider
from repro.android.dex import DexFile
from repro.android.manifest import AndroidManifest
from repro.android.nativelibs import ACCELERATOR_NATIVE_LIBS, libraries_for_framework
from repro.android.playstore import CATEGORIES, PlayStoreListing, StoreSnapshot
from repro.dnn import finetune
from repro.dnn.graph import Graph
from repro.dnn.layers import Layer
from repro.dnn.quantization import QuantizationScheme, quantize
from repro.dnn.zoo.catalog import CATALOG, ArchitectureEntry, TASK_WEIGHTS, build
from repro.formats.artifact import ModelArtifact
from repro.formats.serialize import serialize_model

__all__ = ["GeneratorConfig", "AppGenerator", "ModelSpec", "ModelPool",
           "CATEGORY_MODEL_WEIGHTS_2021", "CATEGORY_MODEL_WEIGHTS_2020"]

#: Relative number of DNN models per Play category in the 2021 snapshot
#: (shaped after Fig. 4: communication and finance lead, photography next).
CATEGORY_MODEL_WEIGHTS_2021: dict[str, float] = {
    "COMMUNICATION": 160, "FINANCE": 140, "PHOTOGRAPHY": 125,
    "TRAVEL_AND_LOCAL": 95, "BEAUTY": 88, "SOCIAL": 78, "DATING": 62,
    "MEDICAL": 60, "FOOD_AND_DRINK": 56, "SHOPPING": 52,
    "AUTO_AND_VEHICLES": 48, "BUSINESS": 44, "PARENTING": 40,
    "PRODUCTIVITY": 38, "LIFESTYLE": 34, "EDUCATION": 32, "SPORTS": 28,
    "ENTERTAINMENT": 26, "HOUSE_AND_HOME": 24, "LIBRARIES_AND_DEMO": 22,
    "TOOLS": 21, "GAME": 14, "HEALTH_AND_FITNESS": 13,
    "MAPS_AND_NAVIGATION": 11, "NEWS_AND_MAGAZINES": 9, "VIDEO_PLAYERS": 8,
    "ART_AND_DESIGN": 7, "EVENTS": 6, "COMICS": 5, "BOOKS_AND_REFERENCE": 5,
    "PERSONALIZATION": 4, "FAMILY": 4, "ANDROID_WEAR": 3,
}

#: 2020 snapshot weights: photography leads, communication/finance smaller —
#: the shift between the two is what Fig. 5 plots.
CATEGORY_MODEL_WEIGHTS_2020: dict[str, float] = {
    "PHOTOGRAPHY": 120, "BEAUTY": 70, "COMMUNICATION": 55, "SOCIAL": 52,
    "FINANCE": 45, "TRAVEL_AND_LOCAL": 42, "SHOPPING": 35, "DATING": 30,
    "PRODUCTIVITY": 28, "LIFESTYLE": 40, "FOOD_AND_DRINK": 34,
    "AUTO_AND_VEHICLES": 22, "BUSINESS": 20, "PARENTING": 16, "MEDICAL": 15,
    "EDUCATION": 18, "SPORTS": 14, "ENTERTAINMENT": 16, "HOUSE_AND_HOME": 10,
    "LIBRARIES_AND_DEMO": 10, "TOOLS": 14, "GAME": 10, "HEALTH_AND_FITNESS": 8,
    "MAPS_AND_NAVIGATION": 7, "NEWS_AND_MAGAZINES": 8, "VIDEO_PLAYERS": 7,
    "ART_AND_DESIGN": 5, "EVENTS": 4, "COMICS": 3, "BOOKS_AND_REFERENCE": 4,
    "PERSONALIZATION": 3, "FAMILY": 6, "ANDROID_WEAR": 6,
}

#: Framework share of the models found in each snapshot (Sec. 4.3 / 4.6).
FRAMEWORK_FRACTIONS_2021: dict[str, float] = {
    "tflite": 0.8619, "caffe": 0.1056, "ncnn": 0.0276, "tf": 0.0030, "snpe": 0.0018,
}
FRAMEWORK_FRACTIONS_2020: dict[str, float] = {
    "tflite": 0.8160, "caffe": 0.1270, "ncnn": 0.0475, "tf": 0.0110, "snpe": 0.0,
}

_GENERIC_MODEL_STEMS = ("model", "graph", "net", "data", "frozen_graph", "predictor",
                        "detector_v2", "module")


@dataclass(frozen=True)
class ModelSpec:
    """Definition of one *unique* model in the shared pool."""

    pool_index: int
    entry_index: int
    variant: str
    framework: str
    weight_seed: int
    file_stem: str
    quantization: Optional[str] = None
    sparsity: float = 0.0
    finetuned_from: Optional[int] = None
    finetune_layers: int = 0

    @property
    def entry(self) -> ArchitectureEntry:
        """Catalogue entry this spec instantiates."""
        return CATALOG[self.entry_index]

    @property
    def task(self) -> str:
        """Task label of the underlying architecture."""
        return self.entry.task


class ModelPool:
    """Deterministic pool of unique model definitions shared across snapshots.

    Pool entry ``i`` is fully determined by ``(pool_seed, i)``, so two
    snapshots that reference the same index get byte-identical model files —
    which is what makes the cross-snapshot added/removed analysis meaningful.
    """

    def __init__(self, pool_seed: int = 7, sparsity_target: float = 0.0315) -> None:
        self.pool_seed = pool_seed
        self.sparsity_target = sparsity_target
        self._entry_weights = self._architecture_weights()
        self._graph_cache: dict[int, Graph] = {}
        self._artifact_cache: dict[int, ModelArtifact] = {}
        self._spec_cache: dict[int, ModelSpec] = {}

    @staticmethod
    def _architecture_weights() -> np.ndarray:
        weights = np.array(
            [TASK_WEIGHTS[entry.task] * entry.popularity for entry in CATALOG],
            dtype=float,
        )
        return weights / weights.sum()

    def spec(self, index: int) -> ModelSpec:
        """Deterministically derive the spec for pool entry ``index``."""
        if index in self._spec_cache:
            return self._spec_cache[index]
        rng = np.random.default_rng((self.pool_seed, index))
        entry_index = self._entry_index_for(index, rng)
        entry = CATALOG[entry_index]
        variant = str(rng.choice(sorted(entry.size_variants))) if entry.size_variants else ""
        framework = self._sample_framework(rng)

        # ~67% of model files carry a task-hinting name (Sec. 4.4).
        if rng.random() < 0.67:
            file_stem = str(rng.choice(entry.name_templates))
        else:
            file_stem = str(rng.choice(_GENERIC_MODEL_STEMS))
        file_stem = f"{file_stem}_{index}"

        # Quantisation adoption (Sec. 6.1): ~10.3% full-int8 (dequantize layer
        # + int8 activations), another ~10% weight-only int8.
        draw = rng.random()
        if draw < 0.103:
            quantization: Optional[str] = QuantizationScheme.FULL_INT8.value
        elif draw < 0.2027:
            quantization = QuantizationScheme.WEIGHT_ONLY.value
        else:
            quantization = None

        sparsity = float(np.clip(rng.normal(self.sparsity_target, 0.01), 0.0, 0.15))

        # Fine-tuning (Sec. 4.5): ~9% of unique models are derivatives of an
        # earlier pool entry; roughly half of those differ in <= 3 layers.
        finetuned_from: Optional[int] = None
        finetune_layers = 0
        if index > 4 and rng.random() < 0.0902:
            finetuned_from = int(rng.integers(0, index))
            if rng.random() < 0.047 / 0.0902:
                finetune_layers = int(rng.integers(1, 4))
            else:
                finetune_layers = int(rng.integers(4, 9))

        spec = ModelSpec(
            pool_index=index,
            entry_index=entry_index,
            variant=variant,
            framework=framework,
            weight_seed=int(rng.integers(0, 2**31 - 1)),
            file_stem=file_stem,
            quantization=quantization,
            sparsity=sparsity,
            finetuned_from=finetuned_from,
            finetune_layers=finetune_layers,
        )
        self._spec_cache[index] = spec
        return spec

    def _entry_index_for(self, index: int, rng: np.random.Generator) -> int:
        """Pick the architecture for pool entry ``index``.

        The first pool entries cover every Table 3 task once, ordered by the
        task's popularity (so even a heavily-scaled-down snapshot contains all
        modalities, as the real dataset does); later entries sample by the
        task-weighted popularity distribution.
        """
        tasks_by_weight = sorted(TASK_WEIGHTS, key=lambda task: -TASK_WEIGHTS[task])
        if index < len(tasks_by_weight):
            task = tasks_by_weight[index]
            candidates = [i for i, entry in enumerate(CATALOG) if entry.task == task]
            popularity = np.array([CATALOG[i].popularity for i in candidates], float)
            popularity /= popularity.sum()
            return int(rng.choice(candidates, p=popularity))
        return int(rng.choice(len(CATALOG), p=self._entry_weights))

    @staticmethod
    def _sample_framework(rng: np.random.Generator) -> str:
        names = list(FRAMEWORK_FRACTIONS_2021)
        probabilities = np.array([FRAMEWORK_FRACTIONS_2021[name] for name in names])
        probabilities = probabilities / probabilities.sum()
        return str(rng.choice(names, p=probabilities))

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def graph(self, index: int) -> Graph:
        """Build (and cache) the graph for pool entry ``index``."""
        if index in self._graph_cache:
            return self._graph_cache[index]
        spec = self.spec(index)
        if spec.finetuned_from is not None:
            base = self.graph(spec.finetuned_from)
            graph = finetune.finetune_last_layers(
                base, num_layers=max(1, min(spec.finetune_layers,
                                            sum(1 for l in base.layers if l.weights))),
                seed_offset=spec.pool_index + 1,
                name=spec.file_stem,
            )
            graph = graph.with_metadata(framework=spec.framework)
        else:
            graph = build(
                spec.entry,
                name=spec.file_stem,
                variant=spec.variant or None,
                framework=spec.framework,
                weight_seed=spec.weight_seed,
            )
            graph = self._apply_sparsity(graph, spec.sparsity)
            if spec.quantization is not None:
                graph = quantize(graph, QuantizationScheme(spec.quantization))
        self._graph_cache[index] = graph
        return graph

    def artifact(self, index: int) -> ModelArtifact:
        """Serialise (and cache) the model files for pool entry ``index``."""
        if index in self._artifact_cache:
            return self._artifact_cache[index]
        spec = self.spec(index)
        artifact = serialize_model(self.graph(index), spec.framework, spec.file_stem)
        self._artifact_cache[index] = artifact
        return artifact

    @staticmethod
    def _apply_sparsity(graph: Graph, sparsity: float) -> Graph:
        if sparsity <= 0.0:
            return graph

        def convert(layer: Layer) -> Layer:
            if not layer.weights:
                return layer
            return Layer(
                name=layer.name,
                op=layer.op,
                inputs=layer.inputs,
                output_spec=layer.output_spec,
                weights=tuple(w.with_sparsity(sparsity) for w in layer.weights),
                attrs=dict(layer.attrs),
                activation_dtype=layer.activation_dtype,
                fused_activation=layer.fused_activation,
            )

        return graph.map_layers(convert)


@dataclass
class GeneratorConfig:
    """Target statistics for one synthetic snapshot.

    The defaults of :meth:`snapshot_2021` and :meth:`snapshot_2020` encode the
    paper's Table 2 numbers; ``scale`` shrinks every count proportionally so
    tests can run on a miniature store while benchmarks run at full size.
    """

    label: str
    date: str
    total_apps: int
    apps_with_models: int
    apps_with_frameworks: int
    total_models: int
    unique_models: int
    category_weights: Mapping[str, float]
    cloud_api_apps: int
    cloud_google_fraction: float
    nnapi_apps: int
    xnnpack_apps: int
    snpe_apps: int
    pool_seed: int = 7
    seed: int = 2021
    scale: float = 1.0
    pool_start: int = 0
    retained_pool_range: Optional[tuple[int, int]] = None
    retained_fraction: float = 0.65

    @classmethod
    def snapshot_2021(cls, scale: float = 1.0) -> "GeneratorConfig":
        """Configuration matching the 4th of April 2021 crawl (Table 2)."""
        return cls(
            label="2021",
            date="2021-04-04",
            total_apps=16653,
            apps_with_models=342,
            apps_with_frameworks=377,
            total_models=1666,
            unique_models=318,
            category_weights=CATEGORY_MODEL_WEIGHTS_2021,
            cloud_api_apps=524,
            cloud_google_fraction=452 / 524,
            nnapi_apps=71,
            xnnpack_apps=1,
            snpe_apps=3,
            seed=2021,
            scale=scale,
            pool_start=129,
            retained_pool_range=(0, 129),
            retained_fraction=0.65,
        )

    @classmethod
    def snapshot_2020(cls, scale: float = 1.0) -> "GeneratorConfig":
        """Configuration matching the 14th of February 2020 crawl (Table 2)."""
        return cls(
            label="2020",
            date="2020-02-14",
            total_apps=16964,
            apps_with_models=165,
            apps_with_frameworks=236,
            total_models=821,
            unique_models=129,
            category_weights=CATEGORY_MODEL_WEIGHTS_2020,
            cloud_api_apps=225,
            cloud_google_fraction=0.85,
            nnapi_apps=30,
            xnnpack_apps=0,
            snpe_apps=1,
            seed=2020,
            scale=scale,
            pool_start=0,
            retained_pool_range=None,
        )

    def scaled(self, count: int, minimum: int = 0) -> int:
        """Scale a target count by the configured scale factor."""
        if self.scale >= 1.0:
            return count
        return max(minimum, int(round(count * self.scale)))


class AppGenerator:
    """Generates a synthetic store snapshot from a :class:`GeneratorConfig`."""

    def __init__(self, config: GeneratorConfig, pool: Optional[ModelPool] = None) -> None:
        self.config = config
        self.pool = pool or ModelPool(pool_seed=config.pool_seed)
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------ #
    # Pool index selection
    # ------------------------------------------------------------------ #
    def _select_pool_indices(self) -> list[int]:
        """Pick which unique models (pool indices) exist in this snapshot."""
        config = self.config
        target_unique = config.scaled(config.unique_models, minimum=5)
        indices: list[int] = []
        if config.retained_pool_range is not None:
            low, high = config.retained_pool_range
            # The previous snapshot only used a scaled prefix of its range, so
            # retain from that prefix to guarantee genuine cross-snapshot overlap.
            high = low + config.scaled(high - low, minimum=1)
            previous = np.arange(low, high)
            keep = max(1, int(round(len(previous) * config.retained_fraction)))
            retained = self._rng.choice(previous, size=min(keep, len(previous)),
                                        replace=False)
            indices.extend(int(i) for i in sorted(retained))
        next_index = config.pool_start
        while len(indices) < target_unique:
            indices.append(next_index)
            next_index += 1
        return indices[:target_unique]

    def _instance_indices(self, pool_indices: Sequence[int]) -> list[int]:
        """Expand unique models into the full instance list via a Zipf-like law."""
        config = self.config
        total_instances = config.scaled(config.total_models, minimum=len(pool_indices))
        ranks = np.arange(1, len(pool_indices) + 1, dtype=float)
        weights = 1.0 / np.power(ranks, 0.9)
        weights /= weights.sum()
        # Every unique model appears at least once; the remainder is sampled
        # with the skewed popularity so a few off-the-shelf models dominate.
        instances = list(pool_indices)
        extra = total_instances - len(pool_indices)
        if extra > 0:
            shuffled = self._rng.permutation(pool_indices)
            sampled = self._rng.choice(shuffled, size=extra, p=weights)
            instances.extend(int(i) for i in sampled)
        self._rng.shuffle(instances)
        return instances

    # ------------------------------------------------------------------ #
    # App assembly helpers
    # ------------------------------------------------------------------ #
    def _listing(self, package: str, title: str, category: str,
                 rank: int) -> PlayStoreListing:
        downloads = int(5e8 / (rank + 1) ** 1.1) + int(self._rng.integers(1000, 100000))
        rating = float(np.clip(self._rng.normal(4.2, 0.4), 1.0, 5.0))
        reviews = max(10, int(downloads * float(self._rng.uniform(0.001, 0.01))))
        return PlayStoreListing(
            package=package,
            title=title,
            category=category,
            downloads=downloads,
            rating=round(rating, 2),
            num_reviews=reviews,
            developer=f"dev.{package.split('.')[-2]}",
        )

    @staticmethod
    def _base_manifest(package: str) -> AndroidManifest:
        return AndroidManifest(
            package=package,
            version_code=1,
            permissions=("android.permission.INTERNET", "android.permission.CAMERA"),
        )

    def _ml_app_factory(self, package: str, model_indices: Sequence[int],
                        accelerators: Sequence[str],
                        cloud_apis: Sequence[CloudApi]) -> Callable[[], AppPackage]:
        """Blueprint for an app that ships on-device models."""
        pool = self.pool

        def factory() -> AppPackage:
            dex = DexFile()
            frameworks = set()
            invocations = []
            for index in model_indices:
                spec = pool.spec(index)
                frameworks.add(spec.framework)
            if "tflite" in frameworks:
                invocations.append(
                    "Lorg/tensorflow/lite/Interpreter;->run(Ljava/lang/Object;Ljava/lang/Object;)V")
            if "caffe" in frameworks:
                invocations.append("Lcom/caffe/CaffeMobile;->predictImage(Ljava/lang/String;)[F")
            if "ncnn" in frameworks:
                invocations.append("Lcom/tencent/ncnn/Net;->forward(Lcom/tencent/ncnn/Mat;)I")
            if "snpe" in frameworks:
                invocations.append(
                    "Lcom/qualcomm/qti/snpe/NeuralNetwork;->execute(Ljava/util/Map;)Ljava/util/Map;")
            if "tf" in frameworks:
                invocations.append(
                    "Lorg/tensorflow/contrib/android/TensorFlowInferenceInterface;->run([Ljava/lang/String;)V")
            for accelerator in accelerators:
                if accelerator == "nnapi":
                    invocations.append(
                        "Lorg/tensorflow/lite/nnapi/NnApiDelegate;-><init>()V")
                elif accelerator == "xnnpack":
                    invocations.append(
                        "Lorg/tensorflow/lite/Interpreter$Options;->setUseXNNPACK(Z)Lorg/tensorflow/lite/Interpreter$Options;")
            for api in cloud_apis:
                invocations.append(api.example_invocation)
            dex.add_invocations(f"{package}.MainActivity", invocations)

            builder = ApkBuilder(self._base_manifest(package), dex)
            for framework in frameworks:
                for library in libraries_for_framework(framework):
                    builder.add_native_library(library)
            for accelerator in accelerators:
                for library in ACCELERATOR_NATIVE_LIBS.get(accelerator, ())[:1]:
                    builder.add_native_library(library)
            for index in model_indices:
                artifact = pool.artifact(index)
                for file_name, data in artifact.files.items():
                    builder.add_asset(f"models/{file_name}", data)
            return builder.build()

        return factory

    def _framework_only_factory(self, package: str) -> Callable[[], AppPackage]:
        """Blueprint for an app with ML libraries but obfuscated/remote models."""
        rng_value = int(self._rng.integers(0, 2**31 - 1))

        def factory() -> AppPackage:
            dex = DexFile()
            dex.add_invocations(
                f"{package}.InferenceService",
                ("Lorg/tensorflow/lite/Interpreter;->run(Ljava/lang/Object;Ljava/lang/Object;)V",),
            )
            builder = ApkBuilder(self._base_manifest(package), dex)
            for library in libraries_for_framework("tflite"):
                builder.add_native_library(library)
            # Encrypted model blob: has a candidate extension but no valid
            # signature, so validation rejects it (Sec. 3.1 limitations).
            encrypted = np.random.default_rng(rng_value).integers(
                0, 256, size=4096, dtype=np.uint8).tobytes()
            builder.add_asset("models/encrypted_model.tflite", encrypted)
            return builder.build()

        return factory

    def _cloud_only_factory(self, package: str,
                            cloud_apis: Sequence[CloudApi]) -> Callable[[], AppPackage]:
        """Blueprint for an app that only uses cloud ML APIs."""
        apis = tuple(cloud_apis)

        def factory() -> AppPackage:
            dex = DexFile()
            dex.add_invocations(
                f"{package}.CloudMlClient", tuple(api.example_invocation for api in apis))
            builder = ApkBuilder(self._base_manifest(package), dex)
            return builder.build()

        return factory

    def _plain_factory(self, package: str) -> Callable[[], AppPackage]:
        """Blueprint for an app without any ML usage."""

        def factory() -> AppPackage:
            dex = DexFile()
            dex.add_invocations(
                f"{package}.MainActivity",
                ("Landroid/app/Activity;->onCreate(Landroid/os/Bundle;)V",),
            )
            builder = ApkBuilder(self._base_manifest(package), dex)
            builder.add_resource("layout/activity_main.xml", b"<LinearLayout />")
            return builder.build()

        return factory

    # ------------------------------------------------------------------ #
    # Cloud API sampling
    # ------------------------------------------------------------------ #
    def _sample_cloud_apis(self, provider: str) -> tuple[CloudApi, ...]:
        candidates = apis_for_provider(provider)
        weights = np.array([API_APP_WEIGHTS.get(api.name, 5) for api in candidates], float)
        weights /= weights.sum()
        count = int(self._rng.integers(1, 3))
        chosen = self._rng.choice(len(candidates), size=min(count, len(candidates)),
                                  replace=False, p=weights)
        return tuple(candidates[int(i)] for i in chosen)

    # ------------------------------------------------------------------ #
    # Snapshot generation
    # ------------------------------------------------------------------ #
    def generate(self) -> StoreSnapshot:
        """Build the full snapshot: listings plus lazily-built app packages."""
        config = self.config
        snapshot = StoreSnapshot(label=config.label, date=config.date)

        pool_indices = self._select_pool_indices()
        instances = self._instance_indices(pool_indices)

        categories = list(config.category_weights)
        category_probabilities = np.array(
            [config.category_weights[c] for c in categories], dtype=float)
        category_probabilities /= category_probabilities.sum()

        # Partition model instances into apps with a skewed models-per-app law.
        target_ml_apps = config.scaled(config.apps_with_models, minimum=3)
        mean_models_per_app = max(1.0, len(instances) / target_ml_apps)
        app_model_lists: list[list[int]] = []
        cursor = 0
        while cursor < len(instances):
            size = max(1, int(self._rng.geometric(1.0 / mean_models_per_app)))
            size = min(size, len(instances) - cursor)
            app_model_lists.append(instances[cursor:cursor + size])
            cursor += size

        nnapi_quota = config.scaled(config.nnapi_apps)
        xnnpack_quota = config.scaled(config.xnnpack_apps)
        snpe_quota = config.scaled(config.snpe_apps)
        cloud_ml_overlap = int(0.2 * config.scaled(config.cloud_api_apps, minimum=1))

        rank = 0
        for app_index, model_indices in enumerate(app_model_lists):
            category = str(self._rng.choice(categories, p=category_probabilities))
            package = f"com.synth.{category.lower()}.ml{app_index:04d}.app"
            accelerators: list[str] = []
            if nnapi_quota > 0:
                accelerators.append("nnapi")
                nnapi_quota -= 1
            elif xnnpack_quota > 0:
                accelerators.append("xnnpack")
                xnnpack_quota -= 1
            elif snpe_quota > 0:
                accelerators.append("snpe")
                snpe_quota -= 1
            cloud_apis: tuple[CloudApi, ...] = ()
            if app_index < cloud_ml_overlap:
                provider = "Google" if self._rng.random() < config.cloud_google_fraction else "AWS"
                cloud_apis = self._sample_cloud_apis(provider)
            listing = self._listing(package, f"ML App {app_index}", category, rank)
            snapshot.add_app(listing, self._ml_app_factory(
                package, model_indices, accelerators, cloud_apis))
            rank += 1

        # Apps with framework libraries but no extractable models.
        framework_only = max(
            0, config.scaled(config.apps_with_frameworks) - len(app_model_lists))
        if framework_only == 0 and config.apps_with_frameworks > config.apps_with_models:
            framework_only = config.scaled(
                config.apps_with_frameworks - config.apps_with_models, minimum=1)
        for index in range(framework_only):
            category = str(self._rng.choice(categories, p=category_probabilities))
            package = f"com.synth.{category.lower()}.lib{index:04d}.app"
            listing = self._listing(package, f"Framework App {index}", category, rank)
            snapshot.add_app(listing, self._framework_only_factory(package))
            rank += 1

        # Cloud-API-only apps (the remainder of Fig. 15's population).
        cloud_only = max(0, config.scaled(config.cloud_api_apps, minimum=1) - cloud_ml_overlap)
        for index in range(cloud_only):
            provider = "Google" if self._rng.random() < config.cloud_google_fraction else "AWS"
            category = str(self._rng.choice(CATEGORIES))
            package = f"com.synth.{category.lower()}.cloud{index:04d}.app"
            listing = self._listing(package, f"Cloud App {index}", category, rank)
            snapshot.add_app(listing, self._cloud_only_factory(
                package, self._sample_cloud_apis(provider)))
            rank += 1

        # Plain apps filling the rest of the top charts.
        remaining = max(0, config.scaled(config.total_apps, minimum=rank) - rank)
        for index in range(remaining):
            category = str(self._rng.choice(CATEGORIES))
            package = f"com.synth.{category.lower()}.plain{index:05d}.app"
            listing = self._listing(package, f"App {index}", category, rank)
            snapshot.add_app(listing, self._plain_factory(package))
            rank += 1

        return snapshot
