"""Known cloud-based ML API call signatures (Sec. 3.2, Fig. 15).

gaugeNN recognises invocations of Google Firebase ML / Google Cloud and
Amazon AWS machine-learning services by string-matching decompiled smali code
against known class prefixes.  The table below covers every API category that
appears in Fig. 15, each with the smali-level class prefix used for matching
and a representative invocation target the app generator can inject.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CloudApi", "CLOUD_APIS", "api_by_name", "apis_for_provider",
           "tabulate_api_usage"]


@dataclass(frozen=True)
class CloudApi:
    """One cloud ML API category as reported in Fig. 15."""

    name: str
    provider: str
    smali_prefix: str
    example_invocation: str


CLOUD_APIS: tuple[CloudApi, ...] = (
    # --- Google (Firebase ML / ML Kit / Google Cloud) -----------------------
    CloudApi("Vision/Barcode", "Google",
             "Lcom/google/mlkit/vision/barcode",
             "Lcom/google/mlkit/vision/barcode/BarcodeScanner;->process(Lcom/google/mlkit/vision/common/InputImage;)Lcom/google/android/gms/tasks/Task;"),
    CloudApi("Vision/Face", "Google",
             "Lcom/google/mlkit/vision/face",
             "Lcom/google/mlkit/vision/face/FaceDetector;->process(Lcom/google/mlkit/vision/common/InputImage;)Lcom/google/android/gms/tasks/Task;"),
    CloudApi("Vision/Text", "Google",
             "Lcom/google/mlkit/vision/text",
             "Lcom/google/mlkit/vision/text/TextRecognizer;->process(Lcom/google/mlkit/vision/common/InputImage;)Lcom/google/android/gms/tasks/Task;"),
    CloudApi("Vision/Object Detection", "Google",
             "Lcom/google/mlkit/vision/objects",
             "Lcom/google/mlkit/vision/objects/ObjectDetector;->process(Lcom/google/mlkit/vision/common/InputImage;)Lcom/google/android/gms/tasks/Task;"),
    CloudApi("Vision/Image Labeler", "Google",
             "Lcom/google/mlkit/vision/label",
             "Lcom/google/mlkit/vision/label/ImageLabeler;->process(Lcom/google/mlkit/vision/common/InputImage;)Lcom/google/android/gms/tasks/Task;"),
    CloudApi("Vision/custom model", "Google",
             "Lcom/google/firebase/ml/custom",
             "Lcom/google/firebase/ml/custom/FirebaseModelInterpreter;->run(Lcom/google/firebase/ml/custom/FirebaseModelInputs;Lcom/google/firebase/ml/custom/FirebaseModelInputOutputOptions;)Lcom/google/android/gms/tasks/Task;"),
    CloudApi("Speech", "Google",
             "Lcom/google/cloud/speech",
             "Lcom/google/cloud/speech/v1/SpeechClient;->recognize(Lcom/google/cloud/speech/v1/RecognitionConfig;Lcom/google/cloud/speech/v1/RecognitionAudio;)Lcom/google/cloud/speech/v1/RecognizeResponse;"),
    CloudApi("Natural Language/Translate", "Google",
             "Lcom/google/mlkit/nl/translate",
             "Lcom/google/mlkit/nl/translate/Translator;->translate(Ljava/lang/String;)Lcom/google/android/gms/tasks/Task;"),
    CloudApi("Natural Language/LanguageID", "Google",
             "Lcom/google/mlkit/nl/languageid",
             "Lcom/google/mlkit/nl/languageid/LanguageIdentifier;->identifyLanguage(Ljava/lang/String;)Lcom/google/android/gms/tasks/Task;"),
    CloudApi("Natural Language/Smart Reply", "Google",
             "Lcom/google/mlkit/nl/smartreply",
             "Lcom/google/mlkit/nl/smartreply/SmartReplyGenerator;->suggestReplies(Ljava/util/List;)Lcom/google/android/gms/tasks/Task;"),
    # --- Amazon (AWS ML services) --------------------------------------------
    CloudApi("Rekognition (face recognition)", "AWS",
             "Lcom/amazonaws/services/rekognition",
             "Lcom/amazonaws/services/rekognition/AmazonRekognitionClient;->detectFaces(Lcom/amazonaws/services/rekognition/model/DetectFacesRequest;)Lcom/amazonaws/services/rekognition/model/DetectFacesResult;"),
    CloudApi("Polly (text-to-speech)", "AWS",
             "Lcom/amazonaws/services/polly",
             "Lcom/amazonaws/services/polly/AmazonPollyPresigningClient;->getPresignedSynthesizeSpeechUrl(Lcom/amazonaws/services/polly/model/SynthesizeSpeechPresignRequest;)Ljava/net/URL;"),
    CloudApi("Kinesis (video analytics)", "AWS",
             "Lcom/amazonaws/services/kinesisvideo",
             "Lcom/amazonaws/services/kinesisvideo/AWSKinesisVideoClient;->putMedia(Lcom/amazonaws/services/kinesisvideo/model/PutMediaRequest;)V"),
    CloudApi("Lex (chatbot)", "AWS",
             "Lcom/amazonaws/mobileconnectors/lex",
             "Lcom/amazonaws/mobileconnectors/lex/interactionkit/InteractionClient;->textInForTextOut(Ljava/lang/String;Ljava/util/Map;)V"),
)

#: Fig. 15 app counts per API category in the 2021 snapshot (approximate bar
#: heights used to calibrate the synthetic population).
API_APP_WEIGHTS: dict[str, int] = {
    "Vision/Barcode": 123,
    "Vision/Face": 101,
    "Vision/Text": 82,
    "Lex (chatbot)": 30,
    "Kinesis (video analytics)": 26,
    "Vision/Object Detection": 45,
    "Speech": 38,
    "Natural Language/Translate": 32,
    "Vision/custom model": 28,
    "Vision/Image Labeler": 26,
    "Natural Language/LanguageID": 22,
    "Natural Language/Smart Reply": 20,
    "Polly (text-to-speech)": 12,
    "Rekognition (face recognition)": 11,
}


def api_by_name(name: str) -> CloudApi:
    """Look up an API category by its Fig. 15 name."""
    for api in CLOUD_APIS:
        if api.name == name:
            return api
    raise KeyError(f"unknown cloud API {name!r}")


def apis_for_provider(provider: str) -> tuple[CloudApi, ...]:
    """All API categories offered by a provider (``Google`` or ``AWS``)."""
    return tuple(api for api in CLOUD_APIS if api.provider == provider)


def tabulate_api_usage(api_names, min_apps: int = 0) -> dict[str, dict[str, object]]:
    """Fig. 15 table from a flat stream of per-app API-name occurrences.

    ``api_names`` yields one name per (app, API) pair, in population order.
    Returns ``{api: {"apps": count, "provider": name}}`` sorted by app count
    (descending, stable), dropping APIs below ``min_apps``.  Both the
    in-memory reports layer and the results-store serving layer build their
    cloud-API tables through this single implementation, which is what keeps
    the two paths bit-for-bit identical.
    """
    counts: dict[str, dict[str, object]] = {}
    for api_name in api_names:
        entry = counts.setdefault(api_name, {"apps": 0, "provider": ""})
        entry["apps"] = int(entry["apps"]) + 1
    for api_name, entry in counts.items():
        entry["provider"] = api_by_name(api_name).provider
    filtered = {name: entry for name, entry in counts.items()
                if int(entry["apps"]) >= min_apps}
    return dict(sorted(filtered.items(), key=lambda item: int(item[1]["apps"]),
                       reverse=True))
