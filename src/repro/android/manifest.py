"""Minimal AndroidManifest model: package identity, version and permissions."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AndroidManifest"]


@dataclass(frozen=True)
class AndroidManifest:
    """The subset of AndroidManifest.xml that the analysis pipeline consumes."""

    package: str
    version_code: int = 1
    version_name: str = "1.0.0"
    min_sdk: int = 23
    target_sdk: int = 30
    permissions: tuple[str, ...] = field(default_factory=tuple)

    def to_xml(self) -> str:
        """Render as an (uncompiled) AndroidManifest.xml document."""
        permission_lines = "\n".join(
            f'    <uses-permission android:name="{name}" />' for name in self.permissions
        )
        return (
            '<?xml version="1.0" encoding="utf-8"?>\n'
            f'<manifest package="{self.package}" android:versionCode="{self.version_code}" '
            f'android:versionName="{self.version_name}">\n'
            f'    <uses-sdk android:minSdkVersion="{self.min_sdk}" '
            f'android:targetSdkVersion="{self.target_sdk}" />\n'
            f"{permission_lines}\n"
            "    <application />\n"
            "</manifest>\n"
        )

    @classmethod
    def from_xml(cls, text: str) -> "AndroidManifest":
        """Parse the fields written by :meth:`to_xml`."""
        import re

        package = re.search(r'package="([^"]+)"', text)
        version_code = re.search(r'versionCode="(\d+)"', text)
        version_name = re.search(r'versionName="([^"]+)"', text)
        min_sdk = re.search(r'minSdkVersion="(\d+)"', text)
        target_sdk = re.search(r'targetSdkVersion="(\d+)"', text)
        permissions = tuple(re.findall(r'<uses-permission android:name="([^"]+)"', text))
        if package is None:
            raise ValueError("manifest is missing a package attribute")
        return cls(
            package=package.group(1),
            version_code=int(version_code.group(1)) if version_code else 1,
            version_name=version_name.group(1) if version_name else "1.0.0",
            min_sdk=int(min_sdk.group(1)) if min_sdk else 23,
            target_sdk=int(target_sdk.group(1)) if target_sdk else 30,
            permissions=permissions,
        )
