"""Synthetic Google Play Store: categories, top charts, metadata and downloads.

The paper crawls the Play Store's top-free charts (up to 500 apps per
category) and stores per-app metadata for offline analytics (Sec. 3.1).  The
:class:`PlayStore` here serves the same artefacts — listings per category and
downloadable :class:`~repro.android.apk.AppPackage` objects — from a synthetic
population produced by :class:`~repro.android.appgen.AppGenerator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from repro.android.apk import AppPackage

__all__ = ["CATEGORIES", "TOP_CHART_LIMIT", "PlayStoreListing", "StoreSnapshot", "PlayStore"]

#: Google Play categories used across Figs. 4 and 5.
CATEGORIES: tuple[str, ...] = (
    "COMMUNICATION",
    "FINANCE",
    "PHOTOGRAPHY",
    "TRAVEL_AND_LOCAL",
    "BEAUTY",
    "SOCIAL",
    "DATING",
    "MEDICAL",
    "FOOD_AND_DRINK",
    "SHOPPING",
    "AUTO_AND_VEHICLES",
    "BUSINESS",
    "PARENTING",
    "PRODUCTIVITY",
    "LIFESTYLE",
    "EDUCATION",
    "SPORTS",
    "ENTERTAINMENT",
    "HOUSE_AND_HOME",
    "LIBRARIES_AND_DEMO",
    "TOOLS",
    "GAME",
    "HEALTH_AND_FITNESS",
    "MAPS_AND_NAVIGATION",
    "NEWS_AND_MAGAZINES",
    "VIDEO_PLAYERS",
    "ART_AND_DESIGN",
    "EVENTS",
    "COMICS",
    "BOOKS_AND_REFERENCE",
    "PERSONALIZATION",
    "FAMILY",
    "ANDROID_WEAR",
    "WEATHER",
    "MUSIC_AND_AUDIO",
)

#: Maximum number of apps returned per category top chart.
TOP_CHART_LIMIT = 500


@dataclass(frozen=True)
class PlayStoreListing:
    """Store metadata for one application."""

    package: str
    title: str
    category: str
    downloads: int
    rating: float
    num_reviews: int
    price: float = 0.0
    developer: str = ""

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")
        if not 0.0 <= self.rating <= 5.0:
            raise ValueError(f"rating must be within [0, 5], got {self.rating}")


@dataclass
class StoreSnapshot:
    """One dated crawl-able state of the store.

    ``packages`` maps a package name to a zero-argument callable that builds
    the app's :class:`AppPackage` on demand, so that a 16k-app snapshot does
    not materialise 16k zip archives until they are actually downloaded.
    """

    label: str
    date: str
    listings: dict[str, PlayStoreListing] = field(default_factory=dict)
    packages: dict[str, Callable[[], AppPackage]] = field(default_factory=dict)

    def add_app(self, listing: PlayStoreListing,
                package_factory: Callable[[], AppPackage]) -> None:
        """Register an app with its metadata and lazily-built package."""
        if listing.package in self.listings:
            raise ValueError(f"duplicate package {listing.package!r}")
        self.listings[listing.package] = listing
        self.packages[listing.package] = package_factory

    @property
    def total_apps(self) -> int:
        """Number of apps in the snapshot."""
        return len(self.listings)

    def categories(self) -> tuple[str, ...]:
        """Categories with at least one listed app."""
        present = {listing.category for listing in self.listings.values()}
        return tuple(category for category in CATEGORIES if category in present)


class PlayStore:
    """Serves snapshots the way the real store serves gaugeNN's crawler."""

    def __init__(self, snapshots: Iterable[StoreSnapshot] = ()) -> None:
        self._snapshots: dict[str, StoreSnapshot] = {}
        for snapshot in snapshots:
            self.add_snapshot(snapshot)

    def add_snapshot(self, snapshot: StoreSnapshot) -> None:
        """Register a snapshot under its label."""
        if snapshot.label in self._snapshots:
            raise ValueError(f"duplicate snapshot label {snapshot.label!r}")
        self._snapshots[snapshot.label] = snapshot

    def snapshot_labels(self) -> tuple[str, ...]:
        """Labels of all registered snapshots, oldest first."""
        return tuple(sorted(self._snapshots))

    def snapshot(self, label: str) -> StoreSnapshot:
        """Look up a snapshot by label."""
        try:
            return self._snapshots[label]
        except KeyError:
            raise KeyError(f"no snapshot labelled {label!r}") from None

    # ------------------------------------------------------------------ #
    # Crawler-facing API
    # ------------------------------------------------------------------ #
    def top_free_apps(self, label: str, category: str,
                      limit: int = TOP_CHART_LIMIT) -> tuple[PlayStoreListing, ...]:
        """Top-free chart for a category, sorted by downloads (capped at 500)."""
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        limit = min(limit, TOP_CHART_LIMIT)
        snapshot = self.snapshot(label)
        listings = [
            listing for listing in snapshot.listings.values()
            if listing.category == category
        ]
        listings.sort(key=lambda listing: listing.downloads, reverse=True)
        return tuple(listings[:limit])

    def listing(self, label: str, package: str) -> PlayStoreListing:
        """Store metadata for one app."""
        snapshot = self.snapshot(label)
        try:
            return snapshot.listings[package]
        except KeyError:
            raise KeyError(f"package {package!r} not in snapshot {label!r}") from None

    def download(self, label: str, package: str) -> AppPackage:
        """Download (build) the full app package: apk, OBBs and asset packs."""
        snapshot = self.snapshot(label)
        try:
            factory = snapshot.packages[package]
        except KeyError:
            raise KeyError(f"package {package!r} not in snapshot {label!r}") from None
        return factory()
