"""Android substrate: app packages, code, the Play Store and the app generator.

This subpackage stands in for the parts of the study we cannot access offline:
the Google Play Store, the APK/OBB/App-Bundle packaging machinery and the
compiled app code gaugeNN decompiles.  The synthetic population generator
(:mod:`repro.android.appgen`) produces store snapshots whose DNN adoption
statistics are calibrated to the paper's Tables 2-3 and Figs. 4-5, so the
measurement pipeline downstream exercises the same code paths it would on the
real store.
"""

from repro.android.apk import AppPackage, ApkBuilder, ExpansionFile, AssetPack, APK_SIZE_LIMIT
from repro.android.dex import DexFile, SmaliClass, SmaliMethod
from repro.android.manifest import AndroidManifest
from repro.android.playstore import PlayStore, PlayStoreListing, StoreSnapshot, CATEGORIES
from repro.android.appgen import AppGenerator, GeneratorConfig

__all__ = [
    "AppPackage",
    "ApkBuilder",
    "ExpansionFile",
    "AssetPack",
    "APK_SIZE_LIMIT",
    "DexFile",
    "SmaliClass",
    "SmaliMethod",
    "AndroidManifest",
    "PlayStore",
    "PlayStoreListing",
    "StoreSnapshot",
    "CATEGORIES",
    "AppGenerator",
    "GeneratorConfig",
]
