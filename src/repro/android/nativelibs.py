"""Native library (.so) names shipped by ML frameworks and accelerators.

gaugeNN tracks applications as ML-powered even when their models are
encrypted, obfuscated or downloaded on demand, "by means of library inclusion
in the application code and native libraries" (Sec. 3.1, following Xu et al.).
It also detects hardware-specific acceleration (NNAPI / XNNPACK / SNPE usage,
Sec. 6.3) from the presence of the corresponding delegates.
"""

from __future__ import annotations

__all__ = [
    "FRAMEWORK_NATIVE_LIBS",
    "ACCELERATOR_NATIVE_LIBS",
    "libraries_for_framework",
    "framework_for_library",
    "accelerator_for_library",
]

#: Framework -> native libraries commonly bundled under lib/<abi>/.
FRAMEWORK_NATIVE_LIBS: dict[str, tuple[str, ...]] = {
    "tflite": ("libtensorflowlite_jni.so", "libtensorflowlite.so", "libtflite_gpu_jni.so"),
    "tf": ("libtensorflow_inference.so", "libtensorflow_framework.so"),
    "caffe": ("libcaffe.so", "libcaffe2.so"),
    "ncnn": ("libncnn.so",),
    "snpe": ("libSNPE.so", "libsnpe_dsp_domains_v2.so"),
    "pytorch": ("libpytorch_jni.so", "libtorch.so"),
    "mnn": ("libMNN.so",),
}

#: Accelerator backend -> native libraries / delegates revealing its usage.
ACCELERATOR_NATIVE_LIBS: dict[str, tuple[str, ...]] = {
    "nnapi": ("libnnapi_delegate.so", "libneuralnetworks.so"),
    "xnnpack": ("libxnnpack_delegate.so", "libXNNPACK.so"),
    "snpe": ("libSNPE.so", "libsnpe_dsp_domains_v2.so"),
    "gpu": ("libtflite_gpu_jni.so", "libOpenCL.so"),
}


def libraries_for_framework(framework: str) -> tuple[str, ...]:
    """Native libraries typically shipped alongside a framework."""
    return FRAMEWORK_NATIVE_LIBS.get(framework, ())


def framework_for_library(library_name: str) -> str | None:
    """Reverse lookup: which framework does a native library belong to."""
    for framework, libraries in FRAMEWORK_NATIVE_LIBS.items():
        if library_name in libraries:
            return framework
    return None


def accelerator_for_library(library_name: str) -> str | None:
    """Reverse lookup: which accelerator backend a native library reveals."""
    for accelerator, libraries in ACCELERATOR_NATIVE_LIBS.items():
        if library_name in libraries:
            return accelerator
    return None
