"""Simplified dex bytecode containers and their smali decompilation.

Android apps are compiled to ``classes.dex``; gaugeNN extracts the dex from
the APK, decompiles it to smali with apktool and string-matches the smali for
known cloud-ML API calls and framework usage (Sec. 3.2).  This module models a
dex file as a set of classes, each with methods that invoke fully-qualified
API methods, and provides both the binary serialisation placed inside APKs and
the smali "decompilation" the analysis pipeline searches.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["SmaliMethod", "SmaliClass", "DexFile"]

#: Magic bytes of a dex file (version 035), as on real devices.
DEX_MAGIC = b"dex\n035\x00"


@dataclass(frozen=True)
class SmaliMethod:
    """One method of a class: a name plus the API methods it invokes."""

    name: str
    invocations: tuple[str, ...] = ()

    def to_smali(self) -> str:
        """Render the method as smali text."""
        lines = [f".method public {self.name}()V", "    .locals 2"]
        for target in self.invocations:
            lines.append(f"    invoke-virtual {{v0, v1}}, {target}")
        lines.append("    return-void")
        lines.append(".end method")
        return "\n".join(lines)


@dataclass(frozen=True)
class SmaliClass:
    """One class of the app's code."""

    name: str
    methods: tuple[SmaliMethod, ...] = ()

    def to_smali(self) -> str:
        """Render the class as a smali file body."""
        descriptor = "L" + self.name.replace(".", "/") + ";"
        lines = [f".class public {descriptor}", ".super Ljava/lang/Object;", ""]
        for method in self.methods:
            lines.append(method.to_smali())
            lines.append("")
        return "\n".join(lines)

    def invoked_targets(self) -> tuple[str, ...]:
        """All API targets invoked anywhere in the class."""
        return tuple(target for method in self.methods for target in method.invocations)


@dataclass
class DexFile:
    """A ``classes.dex`` file: a collection of classes."""

    classes: list[SmaliClass] = field(default_factory=list)

    def add_class(self, cls: SmaliClass) -> None:
        """Append a class definition."""
        self.classes.append(cls)

    def add_invocations(self, class_name: str, invocations: Sequence[str],
                        method_name: str = "run") -> None:
        """Convenience: add a class with a single method invoking ``invocations``."""
        self.add_class(SmaliClass(class_name, (SmaliMethod(method_name, tuple(invocations)),)))

    def invoked_targets(self) -> tuple[str, ...]:
        """All API targets invoked anywhere in the dex."""
        return tuple(t for cls in self.classes for t in cls.invoked_targets())

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialise to the binary form placed in an APK's ``classes.dex``."""
        body = json.dumps(
            [
                {
                    "name": cls.name,
                    "methods": [
                        {"name": m.name, "invocations": list(m.invocations)}
                        for m in cls.methods
                    ],
                }
                for cls in self.classes
            ],
            sort_keys=True,
        ).encode()
        return DEX_MAGIC + zlib.compress(body)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DexFile":
        """Parse a dex binary produced by :meth:`to_bytes`."""
        if not data.startswith(DEX_MAGIC):
            raise ValueError("not a dex file: bad magic")
        body = json.loads(zlib.decompress(data[len(DEX_MAGIC):]).decode())
        dex = cls()
        for entry in body:
            methods = tuple(
                SmaliMethod(m["name"], tuple(m["invocations"])) for m in entry["methods"]
            )
            dex.add_class(SmaliClass(entry["name"], methods))
        return dex

    def decompile_to_smali(self) -> dict[str, str]:
        """Decompile the dex into per-class smali text, as apktool would.

        Returns a mapping from smali file path to file content; gaugeNN's app
        analysis string-matches these files for known cloud API calls.
        """
        return {
            "smali/" + cls.name.replace(".", "/") + ".smali": cls.to_smali()
            for cls in self.classes
        }
