"""Inference runtime simulation: backends, latency/energy cost models, executor.

Replaces the on-device TFLite/caffe/SNPE runtimes of the paper's benchmark rig
with an analytical per-layer cost model.  The model captures the first-order
effects the paper attributes its findings to — compute- vs memory-bound
layers, per-layer dispatch overhead, heterogeneous core islands, accelerator
offload, quantised execution — so the relative results (device tiers and
generations, backend comparisons, batch/thread sweeps) reproduce in shape.
"""

from repro.runtime.backends import Backend, BackendProfile, BACKEND_PROFILES, profile_for
from repro.runtime.executor import ExecutionResult, Executor, UnsupportedModelError
from repro.runtime.latency_model import LayerCost, LatencyModel
from repro.runtime.energy_model import EnergyModel
from repro.runtime.sweep import SweepJob, SweepRunner, SweepSpec, derive_job_seed

__all__ = [
    "Backend",
    "BackendProfile",
    "BACKEND_PROFILES",
    "profile_for",
    "Executor",
    "ExecutionResult",
    "UnsupportedModelError",
    "LayerCost",
    "LatencyModel",
    "EnergyModel",
    "SweepJob",
    "SweepRunner",
    "SweepSpec",
    "derive_job_seed",
]
