"""Inference executor: runs a graph on a device+backend and reports metrics.

The executor ties the latency and energy models together, enforces backend
compatibility (operator coverage, framework support, Qualcomm-only runtimes,
missing accelerators), adds measurement noise so repeated runs behave like a
real benchmark, and optionally applies thermal throttling for sustained runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.devices.device import Device
from repro.devices.scheduler import ThreadConfig
from repro.devices.thermal import ThermalModel
from repro.dnn.graph import Graph
from repro.runtime.backends import Backend, BackendProfile, profile_for
from repro.runtime.energy_model import EnergyModel
from repro.runtime.latency_model import LatencyModel

__all__ = ["UnsupportedModelError", "ExecutionResult", "Executor"]


class UnsupportedModelError(RuntimeError):
    """Raised when a backend cannot execute a model on a device."""


@dataclass(frozen=True)
class ExecutionResult:
    """Metrics of one benchmark run (averaged over its measured inferences)."""

    model_name: str
    device_name: str
    backend: Backend
    batch_size: int
    thread_label: str
    latency_ms: float
    energy_mj: float
    power_watts: float
    flops: int
    parameters: int
    peak_memory_bytes: int
    num_inferences: int

    @property
    def latency_per_sample_ms(self) -> float:
        """Latency divided by the batch size."""
        return self.latency_ms / self.batch_size

    @property
    def throughput_ips(self) -> float:
        """Inferences (samples) per second."""
        if self.latency_ms <= 0:
            return 0.0
        return self.batch_size / (self.latency_ms / 1e3)

    @property
    def energy_per_sample_mj(self) -> float:
        """Energy per sample in millijoules."""
        return self.energy_mj / self.batch_size

    @property
    def efficiency_mflops_per_sw(self) -> float:
        """MFLOP/sW achieved by the run (FLOPs per joule / 1e6)."""
        energy_joules = self.energy_mj / 1e3
        if energy_joules <= 0:
            return 0.0
        return self.flops * self.batch_size / energy_joules / 1e6


class Executor:
    """Runs graphs on one device of the fleet."""

    def __init__(self, device: Device, *, include_screen_power: bool = False,
                 noise_fraction: float = 0.02, seed: int = 0) -> None:
        if noise_fraction < 0:
            raise ValueError("noise_fraction must be non-negative")
        self.device = device
        self.latency_model = LatencyModel(device)
        self.energy_model = EnergyModel(device, include_screen=include_screen_power)
        self.thermal = ThermalModel.for_device(device.is_dev_board, device.tier)
        self.noise_fraction = noise_fraction
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Compatibility
    # ------------------------------------------------------------------ #
    def check_supported(self, graph: Graph, backend: Backend | str) -> None:
        """Raise :class:`UnsupportedModelError` when the combination cannot run."""
        profile = profile_for(backend)
        if profile.requires_qualcomm and self.device.soc.vendor != "Qualcomm":
            raise UnsupportedModelError(
                f"{profile.backend.value} requires a Qualcomm SoC; "
                f"{self.device.name} has {self.device.soc.name}"
            )
        if profile.requires_accelerator and self.device.soc.accelerator(profile.target) is None:
            raise UnsupportedModelError(
                f"{self.device.name} has no {profile.target} for {profile.backend.value}"
            )
        if graph.framework not in profile.supported_frameworks:
            raise UnsupportedModelError(
                f"{profile.backend.value} does not load {graph.framework} models"
            )
        unsupported = profile.unsupported_layers(graph)
        if unsupported:
            raise UnsupportedModelError(
                f"{profile.backend.value} lacks operator support for layers "
                f"{unsupported[:3]} of {graph.name!r}"
            )

    def supports(self, graph: Graph, backend: Backend | str) -> bool:
        """Whether the graph can run on the backend without CPU fallback."""
        try:
            self.check_supported(graph, backend)
        except UnsupportedModelError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: Graph,
        backend: Backend | str = Backend.CPU,
        *,
        batch_size: int = 1,
        threads: Optional[ThreadConfig] = None,
        num_inferences: int = 10,
        warmup: int = 2,
        sustained_seconds: float = 0.0,
    ) -> ExecutionResult:
        """Benchmark one (model, backend, batch, threads) combination.

        ``warmup`` inferences are executed but discarded (cold-cache removal,
        as in the paper's workflow); ``sustained_seconds`` of prior load apply
        thermal throttling for scenario-style runs.
        """
        if num_inferences <= 0:
            raise ValueError("num_inferences must be positive")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        backend = Backend(backend)
        self.check_supported(graph, backend)
        profile = profile_for(backend)

        nominal_ms = self.latency_model.graph_latency_ms(
            graph, backend, threads=threads, batch=batch_size)
        if sustained_seconds > 0:
            nominal_ms = self.thermal.sustained_latency_ms(nominal_ms, sustained_seconds)

        # Warmup inferences exist to flush cold caches on real hardware and are
        # discarded before measurement.  The analytical cost model has no cache
        # state, so warmup is an explicit no-op here: it consumes no RNG draws
        # and contributes no samples — ``warmup`` is only validated and echoed
        # through the workflow for fidelity with the paper's benchmark script.
        samples = nominal_ms * (
            1.0 + self.noise_fraction * self._rng.standard_normal(num_inferences))
        samples = np.clip(samples, nominal_ms * 0.5, None)
        latency_ms = float(np.mean(samples))

        power_watts = self.energy_model.inference_power_watts(backend)
        energy_mj = power_watts * latency_ms
        thread_label = threads.label if threads is not None else "auto"

        return ExecutionResult(
            model_name=graph.name,
            device_name=self.device.name,
            backend=backend,
            batch_size=batch_size,
            thread_label=thread_label,
            latency_ms=latency_ms,
            energy_mj=energy_mj,
            power_watts=power_watts,
            flops=graph.total_flops(),
            parameters=graph.total_parameters(),
            peak_memory_bytes=graph.model_size_bytes() + graph.peak_activation_bytes() * batch_size,
            num_inferences=num_inferences,
        )

    def run_many(self, graphs, backend: Backend | str = Backend.CPU,
                 **kwargs) -> list[ExecutionResult]:
        """Benchmark a collection of graphs, skipping unsupported ones.

        Compatibility is established by the single check inside :meth:`run`
        (instead of a separate ``supports`` pre-pass) so each graph is checked
        exactly once.
        """
        results = []
        for graph in graphs:
            try:
                results.append(self.run(graph, backend, **kwargs))
            except UnsupportedModelError:
                continue
        return results
