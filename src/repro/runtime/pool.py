"""Ordered, bounded fan-out over a thread or process pool.

Both the fleet sweep (PR 1) and the fleet traffic simulator dispatch many
small deterministic jobs and need the same streaming discipline:

* results come back **in submission order** regardless of completion order,
  so downstream consumers (store writers, reports) see a deterministic
  stream;
* consecutive jobs are batched into **chunked slices** so tiny analytic jobs
  amortise pool dispatch (and, for process pools, pickling/IPC);
* a **bounded submission window** keeps only a few chunks in flight per
  worker, so a slow consumer (e.g. a disk writer) exerts backpressure and
  completed results never pile up in undrained futures — the memory-flat
  property million-job streams rely on.

:func:`iter_mapped_chunks` is that discipline, extracted once; callers
provide a picklable per-chunk callable (for ``use_processes``) and consume a
flat iterator of per-item results.

Being the single fan-out point also makes this the single telemetry
stitch point (:mod:`repro.obs`): when a collector is enabled, process
workers run each chunk under a fresh worker-local collector and ship its
snapshot back alongside the results — exactly as ``MergeStats`` rides
back from campaign shards — and the coordinator absorbs it, re-parenting
the worker's spans under whichever span submitted the fan-out.  Thread
workers share the coordinator's collector directly and only need their
parent stack seeded.  With telemetry disabled (the default), the only
extra cost on this path is one ``get_collector()`` check per call.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from concurrent import futures
from typing import Callable, Iterator, Optional, Sequence, TypeVar

from repro import obs

__all__ = ["iter_mapped", "iter_mapped_chunks", "resolve_workers",
           "default_chunk_size"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def resolve_workers(num_items: int, max_workers: Optional[int]) -> int:
    """Worker count for a job list: the explicit cap, else one per item up to the CPUs."""
    if max_workers is not None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive when given")
        return max_workers
    return max(1, min(num_items, os.cpu_count() or 1))


def default_chunk_size(num_items: int, workers: int, use_processes: bool) -> int:
    """Chunk size when the caller does not pin one.

    Process pools default to ~4 slices per worker: large enough to amortise
    IPC and pickling, small enough to keep the pool load-balanced.  Thread
    pools default to per-item dispatch (the pre-chunking behaviour).
    """
    if use_processes:
        return max(1, num_items // (workers * 4))
    return 1


def iter_mapped_chunks(
    run_chunk: Callable[[Sequence[ItemT]], Sequence[ResultT]],
    items: Sequence[ItemT],
    *,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    use_processes: bool = False,
) -> Iterator[ResultT]:
    """Map ``run_chunk`` over ``items`` on a pool, streaming results in order.

    ``run_chunk`` receives a slice of consecutive items and returns one result
    per item, in slice order; the iterator yields the concatenation in the
    original item order.  With one worker (and no process pool) everything
    runs inline — no pool, no reordering risk, no pickling.  ``run_chunk``
    must be picklable when ``use_processes`` is set (e.g. a bound method of a
    picklable object).
    """
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError("chunk_size must be positive when given")
    if not items:
        return
    collector = obs.get_collector()
    if collector is not None:
        # Deterministic regardless of how the items end up chunked.
        collector.count("pool.items_mapped", len(items))
    workers = resolve_workers(len(items), max_workers)
    if workers <= 1 and not use_processes:
        for item in items:
            yield from run_chunk((item,))
        return

    chunk = chunk_size or default_chunk_size(len(items), workers, use_processes)
    chunk_iter = (items[i:i + chunk] for i in range(0, len(items), chunk))

    stitch_parent: Optional[int] = None
    if collector is not None:
        parent_id = collector.current_span_id()
        if use_processes:
            run_chunk = _CollectingChunk(run_chunk)
            stitch_parent = parent_id
        else:
            run_chunk = _seeded_chunk(run_chunk, collector, parent_id)

    pool_cls = (futures.ProcessPoolExecutor if use_processes
                else futures.ThreadPoolExecutor)
    with pool_cls(max_workers=workers) as pool:
        in_flight: deque = deque()
        for slice_ in itertools.islice(chunk_iter, workers * 2):
            in_flight.append(pool.submit(run_chunk, slice_))
        while in_flight:
            batch = in_flight.popleft().result()
            next_slice = next(chunk_iter, None)
            if next_slice is not None:
                in_flight.append(pool.submit(run_chunk, next_slice))
            if stitch_parent is not None:
                batch, snapshot = batch
                collector.absorb(snapshot, parent_id=stitch_parent)
            yield from batch


def iter_mapped(
    run_item: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    *,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    use_processes: bool = False,
) -> Iterator[ResultT]:
    """Per-item convenience over :func:`iter_mapped_chunks`.

    Same streaming/ordering/backpressure discipline, but the caller
    provides a one-item callable instead of a chunk callable (wrapped in
    a picklable :class:`_ItemChunk`, so ``use_processes`` works whenever
    ``run_item`` itself pickles).  This is the fan-out point the query
    engine's parallel segment scans use: one segment per item, results
    reassembled in manifest order.
    """
    return iter_mapped_chunks(
        _ItemChunk(run_item), items,
        max_workers=max_workers, chunk_size=chunk_size,
        use_processes=use_processes)


class _ItemChunk:
    """Adapt a per-item callable to the per-chunk fan-out interface."""

    __slots__ = ("run_item",)

    def __init__(self, run_item: Callable) -> None:
        self.run_item = run_item

    def __call__(self, items: Sequence) -> list:
        return [self.run_item(item) for item in items]


class _CollectingChunk:
    """Process-pool chunk wrapper: collect worker telemetry, ship it back.

    Installs a **fresh** collector in the worker for the chunk's duration
    (never a fork-inherited one — that would double-count into a
    collector whose snapshot never leaves the worker) and returns
    ``(results, snapshot)`` for the coordinator to absorb.
    """

    __slots__ = ("run_chunk",)

    def __init__(self, run_chunk: Callable) -> None:
        self.run_chunk = run_chunk

    def __call__(self, items: Sequence):
        worker = obs.Collector()
        previous = obs._install(worker)
        try:
            results = self.run_chunk(items)
        finally:
            obs._install(previous)
        return results, worker.snapshot()


def _seeded_chunk(run_chunk: Callable, collector, parent_id: int) -> Callable:
    """Thread-pool chunk wrapper: seed the worker thread's parent stack.

    Worker threads share the coordinator's collector, but their
    thread-local parent stacks start empty — without seeding, chunk spans
    would all become roots instead of children of the submitting span.
    """

    def run(items: Sequence):
        token = collector.push_parent(parent_id)
        try:
            return run_chunk(items)
        finally:
            collector.pop_parent(token)

    return run
