"""Inference backends: CPU runtimes, delegates and vendor-specific targets.

Covers the execution paths the paper benchmarks in Sec. 6.3 (Figs. 13-14):
the plain TFLite CPU interpreter, the XNNPACK delegate, NNAPI (with CPU
fallback through vendor drivers), the TFLite GPU delegate, and Qualcomm's
SNPE runtime targeting CPU, Adreno GPU or Hexagon DSP.  Each backend is a
:class:`BackendProfile` describing which compute unit it runs on, how
efficiently it uses it, its dispatch overheads, its power scaling, its
arithmetic precision, and which operators/frameworks it supports (operator
coverage being the adoption blocker the paper highlights).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet

from repro.dnn.graph import Graph
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType

__all__ = ["Backend", "BackendProfile", "BACKEND_PROFILES", "profile_for"]


class Backend(str, Enum):
    """Execution backends benchmarked by the paper."""

    CPU = "cpu"
    XNNPACK = "xnnpack"
    NNAPI = "nnapi"
    GPU = "gpu"
    SNPE_CPU = "snpe_cpu"
    SNPE_GPU = "snpe_gpu"
    SNPE_DSP = "snpe_dsp"


#: Operators that recurrent/NLP models rely on and that accelerator delegates
#: commonly lack, forcing CPU fallback or outright incompatibility.
_RECURRENT_OPS: FrozenSet[OpType] = frozenset({OpType.LSTM, OpType.GRU, OpType.EMBEDDING})


@dataclass(frozen=True)
class BackendProfile:
    """Cost-model parameters of one backend."""

    backend: Backend
    #: Compute unit used: ``cpu``, ``gpu`` or ``dsp``.
    target: str
    #: Multiplier on the target's effective throughput.
    compute_scale: float
    #: Multiplier on the target's per-layer dispatch overhead.
    overhead_scale: float
    #: Multiplier on the fixed per-invocation overhead.
    invocation_scale: float
    #: Multiplier on the target's active power.
    power_scale: float
    #: Arithmetic precision the backend executes in.
    precision: DType
    #: Fraction of the target's peak the backend sustains (GPU/DSP only).
    utilization: float = 1.0
    #: Frameworks whose models the backend can load.
    supported_frameworks: frozenset[str] = frozenset({"tflite"})
    #: Operators the backend cannot execute at all.
    unsupported_ops: FrozenSet[OpType] = frozenset()
    #: Whether the backend requires a Qualcomm SoC (SNPE).
    requires_qualcomm: bool = False
    #: Whether the backend requires the SoC to expose a DSP/GPU.
    requires_accelerator: bool = False

    def supports_graph(self, graph: Graph) -> bool:
        """Whether every operator and the framework of ``graph`` is supported."""
        if graph.framework not in self.supported_frameworks:
            return False
        return not any(layer.op in self.unsupported_ops for layer in graph.layers)

    def unsupported_layers(self, graph: Graph) -> tuple[str, ...]:
        """Names of layers the backend cannot execute."""
        return tuple(
            layer.name for layer in graph.layers if layer.op in self.unsupported_ops
        )


BACKEND_PROFILES: dict[Backend, BackendProfile] = {
    Backend.CPU: BackendProfile(
        backend=Backend.CPU,
        target="cpu",
        compute_scale=1.0,
        overhead_scale=1.0,
        invocation_scale=1.0,
        power_scale=1.0,
        precision=DType.FLOAT32,
        supported_frameworks=frozenset({"tflite", "caffe", "ncnn", "tf"}),
    ),
    Backend.XNNPACK: BackendProfile(
        backend=Backend.XNNPACK,
        target="cpu",
        compute_scale=1.10,
        overhead_scale=0.85,
        invocation_scale=1.0,
        power_scale=0.93,
        precision=DType.FLOAT32,
        supported_frameworks=frozenset({"tflite"}),
        unsupported_ops=frozenset({OpType.LSTM, OpType.GRU}),
    ),
    Backend.NNAPI: BackendProfile(
        backend=Backend.NNAPI,
        target="cpu",
        compute_scale=0.62,
        overhead_scale=5.0,
        invocation_scale=1.8,
        power_scale=0.85,
        precision=DType.FLOAT32,
        supported_frameworks=frozenset({"tflite"}),
        unsupported_ops=_RECURRENT_OPS,
    ),
    Backend.GPU: BackendProfile(
        backend=Backend.GPU,
        target="gpu",
        compute_scale=1.0,
        overhead_scale=1.0,
        invocation_scale=1.6,
        power_scale=1.0,
        precision=DType.FLOAT16,
        utilization=0.65,
        supported_frameworks=frozenset({"tflite", "caffe"}),
        unsupported_ops=_RECURRENT_OPS,
        requires_accelerator=True,
    ),
    Backend.SNPE_CPU: BackendProfile(
        backend=Backend.SNPE_CPU,
        target="cpu",
        compute_scale=0.95,
        overhead_scale=1.1,
        invocation_scale=1.1,
        power_scale=1.0,
        precision=DType.FLOAT32,
        supported_frameworks=frozenset({"tflite", "caffe", "snpe"}),
        unsupported_ops=_RECURRENT_OPS,
        requires_qualcomm=True,
    ),
    Backend.SNPE_GPU: BackendProfile(
        backend=Backend.SNPE_GPU,
        target="gpu",
        compute_scale=1.2,
        overhead_scale=0.8,
        invocation_scale=1.4,
        power_scale=1.05,
        precision=DType.FLOAT16,
        utilization=0.65,
        supported_frameworks=frozenset({"tflite", "caffe", "snpe"}),
        unsupported_ops=_RECURRENT_OPS,
        requires_qualcomm=True,
        requires_accelerator=True,
    ),
    Backend.SNPE_DSP: BackendProfile(
        backend=Backend.SNPE_DSP,
        target="dsp",
        compute_scale=1.0,
        overhead_scale=1.0,
        invocation_scale=1.0,
        power_scale=1.0,
        precision=DType.INT8,
        utilization=0.80,
        supported_frameworks=frozenset({"tflite", "caffe", "snpe"}),
        unsupported_ops=_RECURRENT_OPS,
        requires_qualcomm=True,
        requires_accelerator=True,
    ),
}


def profile_for(backend: Backend | str) -> BackendProfile:
    """Look up the profile of a backend (accepts enum values or their names)."""
    backend = Backend(backend)
    return BACKEND_PROFILES[backend]
