"""Energy and power model for on-device inference.

Power during an inference is the SoC's idle platform power plus the active
power of the compute unit the backend drives (scaled by the backend's power
factor), optionally plus the screen (which the paper measures and accounts
for separately, Sec. 3.3).  Energy is power times latency; efficiency is
FLOPs per joule — the ``MFLOP/sW`` metric of Fig. 10c.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.device import Device
from repro.runtime.backends import Backend, BackendProfile, profile_for

__all__ = ["PowerBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power draw during an inference, split by source (watts)."""

    idle_watts: float
    compute_watts: float
    screen_watts: float

    @property
    def total_watts(self) -> float:
        """Total platform power."""
        return self.idle_watts + self.compute_watts + self.screen_watts


class EnergyModel:
    """Estimates inference power, energy and efficiency on a device."""

    def __init__(self, device: Device, include_screen: bool = False) -> None:
        self.device = device
        self.include_screen = include_screen

    def power_breakdown(self, backend: Backend | str = Backend.CPU) -> PowerBreakdown:
        """Average power while an inference is running on the given backend."""
        profile = profile_for(backend)
        soc = self.device.soc
        if profile.target == "cpu":
            active = soc.cpu_power_watts * profile.power_scale
        else:
            accelerator = soc.accelerator(profile.target)
            if accelerator is None:
                raise ValueError(
                    f"device {self.device.name} has no {profile.target} accelerator"
                )
            # Accelerator offload still keeps one CPU core busy feeding it.
            active = (accelerator.power_watts * profile.power_scale
                      + 0.08 * soc.cpu_power_watts)
        screen = self.device.screen_power_watts if self.include_screen else 0.0
        return PowerBreakdown(
            idle_watts=soc.idle_power_watts,
            compute_watts=active,
            screen_watts=screen,
        )

    def inference_power_watts(self, backend: Backend | str = Backend.CPU) -> float:
        """Total average power during inference."""
        return self.power_breakdown(backend).total_watts

    def inference_energy_mj(self, latency_ms: float,
                            backend: Backend | str = Backend.CPU) -> float:
        """Energy of one inference in millijoules."""
        if latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
        return self.inference_power_watts(backend) * latency_ms

    def efficiency_mflops_per_sw(self, flops: int, latency_ms: float,
                                 backend: Backend | str = Backend.CPU) -> float:
        """Inference efficiency in MFLOP/sW (equivalently FLOPs per joule / 1e6)."""
        if latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        energy_joules = self.inference_energy_mj(latency_ms, backend) / 1e3
        if energy_joules <= 0:
            return 0.0
        return flops / energy_joules / 1e6
