"""Per-layer roofline-style latency model.

For each layer the model takes the maximum of a compute term (FLOPs divided
by the effective throughput of the chosen backend/thread configuration) and a
memory term (weight + activation traffic divided by memory bandwidth), then
adds the backend's per-layer dispatch overhead.  A fixed per-invocation
overhead covers input copies and scheduling.  This structure is what produces
the paper's core latency observations: FLOPs alone do not predict latency
(memory-bound and overhead-bound layers break the correlation, Fig. 8), and
small models are dominated by overheads while large ones scale with compute.

:meth:`LatencyModel.graph_latency_ms` evaluates the whole roofline in a single
vectorised NumPy expression over the graph's cached cost arrays
(:meth:`~repro.dnn.graph.Graph.cost_arrays`) — per-layer Python loops and
:class:`LayerCost` object construction only happen on the breakdown path
(:meth:`LatencyModel.layer_costs`), which reports keep using.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.devices.device import Device
from repro.devices.scheduler import CpuScheduler, ThreadConfig
from repro.dnn.graph import Graph
from repro.dnn.layers import Layer
from repro.dnn.tensor import DType
from repro.runtime.backends import Backend, BackendProfile, profile_for

__all__ = ["LayerCost", "LatencyModel"]

#: Throughput multiplier for int8 execution on CPU (NEON dot-product paths).
CPU_INT8_SPEEDUP = 1.6

#: Throughput multiplier for float16 execution on GPU-class hardware.
FP16_SPEEDUP = 1.3


@dataclass(frozen=True)
class LayerCost:
    """Cost breakdown of one layer on one device/backend."""

    layer_name: str
    compute_ms: float
    memory_ms: float
    overhead_ms: float

    @property
    def total_ms(self) -> float:
        """Roofline latency of the layer including dispatch overhead."""
        return max(self.compute_ms, self.memory_ms) + self.overhead_ms

    @property
    def is_memory_bound(self) -> bool:
        """Whether the memory term dominates the compute term."""
        return self.memory_ms > self.compute_ms


class LatencyModel:
    """Estimates inference latency of a graph on a device with a given backend."""

    def __init__(self, device: Device) -> None:
        self.device = device
        self.scheduler = CpuScheduler(device.soc)

    # ------------------------------------------------------------------ #
    # Effective throughput
    # ------------------------------------------------------------------ #
    def effective_gflops(self, profile: BackendProfile,
                         threads: Optional[ThreadConfig] = None,
                         precision: Optional[DType] = None) -> float:
        """Usable GFLOPS of the backend's compute target on this device."""
        soc = self.device.soc
        precision = precision or profile.precision
        if profile.target == "cpu":
            config = threads or self.scheduler.best_configuration()
            base = self.scheduler.effective_gflops(config)
            if precision == DType.INT8:
                base *= CPU_INT8_SPEEDUP
        else:
            accelerator = soc.accelerator(profile.target)
            if accelerator is None:
                raise ValueError(
                    f"device {self.device.name} has no {profile.target} accelerator"
                )
            base = accelerator.peak_gflops * profile.utilization
            if precision == DType.FLOAT16:
                base *= FP16_SPEEDUP
        return base * profile.compute_scale * self.device.vendor_factor

    def _per_layer_overhead_ms(self, profile: BackendProfile) -> float:
        soc = self.device.soc
        if profile.target == "cpu":
            return soc.cpu_layer_overhead_ms * profile.overhead_scale
        accelerator = soc.accelerator(profile.target)
        if accelerator is None:
            raise ValueError(
                f"device {self.device.name} has no {profile.target} accelerator"
            )
        return accelerator.per_layer_overhead_ms * profile.overhead_scale

    def invocation_overhead_ms(self, profile: BackendProfile) -> float:
        """Fixed per-invocation cost (input copies, delegate setup amortised)."""
        return self.device.soc.invocation_overhead_ms * profile.invocation_scale

    # ------------------------------------------------------------------ #
    # Per-layer and per-graph costs
    # ------------------------------------------------------------------ #
    def layer_cost(self, layer: Layer, profile: BackendProfile,
                   effective_gflops: float, batch: int = 1) -> LayerCost:
        """Roofline cost of one layer at the given batch size."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        flops = layer.flops() * batch
        compute_ms = flops / (effective_gflops * 1e9) * 1e3 if flops else 0.0

        bytes_per_element = profile.precision.bytes_per_element
        weight_bytes = sum(w.num_parameters for w in layer.weights) * bytes_per_element
        activation_bytes = layer.output_elements * batch * bytes_per_element
        traffic_bytes = weight_bytes + 2 * activation_bytes
        bandwidth = self.device.soc.memory_bandwidth_gbps * 1e9
        memory_ms = traffic_bytes / bandwidth * 1e3 if traffic_bytes else 0.0

        return LayerCost(
            layer_name=layer.name,
            compute_ms=compute_ms,
            memory_ms=memory_ms,
            overhead_ms=self._per_layer_overhead_ms(profile),
        )

    def layer_costs(self, graph: Graph, backend: Backend | str = Backend.CPU,
                    threads: Optional[ThreadConfig] = None,
                    batch: int = 1) -> list[LayerCost]:
        """Cost breakdown of every layer of a graph."""
        profile = profile_for(backend)
        gflops = self.effective_gflops(profile, threads)
        return [self.layer_cost(layer, profile, gflops, batch) for layer in graph.layers]

    def graph_latency_ms(self, graph: Graph, backend: Backend | str = Backend.CPU,
                         threads: Optional[ThreadConfig] = None,
                         batch: int = 1) -> float:
        """End-to-end latency of one inference invocation at the given batch size.

        Vectorised roofline: ``sum(max(compute, memory)) + overheads`` over the
        graph's per-layer cost arrays.  Numerically equivalent (within float
        summation-order tolerance) to summing :meth:`layer_costs`.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        profile = profile_for(backend)
        arrays = graph.cost_arrays()
        if arrays.num_layers == 0:
            return self.invocation_overhead_ms(profile)

        gflops = self.effective_gflops(profile, threads)
        compute_ms = (arrays.flops * batch) / (gflops * 1e9) * 1e3

        bytes_per_element = profile.precision.bytes_per_element
        traffic_bytes = (arrays.weight_params * bytes_per_element
                         + 2 * (arrays.output_elements * batch * bytes_per_element))
        bandwidth = self.device.soc.memory_bandwidth_gbps * 1e9
        memory_ms = traffic_bytes / bandwidth * 1e3

        total = float(np.maximum(compute_ms, memory_ms).sum())
        total += arrays.num_layers * self._per_layer_overhead_ms(profile)
        return total + self.invocation_overhead_ms(profile)
