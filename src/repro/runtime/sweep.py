"""Declarative fleet sweeps: expand, prune, fan out, collect.

The paper's headline measurement is a Cartesian sweep — ~1,600 unique models
x 6 devices x 7 backends x batch sizes x thread configurations — and most of
those combinations either cannot run (SNPE on non-Qualcomm silicon, recurrent
ops on accelerator delegates) or are embarrassingly parallel.  This module
gives the sweep a first-class shape:

* :class:`SweepSpec` declares the product space plus measurement knobs;
* :meth:`SweepSpec.expand` enumerates :class:`SweepJob` combinations in a
  fixed deterministic order, deriving an independent per-job RNG seed from the
  spec seed and the job coordinates, so results do not depend on worker count
  or completion order;
* :class:`SweepRunner` prunes incompatible combinations up front with cheap
  cached checks (device-level and graph-level compatibility are each evaluated
  once per (device|graph, backend) pair, not once per job), then fans the
  surviving jobs out across a thread or process pool — optionally in
  ``chunk_size`` batched job slices so tiny analytic jobs amortise dispatch —
  and streams :class:`~repro.runtime.executor.ExecutionResult` values in job
  order: to an optional callback and the returned list (:meth:`SweepRunner.run`),
  as a pull-style iterator that retains nothing (:meth:`SweepRunner.iter_results`),
  or straight into a persistent, crash-safe results store
  (:meth:`SweepRunner.run_to_store`), ready for the records/reports layer.

Workers share :class:`~repro.dnn.graph.Graph` instances, whose memoised
aggregates make each job a handful of array ops; races on a graph's memo are
benign because every cached value is a deterministic pure function.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro import obs
from repro.devices.device import Device
from repro.devices.scheduler import ThreadConfig
from repro.dnn.graph import Graph
from repro.runtime.backends import Backend, profile_for
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.pool import iter_mapped_chunks

__all__ = ["SweepJob", "SweepSpec", "SweepRunner", "derive_job_seed"]


def derive_job_seed(base_seed: int, device_name: str, model_name: str,
                    backend: Backend, batch_size: int, thread_label: str) -> int:
    """Deterministic 64-bit RNG seed for one job of a sweep.

    Depends only on the spec seed and the job's own coordinates — never on
    expansion order, pruning decisions or scheduling — which is what makes
    sweep results reproducible under any worker count and any job subset.
    """
    material = (f"{base_seed}|{device_name}|{model_name}|{backend.value}"
                f"|{batch_size}|{thread_label}")
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True, eq=False)
class SweepJob:
    """One fully-specified (device, model, backend, batch, threads) job."""

    device: Device
    graph: Graph
    backend: Backend
    batch_size: int = 1
    threads: Optional[ThreadConfig] = None
    num_inferences: int = 10
    warmup: int = 2
    seed: int = 0

    @property
    def thread_label(self) -> str:
        """Fig. 12-style thread label (``auto`` when unpinned default)."""
        return self.threads.label if self.threads is not None else "auto"


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a fleet sweep.

    ``thread_configs`` may contain ``None`` entries meaning "let the scheduler
    pick" (the executor's default).  ``seed`` is the base of every derived
    per-job seed.
    """

    devices: tuple[Device, ...]
    graphs: tuple[Graph, ...]
    backends: tuple[Backend, ...] = (Backend.CPU,)
    batch_sizes: tuple[int, ...] = (1,)
    thread_configs: tuple[Optional[ThreadConfig], ...] = (None,)
    num_inferences: int = 10
    warmup: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        object.__setattr__(self, "graphs", tuple(self.graphs))
        object.__setattr__(
            self, "backends", tuple(Backend(b) for b in self.backends))
        object.__setattr__(
            self, "batch_sizes", tuple(int(b) for b in self.batch_sizes))
        object.__setattr__(self, "thread_configs", tuple(self.thread_configs))
        if not self.devices:
            raise ValueError("SweepSpec requires at least one device")
        if not self.backends:
            raise ValueError("SweepSpec requires at least one backend")
        if not self.batch_sizes:
            raise ValueError("SweepSpec requires at least one batch size")
        if not self.thread_configs:
            raise ValueError("SweepSpec requires at least one thread config")
        if any(b <= 0 for b in self.batch_sizes):
            raise ValueError("batch sizes must be positive")
        if self.num_inferences <= 0:
            raise ValueError("num_inferences must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")

    @property
    def num_combinations(self) -> int:
        """Size of the unpruned Cartesian product."""
        return (len(self.devices) * len(self.graphs) * len(self.backends)
                * len(self.batch_sizes) * len(self.thread_configs))

    def expand(self) -> Iterator[SweepJob]:
        """Enumerate every combination in deterministic nesting order."""
        for device in self.devices:
            for graph in self.graphs:
                for backend in self.backends:
                    for batch_size in self.batch_sizes:
                        for threads in self.thread_configs:
                            label = (threads.label if threads is not None
                                     else "auto")
                            yield SweepJob(
                                device=device,
                                graph=graph,
                                backend=backend,
                                batch_size=batch_size,
                                threads=threads,
                                num_inferences=self.num_inferences,
                                warmup=self.warmup,
                                seed=derive_job_seed(
                                    self.seed, device.name, graph.name,
                                    backend, batch_size, label),
                            )


class SweepRunner:
    """Expands a :class:`SweepSpec`, prunes it, and runs it on a worker pool.

    ``chunk_size`` batches consecutive jobs into per-worker slices so each
    pool task amortises its dispatch overhead over many tiny analytic jobs
    (the GIL-bound regime a per-job thread fan-out loses in);
    ``use_processes`` swaps the thread pool for a process pool, sidestepping
    the GIL entirely.  Neither knob can change any number: every job's RNG
    seed is derived from its own coordinates, so results are bit-identical
    across worker counts, chunk sizes and pool kinds.
    """

    def __init__(self, spec: SweepSpec, *, max_workers: Optional[int] = None,
                 noise_fraction: float = 0.02,
                 include_screen_power: bool = False,
                 chunk_size: Optional[int] = None,
                 use_processes: bool = False) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive when given")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive when given")
        self.spec = spec
        self.max_workers = max_workers
        self.noise_fraction = noise_fraction
        self.include_screen_power = include_screen_power
        self.chunk_size = chunk_size
        self.use_processes = use_processes

    # ------------------------------------------------------------------ #
    # Pruning
    # ------------------------------------------------------------------ #
    def compatible_jobs(self) -> list[SweepJob]:
        """Expanded jobs minus combinations that cannot run.

        Compatibility splits into a device-level part (vendor / accelerator
        requirements) and a graph-level part (framework + operator coverage);
        each part is evaluated once per (device|graph, backend) pair and
        reused across the rest of the product, so pruning a large sweep costs
        far less than one executor run.
        """
        with obs.span("sweep.prune", items=self.spec.num_combinations):
            jobs = self._expand_compatible()
        obs.count("sweep.jobs_compatible", len(jobs))
        obs.count("sweep.jobs_pruned",
                  self.spec.num_combinations - len(jobs))
        return jobs

    def _expand_compatible(self) -> list[SweepJob]:
        """The pruning loop proper (span-wrapped by :meth:`compatible_jobs`)."""
        device_ok: dict[tuple[str, Backend], bool] = {}
        graph_ok: dict[tuple[int, Backend], bool] = {}
        jobs: list[SweepJob] = []
        for job in self.spec.expand():
            device_key = (job.device.name, job.backend)
            ok = device_ok.get(device_key)
            if ok is None:
                profile = profile_for(job.backend)
                ok = not (profile.requires_qualcomm
                          and job.device.soc.vendor != "Qualcomm")
                ok = ok and not (profile.requires_accelerator
                                 and job.device.soc.accelerator(profile.target)
                                 is None)
                device_ok[device_key] = ok
            if not ok:
                continue
            graph_key = (id(job.graph), job.backend)
            ok = graph_ok.get(graph_key)
            if ok is None:
                ok = profile_for(job.backend).supports_graph(job.graph)
                graph_ok[graph_key] = ok
            if ok:
                jobs.append(job)
        return jobs

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _run_job(self, job: SweepJob) -> ExecutionResult:
        executor = Executor(
            job.device,
            include_screen_power=self.include_screen_power,
            noise_fraction=self.noise_fraction,
            seed=job.seed,
        )
        return executor.run(
            job.graph,
            job.backend,
            batch_size=job.batch_size,
            threads=job.threads,
            num_inferences=job.num_inferences,
            warmup=job.warmup,
        )

    def _run_chunk(self, jobs: Sequence[SweepJob]) -> list[ExecutionResult]:
        """Run one slice of consecutive jobs serially (one pool task)."""
        collector = obs.get_collector()
        if collector is None:
            return [self._run_job(job) for job in jobs]
        with collector.span("sweep.run_chunk", items=len(jobs)):
            results = [self._run_job(job) for job in jobs]
        collector.count("sweep.jobs_executed", len(results))
        return results

    def iter_results(self) -> Iterator[ExecutionResult]:
        """Stream results in deterministic job order without collecting them.

        This is the memory-flat path for million-job sweeps: results are
        yielded as the pool produces them (held back only as far as order
        preservation requires) and nothing is retained after the caller
        consumes a value.  Seeds are per-job, so the stream is bit-identical
        for any worker count, chunk size or pool kind.
        """
        # Bounded submission window, chunked slices and in-order draining all
        # live in :func:`repro.runtime.pool.iter_mapped_chunks`, shared with
        # the fleet simulator's user fan-out.
        yield from iter_mapped_chunks(
            self._run_chunk,
            self.compatible_jobs(),
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            use_processes=self.use_processes,
        )

    def run(self, on_result: Optional[Callable[[ExecutionResult], None]] = None,
            *, collect: bool = True) -> list[ExecutionResult]:
        """Run every compatible job and return results in job order.

        ``on_result`` is invoked once per result, in the same deterministic
        job order, as results stream in — e.g. to append to a records store or
        feed an incremental report.  With ``collect=False`` the returned list
        stays empty and no result is retained after its callback ran, so a
        million-job sweep holds O(1) results in memory; use
        :meth:`iter_results` for a pull-style stream.
        """
        results: list[ExecutionResult] = []
        for result in self.iter_results():
            if on_result is not None:
                on_result(result)
            if collect:
                results.append(result)
        return results

    def run_to_store(self, store, *, rows_per_segment: int = 4096,
                     on_result: Optional[Callable[[ExecutionResult], None]] = None
                     ) -> int:
        """Stream the sweep into a persistent results store; returns the row count.

        ``store`` is a :class:`~repro.store.store.ResultStore` (or a path to
        create one at).  Results are batched in deterministic job order —
        ``rows_per_segment`` results pivot into one column batch
        (:func:`~repro.store.schema.execution_results_to_columns`) and seal
        as one checksummed columnar segment — so a crash loses at most the
        trailing partial segment and a reopened store serves exactly the
        committed prefix.  Memory holds at most one segment's results.
        """
        from repro.store.schema import execution_results_to_columns
        from repro.store.store import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        with store.writer(rows_per_segment=rows_per_segment) as writer:
            chunk: list[ExecutionResult] = []
            for result in self.iter_results():
                chunk.append(result)
                if on_result is not None:
                    on_result(result)
                if len(chunk) >= rows_per_segment:
                    writer.append_batch(
                        "executions", execution_results_to_columns(chunk))
                    chunk = []
            if chunk:
                writer.append_batch(
                    "executions", execution_results_to_columns(chunk))
        return writer.rows_committed

    @staticmethod
    def results_by_device(results: Iterable[ExecutionResult]
                          ) -> dict[str, list[ExecutionResult]]:
        """Group sweep results per device name (the reports-layer shape)."""
        grouped: dict[str, list[ExecutionResult]] = {}
        for result in results:
            grouped.setdefault(result.device_name, []).append(result)
        return grouped
