"""Reproduction of "Smart at what cost? Characterising Mobile DNNs in the wild" (IMC 2021).

The package is organised as a set of substrates (``dnn``, ``formats``,
``android``, ``devices``, ``runtime``) plus the paper's primary contribution,
the gaugeNN measurement pipeline, in ``core``.
"""

from typing import Any

__all__ = ["GaugeNN", "PipelineConfig"]

__version__ = "1.0.0"


def __getattr__(name: str) -> Any:
    """Lazily expose the top-level gaugeNN entry points.

    Importing them lazily keeps ``import repro.dnn`` (and friends) cheap and
    avoids importing the whole pipeline for users who only need a substrate.
    """
    if name in __all__:
        from repro.core import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
