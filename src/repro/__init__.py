"""Reproduction of "Smart at what cost? Characterising Mobile DNNs in the wild" (IMC 2021).

The package is organised as a set of substrates (``dnn``, ``formats``,
``android``, ``devices``, ``runtime``) plus the paper's primary contribution,
the gaugeNN measurement pipeline, in ``core``.
"""

from typing import Any

__all__ = ["GaugeNN", "PipelineConfig", "ResultStore", "StoreWriter",
           "ReportServer", "FleetSpec", "FleetSimulator", "CapacityModel",
           "InterferenceSimulator"]

__version__ = "1.0.0"

#: Lazily exposed top-level entry points and their defining modules.
_LAZY_EXPORTS = {
    "GaugeNN": "repro.core.pipeline",
    "PipelineConfig": "repro.core.pipeline",
    "ResultStore": "repro.store",
    "StoreWriter": "repro.store",
    "ReportServer": "repro.store",
    "FleetSpec": "repro.fleet",
    "FleetSimulator": "repro.fleet",
    "CapacityModel": "repro.cloud",
    "InterferenceSimulator": "repro.cloud",
}


def __getattr__(name: str) -> Any:
    """Lazily expose the top-level gaugeNN entry points.

    Importing them lazily keeps ``import repro.dnn`` (and friends) cheap and
    avoids importing the whole pipeline for users who only need a substrate.
    """
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
