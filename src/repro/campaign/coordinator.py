"""The campaign coordinator: shard, simulate, adopt, add.

A campaign run is four deterministic steps:

1. **Shard** — :func:`shard_ranges` splits ``[0, num_users)`` into
   contiguous, balanced half-open ranges.  Contiguity matters: adopting
   shard segments in shard order then reproduces the unsharded run's
   (user, time) event order exactly.
2. **Simulate** — each :class:`ShardTask` runs in its own process
   (:func:`~repro.runtime.pool.iter_mapped_chunks` over the task list),
   streaming its users' column batches into a shard-local store via
   ``append_batch`` and accumulating the shard's
   :class:`~repro.cloud.load.LoadProfile`.  Per-user seeds
   (:func:`~repro.fleet.population.derive_user_seed`) make each shard's
   output independent of every other shard.
3. **Adopt** — the merged store takes ownership of every shard's sealed
   ``fleet_events`` segments by hard link
   (:func:`~repro.store.merge.adopt_segments`): no row is rewritten, no
   checksum recomputed; cost is per segment file.
4. **Add** — the shards' integer demand grids sum exactly
   (:meth:`LoadProfile.merge` over the vectorised
   :meth:`LoadProfile.from_store`), and the merged grid seals as one
   ``fleet_load`` segment **in the same manifest commit** as the adopted
   event segments — readers see the whole campaign or none of it.

Bit-identity for any shard count falls out of invariants, not luck:
user materialisation depends only on (base seed, user id); event order
is (user, time) and shards are contiguous user ranges adopted in order;
demand grids are integers under addition.  ``tests/test_campaign.py``
pins all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.cloud.load import LoadProfile
from repro.fleet.population import FleetSpec
from repro.fleet.simulator import FleetSimulator
from repro.runtime.pool import iter_mapped_chunks
from repro.store.columnar import coerce_batch
from repro.store.merge import MergeStats, adopt_segments
from repro.store.schema import RowKind, kind_for
from repro.store.segment import write_columnar_segment
from repro.store.store import ResultStore

__all__ = ["CampaignResult", "ShardResult", "ShardTask", "run_campaign",
           "shard_ranges"]

#: Event rows buffered per shard before one concatenated ``append_batch``.
#: Sparse workloads emit a few rows per trace; batching the writer calls
#: keeps its per-append chunk bookkeeping O(1) amortised.
FLUSH_EVENTS = 65536


def shard_ranges(num_users: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, num_users)`` into ``shards`` contiguous balanced ranges.

    Every range's size is ``num_users // shards`` or one more (the
    remainder spreads over the leading ranges), ranges are returned in
    user order, and their concatenation is exactly ``[0, num_users)`` —
    the properties the merge's order guarantee rests on.  Ranges may be
    empty when ``shards > num_users``.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    if num_users < 0:
        raise ValueError("num_users must be non-negative")
    base, extra = divmod(num_users, shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class ShardTask:
    """One shard's work order (pickled into its worker process)."""

    spec: FleetSpec
    shard_index: int
    lo: int
    hi: int
    #: Shard-local store directory.
    root: str
    rows_per_segment: int = FLUSH_EVENTS
    compress: bool = False
    bin_seconds: float = 900.0
    flush_events: int = FLUSH_EVENTS


@dataclass(frozen=True)
class ShardResult:
    """What one shard simulated and wrote."""

    shard_index: int
    users: int
    events: int
    offloaded: int
    segments: int
    seconds: float


def _concat_batches(kind: RowKind,
                    batches: list[dict[str, np.ndarray]]
                    ) -> dict[str, np.ndarray]:
    """One read-only array per column over buffered trace batches.

    Freezing the concatenated arrays (nobody else references them) lets
    ``coerce_batch`` adopt them without its defensive copy.
    """
    if len(batches) == 1:
        return batches[0]
    out: dict[str, np.ndarray] = {}
    for column in kind.columns:
        array = np.concatenate([batch[column.name] for batch in batches])
        array.setflags(write=False)
        out[column.name] = array
    return out


def _run_shard(task: ShardTask) -> ShardResult:
    """Simulate one user range into its shard-local store (worker body).

    ``ShardResult.seconds`` derives from the shard's ``campaign.shard``
    span (forced, so it measures even with telemetry off); with telemetry
    on the same span rides back through the pool and re-parents under the
    coordinator's ``campaign.simulate``.
    """
    span = obs.span("campaign.shard", shard=task.shard_index,
                    items=task.hi - task.lo, force=True)
    with span:
        simulator = FleetSimulator(task.spec, max_workers=1)
        store = ResultStore(task.root)
        profile = LoadProfile(task.spec.regions, task.spec.horizon_s,
                              task.bin_seconds)
        events_kind = kind_for("fleet_events")
        events = offloaded = 0
        buffered: list[dict[str, np.ndarray]] = []
        buffered_rows = 0
        with store.writer(rows_per_segment=task.rows_per_segment,
                          compress=task.compress) as writer:
            for trace in simulator.iter_traces((task.lo, task.hi)):
                offloaded += profile.add_trace(trace)
                if trace.num_events:
                    buffered.append(trace.column_batch())
                    buffered_rows += trace.num_events
                    events += trace.num_events
                if buffered_rows >= task.flush_events:
                    writer.append_batch(events_kind,
                                        _concat_batches(events_kind,
                                                        buffered))
                    buffered, buffered_rows = [], 0
            if buffered:
                writer.append_batch(events_kind,
                                    _concat_batches(events_kind, buffered))
            # The shard's demand grid rides in the same store; the merge
            # rebuilds and sums the grids rather than adopting these rows.
            writer.append_batch("fleet_load", profile.column_batch())
    return ShardResult(shard_index=task.shard_index,
                       users=task.hi - task.lo, events=events,
                       offloaded=offloaded,
                       segments=writer.segments_sealed,
                       seconds=span.duration_s)


def _run_shard_chunk(tasks: Sequence[ShardTask]) -> list[ShardResult]:
    """Pool chunk body: one shard per task, in order."""
    return [_run_shard(task) for task in tasks]


@dataclass(frozen=True)
class CampaignResult:
    """A finished campaign: where the merged store is and what it holds."""

    store_root: str
    users: int
    events: int
    offloaded: int
    shard_results: tuple[ShardResult, ...]
    merge: MergeStats
    simulate_seconds: float
    merge_seconds: float

    @property
    def store(self) -> ResultStore:
        """Open the merged store."""
        return ResultStore(self.store_root)


def run_campaign(spec: FleetSpec, root: Union[str, Path], *,
                 shards: int, bin_seconds: float = 900.0,
                 rows_per_segment: int = FLUSH_EVENTS,
                 compress: bool = False,
                 max_parallel: Optional[int] = None,
                 use_processes: bool = True) -> CampaignResult:
    """Run ``spec``'s whole population sharded; merge into one store.

    ``root`` becomes the campaign directory: ``shard-NNNN.store`` per
    shard plus the queryable ``merged.store``.  ``shards`` fixes the
    user-range split (output is bit-identical for any value);
    ``max_parallel`` caps concurrently running shard processes (default:
    one per CPU).  Shard stores are left in place after the merge — their
    event segments are hard links to the merged store's files, so they
    cost directory entries, not data; delete them freely.
    """
    root = Path(root)
    merged = ResultStore(root / "merged.store")
    if merged.segments:
        raise ValueError(
            f"campaign destination {merged.root} already holds committed "
            f"segments; merge never appends to a finished campaign")
    tasks = [
        ShardTask(spec=spec, shard_index=index, lo=lo, hi=hi,
                  root=str(root / f"shard-{index:04d}.store"),
                  rows_per_segment=rows_per_segment, compress=compress,
                  bin_seconds=bin_seconds)
        for index, (lo, hi) in enumerate(shard_ranges(spec.num_users, shards))
    ]
    # Stage seconds derive from forced spans — measured with telemetry
    # off, additionally traced (with the shard spans re-parented beneath
    # ``campaign.simulate``) when it is on.
    simulate_span = obs.span("campaign.simulate", items=len(tasks),
                             force=True)
    with simulate_span:
        shard_results = tuple(iter_mapped_chunks(
            _run_shard_chunk, tasks,
            max_workers=max_parallel, chunk_size=1,
            use_processes=use_processes and len(tasks) > 1,
        ))

    merge_span = obs.span("campaign.merge", items=len(tasks), force=True)
    with merge_span:
        shard_stores = [ResultStore(task.root) for task in tasks]
        adopted, sequence, merge_stats = adopt_segments(
            merged, shard_stores, kinds=("fleet_events",))
        profile = LoadProfile(spec.regions, spec.horizon_s, bin_seconds)
        for shard_store in shard_stores:
            profile.merge(LoadProfile.from_store(
                shard_store, spec.regions, spec.horizon_s, bin_seconds))
        metas = list(adopted)
        load_batch = profile.column_batch()
        if load_batch["bin_index"].size:
            load_kind = kind_for("fleet_load")
            sequence += 1
            metas.append(write_columnar_segment(
                merged.segments_dir, f"fleet_load-{sequence:06d}", load_kind,
                coerce_batch(load_kind, load_batch), compress=compress))
        if metas:
            # One manifest generation commits the adopted event segments AND
            # the merged demand grid: the only visibility switch of the merge.
            merged._commit(metas, sequence)

    return CampaignResult(
        store_root=str(merged.root),
        users=spec.num_users,
        events=sum(result.events for result in shard_results),
        offloaded=sum(result.offloaded for result in shard_results),
        shard_results=shard_results,
        merge=merge_stats,
        simulate_seconds=simulate_span.duration_s,
        merge_seconds=merge_span.duration_s,
    )
