"""Serve-while-ingest harness: deterministic live-append workloads.

The serve layer's claim — every request sees one committed generation,
bit-identical to the offline reader at that generation — is only testable
with a writer actually racing the readers.  This module provides the
writer side as a reusable harness: a deterministic synthetic
``fleet_events`` batch generator (seeded per batch, so any prefix of the
stream is reproducible on its own) and :class:`BackgroundIngest`, a
thread that appends those batches through a
:class:`~repro.store.writer.StoreWriter` with a commit per batch,
recording the generation each commit produced.  Tests and the serve
benchmark replay the same batches synchronously into a reference store
and compare payloads generation-by-generation.

Module-level functions only (the campaign convention): the generator must
behave identically whether driven from a thread here or from a shard
worker process.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.store.store import ResultStore
from repro.store.writer import StoreWriter

__all__ = ["synthetic_fleet_batch", "ingest_fleet_batches",
           "BackgroundIngest"]

_DEVICES = ("Galaxy S21", "Pixel 5", "Redmi Note 9", "Moto G7")
_MODELS = ("mobilenet_v2", "yamnet", "efficientnet_lite0")
_BACKENDS = ("tflite-cpu", "tflite-gpu", "nnapi")
_REGIONS = ("na", "eu", "apac")
_CLOUD_APIS = ("speech-to-text", "vision-labels")


def synthetic_fleet_batch(batch_index: int, rows: int, *,
                          seed: int = 0) -> dict[str, np.ndarray]:
    """One deterministic ``fleet_events`` column batch.

    Seeded by ``(seed, batch_index)`` alone, so batch *k* of a stream is
    identical no matter who generates it, when, or how many batches came
    before — the property that lets a synchronous replay build a
    bit-identical reference store for any committed prefix.
    """
    rng = np.random.default_rng((seed << 20) ^ batch_index)
    target = np.where(rng.random(rows) < 0.85, "device", "cloud")
    offloaded = target == "cloud"
    latency = np.where(offloaded,
                       rng.gamma(4.0, 30.0, rows),
                       rng.gamma(2.0, 12.0, rows))
    return {
        "user_id": rng.integers(0, max(rows // 4, 1), rows),
        "time_s": np.sort(rng.uniform(0.0, 86400.0, rows)),
        "device_name": rng.choice(_DEVICES, rows),
        "model_name": rng.choice(_MODELS, rows),
        "scenario": np.full(rows, "Ambient"),
        "backend": rng.choice(_BACKENDS, rows),
        "region": rng.choice(_REGIONS, rows),
        "target": target,
        "latency_ms": latency,
        "wait_ms": rng.exponential(3.0, rows),
        "energy_mj": rng.gamma(3.0, 40.0, rows),
        "throttle_factor": rng.uniform(1.0, 1.6, rows),
        "battery_fraction": rng.uniform(0.05, 1.0, rows),
        "discharge_mah": rng.gamma(2.0, 0.05, rows),
        "cloud_api": np.where(offloaded, rng.choice(_CLOUD_APIS, rows), ""),
        "cloud_bytes": np.where(offloaded,
                                rng.integers(1 << 10, 1 << 16, rows), 0),
    }


def ingest_fleet_batches(root: Union[str, Path], num_batches: int, *,
                         rows_per_batch: int = 2048, seed: int = 0,
                         rows_per_segment: int = 1024) -> ResultStore:
    """Synchronously ingest ``num_batches`` synthetic batches into ``root``.

    One flush (= one manifest commit, one generation) per batch.  This is
    the offline replay twin of :class:`BackgroundIngest`: same batches,
    same segment boundaries, same generations.
    """
    store = ResultStore(root)
    with StoreWriter(store, rows_per_segment=rows_per_segment) as writer:
        for index in range(num_batches):
            writer.append_batch(
                "fleet_events",
                synthetic_fleet_batch(index, rows_per_batch, seed=seed))
            writer.flush()
    return store


class BackgroundIngest(threading.Thread):
    """Appends synthetic batches to a store while readers serve from it.

    Runs the single permitted writer on a daemon thread: each batch is
    appended and flushed (one generation per batch), the resulting
    generation recorded in :attr:`generations`, then the thread sleeps
    ``interval_s`` so readers interleave.  ``error`` carries any writer
    exception out to the joining test instead of dying silently.
    """

    def __init__(self, root: Union[str, Path], *, num_batches: int,
                 rows_per_batch: int = 2048, seed: int = 0,
                 rows_per_segment: int = 1024,
                 interval_s: float = 0.0) -> None:
        super().__init__(name="repro-serve-ingest", daemon=True)
        self.root = Path(root)
        self.num_batches = num_batches
        self.rows_per_batch = rows_per_batch
        self.seed = seed
        self.rows_per_segment = rows_per_segment
        self.interval_s = interval_s
        #: Generations committed so far, in commit order.
        self.generations: list[int] = []
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            store = ResultStore(self.root)
            with StoreWriter(store,
                             rows_per_segment=self.rows_per_segment) as writer:
                for index in range(self.num_batches):
                    writer.append_batch(
                        "fleet_events",
                        synthetic_fleet_batch(index, self.rows_per_batch,
                                              seed=self.seed))
                    writer.flush()
                    self.generations.append(store.generation)
                    if self.interval_s:
                        time.sleep(self.interval_s)
        except BaseException as exc:  # surfaced by the joining test
            self.error = exc

    def finish(self, timeout: float = 60.0) -> list[int]:
        """Join the writer; re-raise its failure; return the generations."""
        self.join(timeout)
        if self.is_alive():
            raise TimeoutError("background ingest did not finish")
        if self.error is not None:
            raise self.error
        return self.generations
