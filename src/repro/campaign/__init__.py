"""Out-of-core sharded campaigns: ecosystem-scale fleets on one box.

The paper's ecosystem claims are population-scale claims, and ROADMAP
item 2 ("true millions of users") is what makes the reproduction's
versions of them credible.  This package is that rung: a campaign
coordinator (:mod:`repro.campaign.coordinator`) that splits a
:class:`~repro.fleet.population.FleetSpec` into contiguous user-range
shards, simulates each shard in its own process into a shard-local
columnar store, and merges the shard stores by **segment adoption** —
hard-linking sealed segment files into the merged store and committing
them in one manifest generation, so the merge cost is per *segment*, not
per row — plus exact integer addition of the shards'
:class:`~repro.cloud.load.LoadProfile` grids.

Everything rests on invariants earlier PRs built deliberately: per-user
seeds make shard boundaries invisible to the event stream, integer
demand grids merge exactly in any order, and store segments are
immutable checksummed files whose names are free to change.  The result
is bit-identical to an unsharded run for any shard count —
``tests/test_campaign.py`` pins that, and
``benchmarks/test_bench_campaign.py`` holds the merge and the zero-copy
mmap read path to their speedup gates.

:mod:`repro.campaign.workloads` defines the sparse "Ambient" workload
that makes a 10M-user simulated day tractable on a single machine.
"""

from repro.campaign.coordinator import (CampaignResult, ShardResult,
                                        ShardTask, run_campaign,
                                        shard_ranges)
from repro.campaign.ingest import (BackgroundIngest, ingest_fleet_batches,
                                   synthetic_fleet_batch)
from repro.campaign.workloads import (ambient_scenario, ambient_spec,
                                      campaign_spec)

__all__ = [
    "run_campaign",
    "CampaignResult",
    "ShardResult",
    "ShardTask",
    "shard_ranges",
    "ambient_scenario",
    "ambient_spec",
    "campaign_spec",
    "BackgroundIngest",
    "ingest_fleet_batches",
    "synthetic_fleet_batch",
]
