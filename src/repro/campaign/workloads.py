"""Campaign workloads: fleet specs sized for ecosystem-scale runs.

The standard Table 4 scenarios model *active* use — an hour of audio
chunks, 15 FPS video calls — and generate thousands of events per user
per day.  At 10M users that is tens of billions of events: far beyond
what one box can simulate or store, and not what the ecosystem-scale
question asks (most of a fleet is idle most of the day).  The
**Ambient** workload here models that sparse background reality — a
handful of short ambient-sound checks per user per day — which keeps a
10M-user day around the tens of millions of events a single machine
handles comfortably, while still exercising every fleet mechanism
(thermal state, battery saver, routing, cloud demand).

Everything is defined with module-level functions (no lambdas, no
closures) so specs pickle cleanly into the coordinator's shard worker
processes.
"""

from __future__ import annotations

from repro.core.scenarios import Scenario
from repro.dnn.graph import Graph, Modality
from repro.fleet.population import FleetSpec, zoo_population
from repro.fleet.router import RoutingPolicy

__all__ = ["ambient_scenario", "ambient_spec", "campaign_spec",
           "CAMPAIGN_WORKLOADS"]


def _ambient_inferences_for(graph: Graph) -> int:
    """One inference per ambient check (module-level: must pickle)."""
    return 1


def ambient_scenario() -> Scenario:
    """Sparse ambient sound recognition: ~4 short checks per user per day.

    One inference per 30-minute session window gives an arrival rate of
    1/1800 Hz; with the default session shape (4 sessions/day averaging
    120 s) that lands at roughly 4 events per user per day — the sparse
    regime a mostly-idle fleet actually exhibits.
    """
    return Scenario(
        name="Ambient",
        task_filter=("sound recognition",),
        modality=Modality.AUDIO,
        inference_count=_ambient_inferences_for,
        description="Sparse ambient sound checks through the day",
        session_seconds=1800.0,
        deadline_ms=1000.0,
    )


def ambient_spec(num_users: int, *, seed: int = 0,
                 horizon_s: float = 86400.0) -> FleetSpec:
    """A FleetSpec for the sparse Ambient workload at ``num_users`` scale."""
    from repro.dnn.zoo import sound_recognition

    return FleetSpec(
        graphs_with_tasks=((sound_recognition(), "sound recognition"),),
        num_users=num_users,
        horizon_s=horizon_s,
        scenarios=(ambient_scenario(),),
        policy=RoutingPolicy(battery_saver_threshold=0.3),
        seed=seed,
    )


def zoo_spec(num_users: int, *, seed: int = 0,
             horizon_s: float = 86400.0) -> FleetSpec:
    """The standard-scenario zoo population (dense; small campaigns only)."""
    return FleetSpec(
        graphs_with_tasks=zoo_population(),
        num_users=num_users,
        horizon_s=horizon_s,
        seed=seed,
    )


#: Named workload builders the CLI exposes (``--workload``).
CAMPAIGN_WORKLOADS = {
    "ambient": ambient_spec,
    "zoo": zoo_spec,
}


def campaign_spec(workload: str, num_users: int, *, seed: int = 0,
                  horizon_s: float = 86400.0) -> FleetSpec:
    """Build a named campaign workload's spec (``KeyError`` on unknown)."""
    try:
        builder = CAMPAIGN_WORKLOADS[workload]
    except KeyError:
        raise KeyError(
            f"unknown campaign workload {workload!r} "
            f"(have {sorted(CAMPAIGN_WORKLOADS)})") from None
    return builder(num_users, seed=seed, horizon_s=horizon_s)
