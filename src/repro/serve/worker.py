"""Background refresh/compaction worker advancing the served generation.

One daemon thread per serve instance.  Every ``interval_s`` it polls the
:class:`~repro.serve.snapshot.SnapshotManager` (picking up generations a
concurrent :class:`~repro.store.writer.StoreWriter` committed) and, when a
``compact_segments`` threshold is configured and some row kind's committed
segment count exceeds it, runs :func:`~repro.store.compact.compact_store`
in-process — the manager's next poll observes the replacement commit and
clears the serve caches.  Compaction stays opt-in: pinned snapshots from
*before* a replacement commit reference deleted files, so only enable it
when clients tolerate a mid-flight request failing and retrying against
the new generation.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro import obs

__all__ = ["RefreshWorker"]


class RefreshWorker(threading.Thread):
    """Daemon thread that keeps the served generation fresh."""

    def __init__(self, manager, *, interval_s: float = 1.0,
                 compact_segments: Optional[int] = None) -> None:
        super().__init__(name="repro-serve-refresh", daemon=True)
        self.manager = manager
        self.interval_s = interval_s
        self.compact_segments = compact_segments
        self.compactions = 0
        self._stop_event = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via serve tests
        while not self._stop_event.wait(self.interval_s):
            self.tick()

    def tick(self) -> None:
        """One poll (+ optional compaction); also callable synchronously."""
        try:
            self.manager.poll()
            if self.compact_segments is not None and self._oversharded():
                from repro.store.compact import compact_store

                compact_store(self.manager.store)
                self.compactions += 1
                obs.count("serve.compactions")
                self.manager.poll()
        except Exception:
            # The server must outlive a transient refresh failure (e.g. a
            # manifest read racing a slow filesystem); the next tick retries.
            obs.count("serve.refresh_errors")

    def _oversharded(self) -> bool:
        counts: dict[str, int] = {}
        for meta in self.manager.store.segments:
            counts[meta.kind] = counts.get(meta.kind, 0) + 1
        return any(count > self.compact_segments for count in counts.values())

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout)

    def stats(self) -> dict:
        return {"interval_s": self.interval_s,
                "compact_segments": self.compact_segments,
                "compactions": self.compactions,
                "running": self.is_alive()}
