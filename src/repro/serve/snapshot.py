"""Generation management: which snapshot the service is serving right now.

:class:`SnapshotManager` owns the live :class:`~repro.store.store.
ResultStore` and publishes one immutable ``(StoreSnapshot, ReportServer)``
pair at a time.  Every request reads that pair once and evaluates entirely
against it, so a request never observes a half-committed manifest even
while a :class:`~repro.store.writer.StoreWriter` seals segments into the
same directory — the store's committed-prefix contract makes the swap a
pure pointer exchange.

:meth:`SnapshotManager.poll` (driven by the :class:`~repro.serve.worker.
RefreshWorker`) re-reads the manifest and, when the generation advanced,
pins a fresh snapshot, builds its report server (reusing the previous
one's per-segment extracts when the new segment list extends the old —
the common append-only case), and trims the result cache to the new
generation.  A replacement commit (compaction) is detected as the served
segment list no longer being a prefix of the new one; that clears both
cache tiers and discards the extract state, because segment files were
rewritten.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro import obs
from repro.store.serving import ReportServer
from repro.store.store import ResultStore, StoreSnapshot

__all__ = ["SnapshotManager"]


class SnapshotManager:
    """Publishes one pinned (snapshot, report server) pair per generation."""

    def __init__(self, store: ResultStore, *, cache=None) -> None:
        self.store = store
        self.cache = cache
        self._lock = threading.Lock()
        store.refresh()
        self._snapshot = store.open_snapshot()
        self._server = ReportServer(self._snapshot)
        self.polls = 0
        self.advances = 0
        #: Replacement commits observed (each one cleared both cache tiers).
        self.invalidations = 0

    @property
    def generation(self) -> int:
        """Generation currently served."""
        return self._snapshot.generation

    def current(self) -> tuple[StoreSnapshot, ReportServer]:
        """The pinned pair; callers hold it for the whole request."""
        with self._lock:
            return self._snapshot, self._server

    def poll(self) -> bool:
        """Re-read the manifest; swap in the new generation if it advanced.

        Returns ``True`` when the served generation changed.  Safe to call
        from the refresh worker while reader threads execute requests: the
        readers keep whatever pair they already took from :meth:`current`,
        and pinned snapshots stay valid across append commits because the
        old segment list is a committed prefix of the new one.
        """
        self.polls += 1
        obs.count("serve.refresh_polls")
        old_names = [meta.name for meta in self._snapshot.segments]
        self.store.refresh()
        if self.store.generation == self._snapshot.generation:
            return False
        snapshot = self.store.open_snapshot()
        new_names = [meta.name for meta in snapshot.segments]
        replaced = new_names[:len(old_names)] != old_names
        server = ReportServer(snapshot)
        if not replaced:
            # Append-only advance: the previous extracts all describe live
            # segments, so the new server inherits them instead of re-reading.
            server._execution_extracts = dict(self._server._execution_extracts)
            server._cloud_extracts = dict(self._server._cloud_extracts)
        if self.cache is not None:
            if replaced:
                self.cache.clear()
                self.invalidations += 1
                obs.count("serve.cache_invalidations")
            else:
                self.cache.evict_generations(snapshot.generation)
        with self._lock:
            self._snapshot = snapshot
            self._server = server
        self.advances += 1
        obs.count("serve.generation_advances")
        return True

    def stats(self) -> dict:
        """Poll/advance accounting for ``/v1/stats``."""
        return {"served_generation": self.generation, "polls": self.polls,
                "advances": self.advances,
                "invalidations": self.invalidations}
