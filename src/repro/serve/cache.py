"""The serve layer's two-tier result cache.

Correct caching over a live store falls out of the storage contract:
sealed segments are immutable, and the only thing that ever changes is
the manifest's committed segment list (one generation per commit).  So
the cache has two tiers with different lifetimes:

* **segment tier** — keyed ``(segment name, query fragment)``, holding
  the masked column arrays one query evaluated over one segment.  Sealed
  segments never change, so these entries *cannot* go stale within a
  generation history; they survive generation advances and make a query
  re-run after new seals touch only the newly committed segments.
* **result tier** — keyed ``(generation, query fragment)``, holding the
  final JSON payload of a request.  A generation advance orphans these
  (the segment list they summarise is no longer the served one); the
  :class:`~repro.serve.snapshot.SnapshotManager` evicts non-current
  generations on every swap.

Compaction is the one event that invalidates the segment tier: a
replacement commit drops segment files, so the worker clears everything
when it observes one (detected as a served-prefix mismatch).

Both tiers are LRU-bounded and thread-safe (many reader threads, one
refresh worker).  Hit/miss counts feed :mod:`repro.obs` counters so the
``/v1/stats`` endpoint and the benchmark gates can see cache behaviour.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional

from repro import obs
from repro.store.query import Query, QueryStats

__all__ = ["ServeCache", "CachedQuery"]


class _LruTier:
    """One bounded LRU mapping with hit/miss accounting (thread-safe)."""

    def __init__(self, name: str, max_entries: int) -> None:
        self.name = name
        self.max_entries = max_entries
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Optional[Any]:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                obs.count(f"serve.cache_{self.name}_misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            obs.count(f"serve.cache_{self.name}_hits")
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def evict(self, predicate) -> int:
        """Drop entries whose key matches ``predicate``; returns how many."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {"entries": len(self._entries), "max_entries": self.max_entries,
                "hits": self.hits, "misses": self.misses}


class ServeCache:
    """Segment-tier + result-tier caches of one serve instance."""

    def __init__(self, *, max_segment_entries: int = 1024,
                 max_result_entries: int = 256) -> None:
        self._segments = _LruTier("segment", max_segment_entries)
        self._results = _LruTier("result", max_result_entries)

    # -- segment tier --------------------------------------------------- #
    def get_segment(self, segment: str, fragment: str
                    ) -> Optional[tuple[Optional[dict], int]]:
        """Cached evaluation of one (segment, fragment); miss = ``None``.

        Entries are the ``(payload, matched)`` pairs the query engine's
        per-segment hook produces — payload ``None`` when the segment was
        pruned or matched nothing (cache-worthy outcomes too, stored as
        ``(None, 0)`` so they stay distinguishable from a miss).
        """
        return self._segments.get((segment, fragment))

    def put_segment(self, segment: str, fragment: str,
                    payload: Optional[dict], matched: int) -> None:
        self._segments.put((segment, fragment), (payload, int(matched)))

    # -- result tier ---------------------------------------------------- #
    def get_result(self, generation: int, fragment: str) -> Optional[dict]:
        return self._results.get((generation, fragment))

    def put_result(self, generation: int, fragment: str,
                   payload: dict) -> None:
        self._results.put((generation, fragment), payload)

    # -- lifecycle ------------------------------------------------------ #
    def evict_generations(self, keep: int) -> int:
        """Drop result-tier entries of every generation except ``keep``."""
        return self._results.evict(lambda key: key[0] != keep)

    def clear(self) -> None:
        """Drop both tiers (the compaction/replacement response)."""
        self._segments.clear()
        self._results.clear()

    def stats(self) -> dict:
        """JSON-able hit/size accounting of both tiers (``/v1/stats``)."""
        return {"segment": self._segments.stats(),
                "result": self._results.stats()}


class CachedQuery(Query):
    """A :class:`~repro.store.query.Query` with segment-tier memoisation.

    Identical semantics to the plain query — it overrides the single
    per-segment evaluation hook
    (:meth:`~repro.store.query.Query._segment_result`) and routes every
    cache miss through the base implementation — but a segment already
    evaluated under the same ``(predicates, columns, coded)`` fragment is
    answered from memory without touching its column arrays.  Results
    (including row counts and coded group-key parts) are therefore
    bit-identical to the uncached path by construction; only
    :attr:`stats` differs (``segments_cached`` instead of
    ``segments_scanned``).  Because the hook is the one override, the
    cache composes with parallel thread scans unchanged (the tiers are
    lock-protected); process scans bypass it — workers cannot see the
    coordinator's cache — and simply scan.
    """

    def __init__(self, store, kind, *, cache: ServeCache,
                 fragment: str) -> None:
        super().__init__(store, kind)
        self._cache = cache
        #: Canonical request-fragment prefix (kind + predicates + shape);
        #: the per-call column/coded sets are appended per lookup.
        self._fragment = fragment

    def _segment_result(self, meta, columns: tuple, coded: frozenset
                        ) -> tuple[Optional[dict], int, QueryStats]:
        fragment = f"{self._fragment}|cols={','.join(columns)}"
        if coded:
            fragment += f"|coded={','.join(sorted(coded))}"
        entry = self._cache.get_segment(meta.name, fragment)
        if entry is not None:
            payload, matched = entry
            return payload, matched, QueryStats(segments_total=1,
                                                segments_cached=1)
        payload, matched, delta = super()._segment_result(meta, columns,
                                                          coded)
        self._cache.put_segment(meta.name, fragment, payload, matched)
        return payload, matched, delta
