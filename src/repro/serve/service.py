"""The serve layer's service tier: query specs and report payloads.

Everything an endpoint returns is built here, and the CLI's offline
``store report --json`` / ``store info --json`` paths call the *same*
functions over the same store objects — so "served response equals
offline output at the same generation" holds by construction, and the
benchmark/CI diffs assert it end to end.

:class:`QuerySpec` is the canonical form of a ``/v1/query`` request
(predicates, grouping, aggregations, limit); its :meth:`QuerySpec.fragment`
string keys the result cache.  :class:`QueryService` executes specs and
report-table requests against the :class:`~repro.serve.snapshot.
SnapshotManager`'s pinned generation, consulting the
:class:`~repro.serve.cache.ServeCache` result tier first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.store.query import AGGREGATIONS, parse_agg_expr, parse_predicate
from repro.store.schema import ROW_KINDS

__all__ = ["QuerySpec", "QueryService", "REPORT_TABLES", "report_payload"]

#: Report tables the serve layer and ``store report`` both offer.  The
#: figure tables ride on :class:`~repro.store.serving.ReportServer`; the
#: fleet/cloud tables on their store-backed report functions.
REPORT_TABLES = ("summary", "latency_ecdf", "energy", "cloud", "cloud_load",
                 "tail_latency", "drain", "latency_flops")


@dataclass(frozen=True)
class QuerySpec:
    """Canonical, hashable form of one ``/v1/query`` request."""

    kind: str = "executions"
    #: ``(column, op, value)`` predicate triples (conjunctive).
    where: tuple[tuple[str, str, Any], ...] = ()
    group_by: tuple[str, ...] = ()
    #: ``(column, fn)`` pairs; output names are ``{column}_{fn}`` exactly
    #: like the CLI's ``--agg column:fn`` flags.
    agg: tuple[tuple[str, str], ...] = ()
    #: Row cap for non-aggregate queries (``None`` = unlimited).
    limit: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        if self.kind not in ROW_KINDS:
            raise ValueError(
                f"unknown row kind {self.kind!r} (have {sorted(ROW_KINDS)})")
        for _, fn in self.agg:
            if fn not in AGGREGATIONS:
                raise ValueError(
                    f"unknown aggregation {fn!r} "
                    f"(have {sorted(AGGREGATIONS)})")
        if self.limit is not None and self.limit <= 0:
            raise ValueError("limit must be positive")

    @classmethod
    def from_params(cls, params: Sequence[tuple[str, str]]) -> "QuerySpec":
        """Build a spec from CLI-flavoured query-string parameters.

        Accepted keys: ``kind``, repeated ``where=COL<OP>VALUE``, repeated
        (or comma-joined) ``group_by``, repeated ``agg=COL:FN[,FN...]``
        and ``limit`` — the exact grammar of ``repro store query``.
        Raises :class:`ValueError` on anything malformed or unknown.
        """
        kind = "executions"
        where: list[tuple[str, str, Any]] = []
        group_by: list[str] = []
        agg: list[tuple[str, str]] = []
        limit: Optional[int] = None
        for key, value in params:
            if key == "kind":
                kind = value
            elif key == "where":
                where.append(parse_predicate(value))
            elif key == "group_by":
                group_by.extend(
                    name for name in value.split(",") if name.strip())
            elif key == "agg":
                column, fns = parse_agg_expr(value)
                agg.extend((column, fn) for fn in fns)
            elif key == "limit":
                limit = int(value)
            else:
                raise ValueError(f"unknown query parameter {key!r}")
        return cls(kind=kind, where=tuple(where), group_by=tuple(group_by),
                   agg=tuple(agg), limit=limit)

    @classmethod
    def from_json(cls, body: dict) -> "QuerySpec":
        """Build a spec from a POST body: the structured twin of the params."""
        if not isinstance(body, dict):
            raise ValueError("query body must be a JSON object")
        unknown = set(body) - {"kind", "where", "group_by", "agg", "limit"}
        if unknown:
            raise ValueError(f"unknown query fields {sorted(unknown)}")
        where: list[tuple[str, str, Any]] = []
        for entry in body.get("where", ()):
            if isinstance(entry, str):
                where.append(parse_predicate(entry))
            else:
                column, op, value = entry
                where.append((column, op, value))
        agg: list[tuple[str, str]] = []
        for entry in body.get("agg", ()):
            if isinstance(entry, str):
                column, fns = parse_agg_expr(entry)
                agg.extend((column, fn) for fn in fns)
            else:
                column, fn = entry
                agg.append((column, fn))
        return cls(kind=body.get("kind", "executions"), where=tuple(where),
                   group_by=tuple(body.get("group_by", ())), agg=tuple(agg),
                   limit=body.get("limit"))

    def fragment(self) -> str:
        """Canonical cache-key string of this spec (kind + shape + filters)."""
        return json.dumps(
            {"kind": self.kind, "where": list(self.where),
             "group_by": list(self.group_by), "agg": list(self.agg),
             "limit": self.limit},
            sort_keys=True, separators=(",", ":"), default=str)

    def apply(self, query) -> None:
        """Install this spec's predicates/grouping/aggregations on a query."""
        for column, op, value in self.where:
            query.where(column, op, value)
        if self.group_by:
            query.group_by(*self.group_by)
        if self.agg:
            query.agg(**{f"{column}_{fn}": (column, fn)
                         for column, fn in self.agg})


# --------------------------------------------------------------------------- #
# Report payloads (shared with `store report --json`)
# --------------------------------------------------------------------------- #
def report_payload(source, table: str, *, device: Optional[str] = None,
                   min_apps: int = 0, server=None) -> dict:
    """One report table of a store (or snapshot) as a JSON-able payload.

    ``source`` is anything with the store read protocol — a live
    :class:`~repro.store.store.ResultStore` (the offline CLI path) or a
    pinned :class:`~repro.store.store.StoreSnapshot` (the served path);
    either way the same expressions produce the same values, so the two
    paths are bit-identical at the same generation.  ``server`` optionally
    supplies an existing :class:`~repro.store.serving.ReportServer` over
    ``source`` so the serve layer reuses its per-generation extracts.
    """
    if table not in REPORT_TABLES:
        raise KeyError(
            f"unknown report table {table!r} (have {', '.join(REPORT_TABLES)})")
    payload: dict[str, Any] = {"table": table,
                               "generation": int(source.generation)}

    if table == "cloud_load":
        from repro.cloud import load_report

        payload["rows"] = load_report(source)
        return payload
    if table == "tail_latency":
        from repro.fleet import tail_latency_table

        payload["rows"] = (tail_latency_table(source, group_by="device_name")
                           if source.num_rows("fleet_events") else [])
        return payload
    if table == "drain":
        from repro.fleet import battery_drain_ecdf

        if source.num_rows("fleet_events"):
            ecdf = battery_drain_ecdf(source)
            median_mah, p90_mah = ecdf.quantiles((0.5, 0.9))
            payload.update(users=len(ecdf.values),
                           median_mah=float(median_mah),
                           p90_mah=float(p90_mah))
        else:
            payload.update(users=0, median_mah=None, p90_mah=None)
        return payload

    from repro.store.serving import ReportServer

    if server is None:
        server = ReportServer(source)
    if table == "summary":
        payload["summary"] = server.summary()
    elif table == "latency_ecdf":
        payload["rows"] = [
            {"device": name, "models": len(ecdf.values),
             "median_ms": float(ecdf.median),
             "p90_ms": float(ecdf.quantile(0.9)),
             "p99_ms": float(ecdf.quantile(0.99))}
            for name, ecdf in server.latency_ecdf_by_device().items()
        ]
    elif table == "energy":
        payload["rows"] = [
            {"device": name, **row}
            for name, row in server.energy_distributions().items()
        ]
    elif table == "cloud":
        payload["rows"] = [
            {"api": api, "provider": entry["provider"],
             "apps": int(entry["apps"])}
            for api, entry in server.cloud_api_usage(min_apps).items()
        ]
    else:  # latency_flops (Fig. 8)
        devices = ([device] if device is not None
                   else server.summary()["devices"])
        payload["device"] = device
        payload["points"] = {
            name: [[float(l), float(f)]
                   for l, f in server.latency_vs_flops(name)]
            for name in devices
        }
    return payload


class QueryService:
    """Request execution over the snapshot manager's pinned generation."""

    def __init__(self, manager, *, cache=None,
                 scan_workers: Optional[int] = None) -> None:
        self.manager = manager
        self.cache = cache
        #: Thread fan-out for per-request segment scans (``None``/``1`` =
        #: sequential — the default; results are bit-identical either way,
        #: so this is purely a latency knob for many-segment stores).
        self.scan_workers = scan_workers

    # ------------------------------------------------------------------ #
    # Lightweight endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """Liveness + the generation currently served."""
        snapshot, _ = self.manager.current()
        return {"status": "ok", "generation": snapshot.generation,
                "segments": len(snapshot.segments),
                "rows": snapshot.num_rows()}

    def kinds(self) -> dict:
        """Row kinds and their committed row counts at the served generation."""
        snapshot, _ = self.manager.current()
        return {"generation": snapshot.generation,
                "kinds": {kind: snapshot.num_rows(kind)
                          for kind in snapshot.kinds()}}

    def stats(self) -> dict:
        """Store layout (``store info --json`` shape) + serve-side counters."""
        snapshot, _ = self.manager.current()
        payload = self.manager.store.info_payload()
        payload["served_generation"] = snapshot.generation
        payload["cache"] = (self.cache.stats() if self.cache is not None
                            else None)
        payload["refresh"] = self.manager.stats()
        return payload

    # ------------------------------------------------------------------ #
    # Queries and reports
    # ------------------------------------------------------------------ #
    def _build_query(self, snapshot, spec: QuerySpec):
        """A (cached, when enabled) query over the pinned snapshot."""
        from repro.store.schema import kind_for

        if self.cache is None:
            query = snapshot.query(spec.kind)
        else:
            from repro.serve.cache import CachedQuery

            query = CachedQuery(snapshot, kind_for(spec.kind),
                                cache=self.cache, fragment=spec.fragment())
        if self.scan_workers is not None and self.scan_workers != 1:
            query.parallel(self.scan_workers)
        return query

    def query(self, spec: QuerySpec) -> dict:
        """Execute one query spec at the served generation (result-cached)."""
        snapshot, _ = self.manager.current()
        fragment = "query:" + spec.fragment()
        if self.cache is not None:
            cached = self.cache.get_result(snapshot.generation, fragment)
            if cached is not None:
                return cached
        query = self._build_query(snapshot, spec)
        spec.apply(query)
        if spec.agg:
            output = query.aggregate()
            rows = output if isinstance(output, list) else [output]
        else:
            rows = query.rows()
            if spec.limit is not None:
                rows = rows[:spec.limit]
        stats = query.stats
        payload = {
            "kind": spec.kind,
            "generation": snapshot.generation,
            "rows": rows,
            "stats": {
                "segments_total": stats.segments_total,
                "segments_skipped": stats.segments_skipped,
                "segments_scanned": stats.segments_scanned,
                "segments_cached": stats.segments_cached,
                "rows_scanned": stats.rows_scanned,
                "rows_matched": stats.rows_matched,
            },
        }
        if self.cache is not None:
            self.cache.put_result(snapshot.generation, fragment, payload)
        return payload

    def report(self, table: str, *, device: Optional[str] = None,
               min_apps: int = 0) -> dict:
        """One report table at the served generation (result-cached)."""
        snapshot, server = self.manager.current()
        fragment = f"report:{table}|device={device}|min_apps={min_apps}"
        if self.cache is not None:
            cached = self.cache.get_result(snapshot.generation, fragment)
            if cached is not None:
                return cached
        payload = report_payload(snapshot, table, device=device,
                                 min_apps=min_apps, server=server)
        if self.cache is not None:
            self.cache.put_result(snapshot.generation, fragment, payload)
        return payload
