"""URL routing: HTTP targets in, ``(status, JSON payload)`` out.

The router is transport-agnostic — it never touches sockets, so the same
dispatch drives the asyncio server, the in-process test harness and the
benchmark's raw-socket clients.  Errors map onto conventional statuses:
malformed request parameters → 400, unknown path/kind/table → 404, wrong
method → 405; every error body is ``{"error": <message>}``.
"""

from __future__ import annotations

import json
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

from repro.serve.service import QueryService, QuerySpec

__all__ = ["Router", "RouteError"]


class RouteError(Exception):
    """A request the router refuses, with its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class Router:
    """Maps ``(method, target)`` onto :class:`QueryService` calls."""

    def __init__(self, service: QueryService) -> None:
        self.service = service

    def dispatch(self, method: str, target: str,
                 body: Optional[bytes] = None) -> tuple[int, dict]:
        """Handle one request; never raises — errors become JSON bodies."""
        try:
            return 200, self._route(method, target, body or b"")
        except RouteError as exc:
            return exc.status, {"error": str(exc)}
        except (ValueError, KeyError) as exc:
            # Engine-level rejections: unknown columns/kinds/tables, bad
            # predicate grammar.  KeyError reprs its argument; unwrap it.
            message = exc.args[0] if exc.args else str(exc)
            status = 404 if "unknown report table" in str(message) else 400
            return status, {"error": str(message)}

    def _route(self, method: str, target: str, body: bytes) -> dict:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        params = parse_qsl(url.query, keep_blank_values=False)

        if path == "/v1/health":
            self._require(method, "GET")
            return self.service.health()
        if path == "/v1/kinds":
            self._require(method, "GET")
            return self.service.kinds()
        if path == "/v1/stats":
            self._require(method, "GET")
            return self.service.stats()
        if path == "/v1/query":
            if method == "GET":
                spec = QuerySpec.from_params(params)
            elif method == "POST":
                try:
                    decoded = json.loads(body.decode("utf-8") or "{}")
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise RouteError(400, f"invalid JSON body: {exc}")
                spec = QuerySpec.from_json(decoded)
            else:
                raise RouteError(405, f"{method} not allowed on {path}")
            return self.service.query(spec)
        if path.startswith("/v1/report/"):
            self._require(method, "GET")
            table = path[len("/v1/report/"):]
            device: Optional[str] = None
            min_apps = 0
            for key, value in params:
                if key == "device":
                    device = value
                elif key == "min_apps":
                    min_apps = int(value)
                else:
                    raise RouteError(400, f"unknown report parameter {key!r}")
            return self.service.report(table, device=device, min_apps=min_apps)
        raise RouteError(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise RouteError(405, f"{method} not allowed here (use {expected})")
