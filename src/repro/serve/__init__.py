"""repro.serve — async query/report service over a live results store.

The store's manifest commit protocol already gives every reader a
consistent committed prefix; this package turns that into an online
service: a stdlib-asyncio HTTP server whose every request is evaluated
against one generation-pinned :class:`~repro.store.store.StoreSnapshot`
while a campaign keeps appending to the same directory.  Endpoints:

``GET /v1/health``
    Liveness + the served generation.
``GET /v1/kinds``
    Row kinds and committed row counts.
``GET|POST /v1/query``
    The store query engine over HTTP (``where`` / ``group_by`` / ``agg`` /
    ``limit``, same grammar as ``repro store query``).
``GET /v1/report/<table>``
    The report tables of ``repro store report --json`` — bit-identical to
    the offline output at the same generation.
``GET /v1/stats``
    ``repro store info --json`` plus cache/refresh counters.

Layers: :class:`~repro.serve.app.ServeApp` (HTTP front end) →
:class:`~repro.serve.routes.Router` → :class:`~repro.serve.service.
QueryService` → :class:`~repro.serve.snapshot.SnapshotManager` (pinned
generation) with a two-tier :class:`~repro.serve.cache.ServeCache`, kept
fresh by a :class:`~repro.serve.worker.RefreshWorker`.  ``repro serve``
is the CLI entry point; see the README's "Serving the store" section.
"""

from repro.serve.app import ServeApp, ServerThread
from repro.serve.cache import CachedQuery, ServeCache
from repro.serve.routes import RouteError, Router
from repro.serve.service import (REPORT_TABLES, QueryService, QuerySpec,
                                 report_payload)
from repro.serve.snapshot import SnapshotManager
from repro.serve.worker import RefreshWorker

__all__ = [
    "ServeApp",
    "ServerThread",
    "ServeCache",
    "CachedQuery",
    "Router",
    "RouteError",
    "QueryService",
    "QuerySpec",
    "REPORT_TABLES",
    "report_payload",
    "SnapshotManager",
    "RefreshWorker",
]
