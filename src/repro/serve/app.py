"""The asyncio HTTP front end of :mod:`repro.serve` (stdlib only).

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server`:
request lines and headers are parsed by hand, bodies read by
``Content-Length``, responses are JSON with keep-alive connections.  The
event loop only shuttles bytes — every dispatch runs on a thread pool, so
a store-scanning query never stalls the accept loop, and NumPy evaluation
gets real threads (it releases the GIL in the kernels that matter).

:class:`ServeApp` wires the whole stack: live store → snapshot manager →
query service → router, plus the background refresh worker.  ``repro
serve`` calls :meth:`ServeApp.run`; tests and benchmarks use
:class:`ServerThread`, which runs the same loop on a daemon thread and
exposes the bound URL.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Optional, Union

from repro import obs
from repro.serve.cache import ServeCache
from repro.serve.routes import Router
from repro.serve.service import QueryService
from repro.serve.snapshot import SnapshotManager
from repro.serve.worker import RefreshWorker
from repro.store.store import ResultStore

__all__ = ["ServeApp", "ServerThread"]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}
#: Hard cap on request bodies; /v1/query specs are tiny.
_MAX_BODY = 1 << 20


class ServeApp:
    """One serving stack over one store directory."""

    def __init__(self, root: Union[str, Path], *, host: str = "127.0.0.1",
                 port: int = 8736, refresh_s: float = 1.0, cache: bool = True,
                 max_segment_entries: int = 1024, max_result_entries: int = 256,
                 compact_segments: Optional[int] = None, mmap: bool = False,
                 handler_threads: int = 8,
                 scan_workers: Optional[int] = None) -> None:
        self.store = ResultStore(root, mmap=mmap)
        self.cache = (ServeCache(max_segment_entries=max_segment_entries,
                                 max_result_entries=max_result_entries)
                      if cache else None)
        self.manager = SnapshotManager(self.store, cache=self.cache)
        self.service = QueryService(self.manager, cache=self.cache,
                                    scan_workers=scan_workers)
        self.router = Router(self.service)
        self.worker = RefreshWorker(self.manager, interval_s=refresh_s,
                                    compact_segments=compact_segments)
        self._host = host
        self._port = port
        self._executor = ThreadPoolExecutor(
            max_workers=handler_threads,
            thread_name_prefix="repro-serve-handler")
        self._server: Optional[asyncio.base_events.Server] = None
        self.url: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> str:
        """Bind the listener and start the refresh worker; returns the URL."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port)
        host, port = self._server.sockets[0].getsockname()[:2]
        self.url = f"http://{host}:{port}"
        if not self.worker.is_alive():
            self.worker.start()
        return self.url

    async def stop(self) -> None:
        self.worker.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    def run(self) -> None:  # pragma: no cover - interactive entry point
        """Serve until interrupted (the ``repro serve`` foreground path)."""

        async def main() -> None:
            url = await self.start()
            print(f"repro serve: {self.store.root} at generation "
                  f"{self.manager.generation} on {url}", flush=True)
            await asyncio.Event().wait()

        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            pass

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._respond(writer, 400,
                                        {"error": "malformed request line"},
                                        keep_alive=False)
                    break
                method, target, version = parts
                headers = await self._read_headers(reader)
                if headers is None:
                    break
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY:
                    await self._respond(writer, 400,
                                        {"error": "request body too large"},
                                        keep_alive=False)
                    break
                body = await reader.readexactly(length) if length else b""

                obs.count("serve.requests")
                status, payload = await loop.run_in_executor(
                    self._executor, self._dispatch, method, target, body)

                default = "keep-alive" if version == "HTTP/1.1" else "close"
                keep = headers.get("connection", default).lower() != "close"
                await self._respond(writer, status, payload, keep_alive=keep)
                if not keep:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _dispatch(self, method: str, target: str,
                  body: bytes) -> tuple[int, dict]:
        """Router dispatch on a pool thread, shielded against handler bugs."""
        try:
            with obs.span("serve.request"):
                return self.router.dispatch(method, target, body)
        except Exception as exc:  # a handler bug must not kill the connection
            obs.count("serve.errors")
            return 500, {"error": f"internal error: {exc}"}

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader
                            ) -> Optional[dict[str, str]]:
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload: dict, *, keep_alive: bool) -> None:
        data = json.dumps(payload).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: {connection}\r\n\r\n")
        writer.write(head.encode("latin-1") + data)
        await writer.drain()


class ServerThread:
    """Run a :class:`ServeApp` on a daemon thread (tests and benchmarks).

    Context manager: entering starts the event loop on its own thread and
    blocks until the socket is bound; ``url`` then accepts connections.
    Exiting stops the server, the refresh worker and the loop.
    """

    def __init__(self, app: ServeApp) -> None:
        self.app = app
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    @property
    def url(self) -> str:
        assert self.app.url is not None, "server not started"
        return self.app.url

    def __enter__(self) -> "ServerThread":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve loop failed to start")
        if self._failure is not None:
            raise RuntimeError("serve startup failed") from self._failure
        return self

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            await self.app.start()
        except BaseException as exc:
            self._failure = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.app.stop()

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __exit__(self, *exc_info) -> None:
        self.close()
