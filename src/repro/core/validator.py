"""Model validation and parsing (stage three of "DNN retrieval").

Candidate files are checked against framework-specific binary signatures; the
survivors are parsed into :class:`~repro.dnn.graph.Graph` objects with the
"associated framework's interpreter" (our format readers).  Encrypted or
obfuscated files fail the signature check and are dropped, exactly as in the
paper (Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.extractor import CandidateGroup
from repro.dnn.graph import Graph
from repro.formats.artifact import ModelArtifact
from repro.formats.detect import detect_framework
from repro.formats.serialize import deserialize_model

__all__ = ["ValidatedModel", "ModelValidator"]


@dataclass(frozen=True)
class ValidatedModel:
    """A candidate group that passed validation and parsed into a graph."""

    artifact: ModelArtifact
    graph: Graph
    source: str
    paths: tuple[str, ...]

    @property
    def framework(self) -> str:
        """Framework the model belongs to."""
        return self.artifact.framework

    @property
    def checksum(self) -> str:
        """Whole-model checksum over structure and weights (Sec. 4.5)."""
        return self.artifact.checksum()

    @property
    def size_bytes(self) -> int:
        """Total on-disk size of the model files."""
        return self.artifact.total_size


class ModelValidator:
    """Signature-validates candidate groups and parses them into graphs."""

    def validate_group(self, group: CandidateGroup) -> Optional[ValidatedModel]:
        """Validate one candidate group; returns ``None`` when it is not a model."""
        detections = {}
        for candidate in group.files:
            detected = detect_framework(candidate.data)
            if detected is not None:
                detections[candidate.path] = detected

        if not detections:
            return None

        frameworks = {framework for framework, _ in detections.values()}
        if len(frameworks) > 1:
            # Companion files must agree on the framework; otherwise treat the
            # largest valid file alone.
            primary = group.primary
            detected = detect_framework(primary.data)
            if detected is None:
                return None
            frameworks = {detected[0]}
        framework = next(iter(frameworks))

        # Structure-only files (caffe prototxt, ncnn param) are not enough to
        # reconstruct the model; require a weights-bearing file.
        weight_roles = {"model", "weights"}
        has_weights = any(role in weight_roles for _, role in detections.values())
        if not has_weights:
            return None

        files = {}
        for candidate in group.files:
            files[candidate.file_name] = candidate.data
        primary_name = self._primary_file_name(framework, files)
        if primary_name is None:
            return None
        artifact = ModelArtifact(framework=framework, primary=primary_name, files=files)
        try:
            graph = deserialize_model(artifact)
        except ValueError:
            return None
        return ValidatedModel(
            artifact=artifact,
            graph=graph,
            source=group.files[0].source,
            paths=tuple(candidate.path for candidate in group.files),
        )

    def validate_many(self, groups) -> list[ValidatedModel]:
        """Validate a collection of candidate groups, dropping non-models."""
        validated = []
        for group in groups:
            model = self.validate_group(group)
            if model is not None:
                validated.append(model)
        return validated

    @staticmethod
    def _primary_file_name(framework: str, files: dict[str, bytes]) -> Optional[str]:
        """Pick the file the framework's interpreter would be pointed at."""
        preferred_suffix = {
            "tflite": (".tflite", ".lite", ".tfl", ".bin", ".pb"),
            "caffe": (".caffemodel",),
            "ncnn": (".param",),
            "tf": (".pb",),
            "snpe": (".dlc",),
        }.get(framework, ())
        for suffix in preferred_suffix:
            for name in sorted(files):
                if name.lower().endswith(suffix):
                    return name
        return next(iter(sorted(files)), None)
