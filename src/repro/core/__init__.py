"""gaugeNN: the paper's primary contribution.

gaugeNN automates the three-stage workflow of Fig. 1: DNN retrieval (crawl,
extract, validate), offline analysis (model structure, app code, uniqueness,
optimisation adoption, cloud APIs, temporal evolution) and on-device model
benchmarking (latency, energy, batch/thread/backend sweeps, usage scenarios).
"""

from repro.core.records import AppRecord, ModelRecord, SnapshotAnalysis
from repro.core.crawler import Crawler, CrawlResult
from repro.core.extractor import CandidateFile, ExtractionResult, ModelExtractor
from repro.core.validator import ModelValidator, ValidatedModel
from repro.core.pipeline import GaugeNN, PipelineConfig

__all__ = [
    "AppRecord",
    "ModelRecord",
    "SnapshotAnalysis",
    "Crawler",
    "CrawlResult",
    "ModelExtractor",
    "CandidateFile",
    "ExtractionResult",
    "ModelValidator",
    "ValidatedModel",
    "GaugeNN",
    "PipelineConfig",
]
