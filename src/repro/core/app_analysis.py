"""App-level code analysis: cloud ML APIs, framework usage, accelerator traces.

gaugeNN decompiles each app's dex into smali and string-matches it against
known cloud-ML API calls (Google Firebase/Cloud and AWS, Sec. 3.2 / Fig. 15),
detects ML framework usage from code and bundled native libraries even when
models are obfuscated (Sec. 3.1), and spots hardware-specific acceleration
(NNAPI / XNNPACK / SNPE) traces (Sec. 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.android.cloud_apis import CLOUD_APIS, CloudApi
from repro.android.dex import DexFile
from repro.android.nativelibs import accelerator_for_library, framework_for_library

__all__ = ["AppCodeAnalysis", "AppAnalyzer"]

#: smali-level prefixes revealing on-device framework API usage.
_FRAMEWORK_CODE_PREFIXES: dict[str, tuple[str, ...]] = {
    "tflite": ("Lorg/tensorflow/lite/",),
    "tf": ("Lorg/tensorflow/contrib/android/",),
    "caffe": ("Lcom/caffe/",),
    "ncnn": ("Lcom/tencent/ncnn/",),
    "snpe": ("Lcom/qualcomm/qti/snpe/",),
    "pytorch": ("Lorg/pytorch/",),
}

#: smali-level prefixes revealing accelerator / delegate usage.
_ACCELERATOR_CODE_PREFIXES: dict[str, tuple[str, ...]] = {
    "nnapi": ("Lorg/tensorflow/lite/nnapi/", "Landroid/hardware/neuralnetworks/"),
    "xnnpack": ("setUseXNNPACK",),
    "gpu": ("Lorg/tensorflow/lite/gpu/",),
    "snpe": ("Lcom/qualcomm/qti/snpe/",),
}


@dataclass(frozen=True)
class AppCodeAnalysis:
    """Everything detected in one app's code and native libraries."""

    frameworks_in_code: tuple[str, ...]
    frameworks_in_libraries: tuple[str, ...]
    accelerators: tuple[str, ...]
    cloud_apis: tuple[str, ...]
    cloud_providers: tuple[str, ...]

    @property
    def frameworks(self) -> tuple[str, ...]:
        """Union of frameworks detected in code and native libraries."""
        return tuple(sorted(set(self.frameworks_in_code) | set(self.frameworks_in_libraries)))

    @property
    def uses_cloud_ml(self) -> bool:
        """Whether any known cloud ML API is invoked."""
        return bool(self.cloud_apis)


class AppAnalyzer:
    """Decompiles app code and string-matches it against known ML signatures."""

    def __init__(self, cloud_apis: Iterable[CloudApi] = CLOUD_APIS) -> None:
        self.cloud_apis = tuple(cloud_apis)

    def analyze(self, dex_data: Optional[bytes],
                native_libraries: Iterable[str] = ()) -> AppCodeAnalysis:
        """Analyse one app from its dex bytes and bundled native libraries."""
        smali_text = ""
        if dex_data is not None:
            dex = DexFile.from_bytes(dex_data)
            smali_text = "\n".join(dex.decompile_to_smali().values())

        frameworks_in_code = tuple(sorted(
            framework
            for framework, prefixes in _FRAMEWORK_CODE_PREFIXES.items()
            if any(prefix in smali_text for prefix in prefixes)
        ))
        accelerators = tuple(sorted(
            accelerator
            for accelerator, prefixes in _ACCELERATOR_CODE_PREFIXES.items()
            if any(prefix in smali_text for prefix in prefixes)
        ))

        library_frameworks = set()
        library_accelerators = set()
        for library in native_libraries:
            framework = framework_for_library(library)
            if framework is not None:
                library_frameworks.add(framework)
            accelerator = accelerator_for_library(library)
            if accelerator is not None:
                library_accelerators.add(accelerator)

        detected_apis = tuple(sorted(
            api.name for api in self.cloud_apis if api.smali_prefix in smali_text
        ))
        providers = tuple(sorted({
            api.provider for api in self.cloud_apis
            if api.smali_prefix in smali_text
        }))

        return AppCodeAnalysis(
            frameworks_in_code=frameworks_in_code,
            frameworks_in_libraries=tuple(sorted(library_frameworks)),
            accelerators=tuple(sorted(set(accelerators) | library_accelerators)),
            cloud_apis=detected_apis,
            cloud_providers=providers,
        )
