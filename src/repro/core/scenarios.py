"""Use-case-driven energy scenarios (Table 4, Sec. 5.2.2).

The paper converts per-inference energy into realistic daily-usage costs for
three tasks representative of each modality:

* **Sound recognition** — recognise one hour of audio; how much audio one
  inference covers is derived from the model's input dimensions.
* **Typing (auto-complete)** — one inference per new word over a 275-word
  daily WhatsApp-style workload.
* **Semantic segmentation** — segment a person at 15 FPS for a one-hour video
  call, one frame per inference.

Each scenario multiplies the measured per-inference energy by the number of
inferences the use case requires and converts the result into battery
discharge (mAh) against a reference battery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.devices.battery import Battery
from repro.devices.device import Device
from repro.dnn.graph import Graph, Modality
from repro.runtime.backends import Backend
from repro.runtime.executor import Executor, UnsupportedModelError

__all__ = ["Scenario", "ScenarioResult", "ScenarioSummary", "STANDARD_SCENARIOS",
           "run_scenario", "summarize"]

#: Battery the paper normalises Table 4 against (a common 4000 mAh pack).
REFERENCE_BATTERY = Battery(capacity_mah=4000, voltage=3.85)

#: Average daily number of words typed, derived from WhatsApp usage statistics.
TYPING_WORDS_PER_DAY = 275

#: Frame rate assumed for the video-call segmentation scenario.
SEGMENTATION_FPS = 15

#: Duration of the audio and video scenarios, in seconds.
SCENARIO_DURATION_S = 3600

#: Seconds of *active* typing the daily word count is spread over — WhatsApp
#: sessions are short bursts, not a continuous hour, so the instantaneous
#: word rate (and hence the fleet arrival rate) derives from this window.
TYPING_ACTIVE_SECONDS = 600


def _typing_inferences_for(graph: Graph) -> int:
    """Daily auto-complete inferences: one per typed word.

    A named function (not a lambda) so :class:`Scenario` values stay
    picklable — fleet simulations ship them to process-pool workers.
    """
    return TYPING_WORDS_PER_DAY


def _segmentation_inferences_for(graph: Graph) -> int:
    """Video-call segmentation inferences: one per frame at 15 FPS."""
    return SEGMENTATION_FPS * SCENARIO_DURATION_S


def _audio_inferences_for(graph: Graph) -> int:
    """How many inferences cover one hour of audio for a given model.

    The model's input time dimension (frames of a log-mel spectrogram at the
    common 10 ms hop) determines how much audio a single inference consumes,
    mirroring the paper's manual investigation of input dimensions.
    """
    shape = graph.input_specs[0].shape
    frames = shape[1] if len(shape) >= 2 else 96
    seconds_per_inference = max(0.25, frames * 0.010)
    return max(1, int(round(SCENARIO_DURATION_S / seconds_per_inference)))


@dataclass(frozen=True)
class Scenario:
    """A named usage scenario: which models it applies to and how often they run.

    ``session_seconds`` is the active window the scenario's inference count is
    spread over, which makes the *instantaneous* request rate derivable
    (:meth:`arrival_rate_hz`) — the quantity the fleet simulator draws event
    arrivals from.  ``deadline_ms`` is the per-request latency budget implied
    by the use case (a frame period for video, keystroke cadence for typing);
    routing policies offload to cloud APIs when a device cannot meet it.
    """

    name: str
    task_filter: tuple[str, ...]
    modality: Modality
    inference_count: Callable[[Graph], int]
    description: str
    session_seconds: float = float(SCENARIO_DURATION_S)
    deadline_ms: float = float("inf")

    def applies_to(self, task: str, modality: Modality) -> bool:
        """Whether a model with this task/modality participates in the scenario."""
        return task in self.task_filter and modality == self.modality

    def arrival_rate_hz(self, graph: Graph) -> float:
        """Inference requests per second while the scenario is active.

        Derived from the scenario's inference count over its active window —
        e.g. 15 Hz for the 15 FPS video call, the per-model audio chunk rate
        for sound recognition, the burst word rate for typing.
        """
        return self.inference_count(graph) / self.session_seconds


STANDARD_SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="Sound R.",
        task_filter=("sound recognition",),
        modality=Modality.AUDIO,
        inference_count=_audio_inferences_for,
        description="Recognise 1 hour of ambient audio",
        session_seconds=float(SCENARIO_DURATION_S),
        # One audio chunk must be recognised before the next one is captured.
        deadline_ms=1000.0,
    ),
    Scenario(
        name="Typing",
        task_filter=("auto-complete",),
        modality=Modality.TEXT,
        inference_count=_typing_inferences_for,
        description="Auto-complete over a 275-word daily typing workload",
        session_seconds=float(TYPING_ACTIVE_SECONDS),
        # Suggestions must land within keystroke cadence to be useful.
        deadline_ms=150.0,
    ),
    Scenario(
        name="Segm.",
        task_filter=("semantic segmentation", "hair reconstruction"),
        modality=Modality.IMAGE,
        inference_count=_segmentation_inferences_for,
        description="Segment a person at 15 FPS during a 1-hour video call",
        session_seconds=float(SCENARIO_DURATION_S),
        # A frame period at 15 FPS; slower than this drops call frames.
        deadline_ms=1000.0 / SEGMENTATION_FPS,
    ),
)


@dataclass(frozen=True)
class ScenarioResult:
    """Scenario cost of one model on one device."""

    scenario: str
    device: str
    model_name: str
    inference_count: int
    energy_joules: float
    battery_discharge_mah: float
    battery_fraction: float


@dataclass(frozen=True)
class ScenarioSummary:
    """Table 4 row: average/median/min/max battery discharge for one scenario."""

    scenario: str
    device: str
    model_count: int
    mean_mah: float
    std_mah: float
    median_mah: float
    min_mah: float
    max_mah: float


def run_scenario(scenario: Scenario, device: Device, graphs_with_tasks,
                 *, backend: Backend = Backend.CPU,
                 battery: Battery = REFERENCE_BATTERY) -> list[ScenarioResult]:
    """Evaluate one scenario for every applicable model on one device.

    ``graphs_with_tasks`` is an iterable of ``(graph, task)`` pairs — the task
    label comes from the offline analysis, not from the graph metadata.
    """
    executor = Executor(device)
    results: list[ScenarioResult] = []
    for graph, task in graphs_with_tasks:
        if not scenario.applies_to(task, graph.modality):
            continue
        try:
            run = executor.run(graph, backend, num_inferences=5)
        except UnsupportedModelError:
            continue
        count = scenario.inference_count(graph)
        energy_joules = run.energy_mj / 1e3 * count
        results.append(ScenarioResult(
            scenario=scenario.name,
            device=device.name,
            model_name=graph.name,
            inference_count=count,
            energy_joules=energy_joules,
            battery_discharge_mah=battery.discharge_mah(energy_joules),
            battery_fraction=battery.discharge_fraction(energy_joules),
        ))
    return results


def summarize(results: Sequence[ScenarioResult]) -> Optional[ScenarioSummary]:
    """Collapse per-model scenario results into a Table 4 row."""
    if not results:
        return None
    import numpy as np

    discharges = np.array([r.battery_discharge_mah for r in results])
    return ScenarioSummary(
        scenario=results[0].scenario,
        device=results[0].device,
        model_count=len(results),
        mean_mah=float(np.mean(discharges)),
        std_mah=float(np.std(discharges, ddof=1)) if len(discharges) > 1 else 0.0,
        median_mah=float(np.median(discharges)),
        min_mah=float(np.min(discharges)),
        max_mah=float(np.max(discharges)),
    )
