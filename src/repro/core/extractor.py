"""Model file extraction from app packages (stage two of "DNN retrieval").

gaugeNN unpacks the base apk, OBB expansion files and App-Bundle asset packs,
shortlists files whose extension matches one of the 69 known framework formats
(Appendix Table 5), and groups companion files that together form one model
(caffe's prototxt + caffemodel, ncnn's param + bin) before validation.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.android.apk import AppPackage
from repro.formats.detect import is_candidate_extension

__all__ = ["CandidateFile", "CandidateGroup", "ExtractionResult", "ModelExtractor"]

#: Extension pairs that form a single multi-file model.
_COMPANION_SUFFIXES = {
    ".prototxt": (".caffemodel",),
    ".caffemodel": (".prototxt",),
    ".param": (".bin",),
}


@dataclass(frozen=True)
class CandidateFile:
    """One extracted file that might be a DNN model."""

    path: str
    data: bytes
    source: str

    @property
    def file_name(self) -> str:
        """Base name of the file."""
        return posixpath.basename(self.path)

    @property
    def extension(self) -> str:
        """Lower-case extension including the dot."""
        name = self.file_name.lower()
        if "." not in name:
            return ""
        return name[name.rindex("."):]

    @property
    def stem(self) -> str:
        """File name without its extension."""
        name = self.file_name
        if "." not in name:
            return name
        return name[: name.rindex(".")]

    @property
    def size_bytes(self) -> int:
        """Size of the file in bytes."""
        return len(self.data)


@dataclass(frozen=True)
class CandidateGroup:
    """Files that together form one candidate model (usually just one file)."""

    files: tuple[CandidateFile, ...]

    @property
    def primary(self) -> CandidateFile:
        """The largest file of the group (weights live there)."""
        return max(self.files, key=lambda f: f.size_bytes)

    @property
    def total_size(self) -> int:
        """Total size of the group in bytes."""
        return sum(f.size_bytes for f in self.files)


@dataclass
class ExtractionResult:
    """Everything extracted from one app package."""

    package_name: str
    apk_size_bytes: int
    candidate_groups: list[CandidateGroup] = field(default_factory=list)
    native_libraries: tuple[str, ...] = ()
    dex_data: Optional[bytes] = None

    @property
    def candidate_count(self) -> int:
        """Number of candidate model groups found."""
        return len(self.candidate_groups)


class ModelExtractor:
    """Extracts candidate model files, native libraries and code from packages."""

    #: Directories whose files are never models (resources, layouts, fonts).
    _IGNORED_PREFIXES = ("apk/res/", "apk/META-INF/")

    def extract(self, package: AppPackage) -> ExtractionResult:
        """Unpack an app package and shortlist candidate model files."""
        all_files = package.all_files()
        candidates: list[CandidateFile] = []
        native_libraries: list[str] = []
        dex_data: Optional[bytes] = None

        for path, data in all_files.items():
            if path.startswith(self._IGNORED_PREFIXES):
                continue
            name = posixpath.basename(path)
            if path == "apk/classes.dex":
                dex_data = data
                continue
            if "/lib/" in path and name.endswith(".so"):
                native_libraries.append(name)
                continue
            if name == "AndroidManifest.xml" or name == "resources.arsc":
                continue
            if is_candidate_extension(name):
                source = path.split("/", 1)[0]
                candidates.append(CandidateFile(path=path, data=data, source=source))

        return ExtractionResult(
            package_name=package.package_name,
            apk_size_bytes=package.apk_size,
            candidate_groups=self._group_companions(candidates),
            native_libraries=tuple(sorted(native_libraries)),
            dex_data=dex_data,
        )

    @staticmethod
    def _group_companions(candidates: Iterable[CandidateFile]) -> list[CandidateGroup]:
        """Group companion files (same directory and stem) into one candidate."""
        by_key: dict[tuple[str, str], list[CandidateFile]] = {}
        for candidate in candidates:
            directory = posixpath.dirname(candidate.path)
            by_key.setdefault((directory, candidate.stem), []).append(candidate)

        groups: list[CandidateGroup] = []
        for (_, _), files in sorted(by_key.items()):
            if len(files) == 1:
                groups.append(CandidateGroup(files=(files[0],)))
                continue
            extensions = {f.extension for f in files}
            is_companion_set = any(
                ext in _COMPANION_SUFFIXES and
                any(other in extensions for other in _COMPANION_SUFFIXES[ext])
                for ext in extensions
            )
            if is_companion_set:
                groups.append(CandidateGroup(files=tuple(sorted(files, key=lambda f: f.path))))
            else:
                groups.extend(CandidateGroup(files=(f,)) for f in files)
        return groups
