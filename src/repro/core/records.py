"""Record types produced by the gaugeNN offline analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.dnn.graph import Graph, Modality
from repro.dnn.layers import LayerCategory

__all__ = ["ModelRecord", "AppRecord", "SnapshotAnalysis"]


@dataclass(frozen=True)
class ModelRecord:
    """One extracted, validated and analysed DNN model instance.

    A model that ships in several apps produces several records sharing the
    same ``checksum`` — the uniqueness analysis (Sec. 4.5) groups on it.
    """

    app_package: str
    category: str
    source: str
    file_names: tuple[str, ...]
    framework: str
    checksum: str
    size_bytes: int
    num_layers: int
    flops: int
    parameters: int
    modality: Modality
    task: str
    layer_category_fractions: Mapping[LayerCategory, float]
    has_dequantize_layer: bool
    int8_weight_fraction: float
    int8_activation_fraction: float
    has_cluster_prefix: bool
    has_prune_prefix: bool
    near_zero_weight_fraction: float
    graph: Graph

    @property
    def name(self) -> str:
        """Model name (the primary file's stem)."""
        return self.graph.name

    @property
    def uses_int8_weights(self) -> bool:
        """Whether any weight tensor is stored in int8."""
        return self.int8_weight_fraction > 0.0

    @property
    def uses_int8_activations(self) -> bool:
        """Whether any compute layer produces int8 activations."""
        return self.int8_activation_fraction > 0.0


@dataclass(frozen=True)
class AppRecord:
    """One crawled application and the ML usage detected in it."""

    package: str
    title: str
    category: str
    downloads: int
    rating: float
    frameworks_in_code: tuple[str, ...]
    native_libraries: tuple[str, ...]
    accelerators: tuple[str, ...]
    cloud_apis: tuple[str, ...]
    cloud_providers: tuple[str, ...]
    model_count: int
    candidate_file_count: int
    apk_size_bytes: int

    @property
    def has_framework(self) -> bool:
        """App ships ML framework code or native libraries."""
        return bool(self.frameworks_in_code) or bool(self.native_libraries)

    @property
    def has_models(self) -> bool:
        """App ships at least one validated on-device model."""
        return self.model_count > 0

    @property
    def uses_cloud_ml(self) -> bool:
        """App invokes at least one cloud ML API."""
        return bool(self.cloud_apis)


@dataclass
class SnapshotAnalysis:
    """Full offline-analysis output for one store snapshot (Sec. 4)."""

    label: str
    date: str
    apps: list[AppRecord] = field(default_factory=list)
    models: list[ModelRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Table 2 aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_apps(self) -> int:
        """Total crawled apps."""
        return len(self.apps)

    @property
    def apps_with_frameworks(self) -> int:
        """Apps whose code or native libraries include an ML framework."""
        return sum(1 for app in self.apps if app.has_framework)

    @property
    def apps_with_models(self) -> int:
        """Apps shipping at least one validated model."""
        return sum(1 for app in self.apps if app.has_models)

    @property
    def total_models(self) -> int:
        """Total validated model instances."""
        return len(self.models)

    @property
    def unique_model_checksums(self) -> frozenset[str]:
        """Distinct model checksums across all instances."""
        return frozenset(record.checksum for record in self.models)

    @property
    def unique_models(self) -> int:
        """Number of distinct models (Sec. 4.5)."""
        return len(self.unique_model_checksums)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def models_by_framework(self) -> dict[str, int]:
        """Model instance counts per framework (Fig. 4 totals)."""
        counts: dict[str, int] = {}
        for record in self.models:
            counts[record.framework] = counts.get(record.framework, 0) + 1
        return counts

    def models_by_category(self) -> dict[str, int]:
        """Model instance counts per Play category."""
        counts: dict[str, int] = {}
        for record in self.models:
            counts[record.category] = counts.get(record.category, 0) + 1
        return counts

    def models_by_task(self) -> dict[str, int]:
        """Model instance counts per classified task (Table 3)."""
        counts: dict[str, int] = {}
        for record in self.models:
            counts[record.task] = counts.get(record.task, 0) + 1
        return counts

    def unique_model_records(self) -> list[ModelRecord]:
        """One representative record per distinct checksum."""
        seen: dict[str, ModelRecord] = {}
        for record in self.models:
            seen.setdefault(record.checksum, record)
        return list(seen.values())

    def apps_using_cloud(self) -> list[AppRecord]:
        """Apps invoking cloud ML APIs (Fig. 15 population)."""
        return [app for app in self.apps if app.uses_cloud_ml]
