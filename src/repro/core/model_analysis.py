"""Per-model offline analysis: layers, operations, FLOPs, parameters, optimisations.

For every validated model gaugeNN walks the graph in a trace-based manner
(Sec. 3.2) registering layer types and parameters, estimates total FLOPs and
model size, groups layers into the Fig. 6 categories, and records the
optimisation traces (quantisation, pruning, clustering) analysed in Sec. 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.records import ModelRecord
from repro.core.task_classifier import TaskClassifier
from repro.core.validator import ValidatedModel
from repro.dnn.clustering import clustering_report
from repro.dnn.graph import Graph
from repro.dnn.pruning import pruning_report
from repro.dnn.quantization import quantization_report

__all__ = ["ModelAnalyzer", "trace_flops", "trace_parameters"]


def trace_flops(graph: Graph) -> int:
    """Trace-based FLOP count: walk the graph as a forward pass would.

    Mirrors the paper's methodology of generating a random input with the
    declared dimensions and accumulating per-layer operation counts during the
    forward propagation (Sec. 4.7).
    """
    return sum(layer.flops() for layer in graph.layers)


def trace_parameters(graph: Graph) -> int:
    """Trace-based parameter count across all layers."""
    return sum(layer.num_parameters for layer in graph.layers)


class ModelAnalyzer:
    """Turns validated models into fully-analysed :class:`ModelRecord` rows."""

    def __init__(self, task_classifier: Optional[TaskClassifier] = None) -> None:
        self.task_classifier = task_classifier or TaskClassifier()

    def analyze(self, validated: ValidatedModel, *, app_package: str,
                category: str) -> ModelRecord:
        """Analyse one validated model in the context of the app that ships it."""
        graph = validated.graph
        quantization = quantization_report(graph)
        pruning = pruning_report(graph)
        clustering = clustering_report(graph)
        task = self.task_classifier.classify(graph)

        return ModelRecord(
            app_package=app_package,
            category=category,
            source=validated.source,
            file_names=validated.artifact.file_names,
            framework=validated.framework,
            checksum=validated.checksum,
            size_bytes=validated.size_bytes,
            num_layers=graph.num_layers,
            flops=trace_flops(graph),
            parameters=trace_parameters(graph),
            modality=graph.modality,
            task=task.task,
            layer_category_fractions=graph.layer_category_fractions(),
            has_dequantize_layer=quantization.has_dequantize_layer,
            int8_weight_fraction=quantization.int8_weight_fraction,
            int8_activation_fraction=quantization.int8_activation_fraction,
            has_cluster_prefix=clustering.has_cluster_prefix,
            has_prune_prefix=pruning.has_prune_prefix,
            near_zero_weight_fraction=pruning.near_zero_weight_fraction,
            graph=graph,
        )
