"""The end-to-end gaugeNN pipeline (Fig. 1).

:class:`GaugeNN` ties the stages together: crawl a store snapshot, download
every app, extract and validate candidate model files, analyse models and app
code offline, and (optionally) benchmark the unique models across the device
fleet.  It is the top-level entry point of the library:

>>> from repro import GaugeNN, PipelineConfig
>>> from repro.android import AppGenerator, GeneratorConfig, PlayStore
>>> store = PlayStore([AppGenerator(GeneratorConfig.snapshot_2021(scale=0.02)).generate()])
>>> analysis = GaugeNN(store).analyze_snapshot("2021")
>>> analysis.total_models > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.android.playstore import PlayStore
from repro.core.app_analysis import AppAnalyzer
from repro.core.crawler import Crawler
from repro.core.extractor import ModelExtractor
from repro.core.model_analysis import ModelAnalyzer
from repro.core.records import AppRecord, ModelRecord, SnapshotAnalysis
from repro.core.validator import ModelValidator
from repro.devices.device import Device
from repro.devices.scheduler import ThreadConfig
from repro.runtime.backends import Backend
from repro.runtime.executor import ExecutionResult
from repro.runtime.sweep import SweepRunner, SweepSpec

__all__ = ["PipelineConfig", "GaugeNN"]


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the offline-analysis pipeline."""

    #: Limit on apps fetched per category chart (the store caps at 500).
    per_category_limit: int = 500
    #: Optional hard cap on the number of apps downloaded (None = no cap).
    max_apps: Optional[int] = None
    #: Categories to crawl (None = every category).
    categories: Optional[tuple[str, ...]] = None


class GaugeNN:
    """The gaugeNN measurement tool: retrieval, offline analysis, benchmarking."""

    def __init__(self, store: PlayStore, config: PipelineConfig = PipelineConfig()) -> None:
        self.store = store
        self.config = config
        self.crawler = Crawler(store, per_category_limit=config.per_category_limit)
        self.extractor = ModelExtractor()
        self.validator = ModelValidator()
        self.app_analyzer = AppAnalyzer()
        self.model_analyzer = ModelAnalyzer()

    # ------------------------------------------------------------------ #
    # Offline analysis (Sec. 3.1, 3.2)
    # ------------------------------------------------------------------ #
    def analyze_snapshot(self, snapshot_label: str) -> SnapshotAnalysis:
        """Run retrieval plus offline analysis on one store snapshot."""
        crawl = self.crawler.crawl(snapshot_label, categories=self.config.categories)
        analysis = SnapshotAnalysis(
            label=snapshot_label,
            date=self.store.snapshot(snapshot_label).date,
        )

        packages = crawl.packages()
        if self.config.max_apps is not None:
            packages = packages[: self.config.max_apps]

        for package_name in packages:
            listing = crawl.listings[package_name]
            app_package = self.store.download(snapshot_label, package_name)
            extraction = self.extractor.extract(app_package)
            code_analysis = self.app_analyzer.analyze(
                extraction.dex_data, extraction.native_libraries)
            validated_models = self.validator.validate_many(extraction.candidate_groups)

            model_records = [
                self.model_analyzer.analyze(
                    validated, app_package=package_name, category=listing.category)
                for validated in validated_models
            ]
            analysis.models.extend(model_records)
            analysis.apps.append(AppRecord(
                package=package_name,
                title=listing.title,
                category=listing.category,
                downloads=listing.downloads,
                rating=listing.rating,
                frameworks_in_code=code_analysis.frameworks_in_code,
                native_libraries=extraction.native_libraries,
                accelerators=code_analysis.accelerators,
                cloud_apis=code_analysis.cloud_apis,
                cloud_providers=code_analysis.cloud_providers,
                model_count=len(model_records),
                candidate_file_count=extraction.candidate_count,
                apk_size_bytes=extraction.apk_size_bytes,
            ))
        return analysis

    def analyze_all_snapshots(self) -> dict[str, SnapshotAnalysis]:
        """Analyse every snapshot registered in the store, oldest first."""
        return {
            label: self.analyze_snapshot(label)
            for label in self.store.snapshot_labels()
        }

    # ------------------------------------------------------------------ #
    # Benchmarking hand-off (Sec. 3.3)
    # ------------------------------------------------------------------ #
    @staticmethod
    def unique_graphs(analysis: SnapshotAnalysis) -> list:
        """Graphs of the unique models of a snapshot, ready for benchmarking."""
        return [record.graph for record in analysis.unique_model_records()]

    @staticmethod
    def graphs_with_tasks(analysis: SnapshotAnalysis) -> list:
        """(graph, task) pairs of unique models, for scenario-driven energy runs."""
        return [
            (record.graph, record.task)
            for record in analysis.unique_model_records()
        ]

    @staticmethod
    def persist_snapshot(analysis: SnapshotAnalysis, store) -> int:
        """Persist a snapshot's app/model records into a results store.

        ``store`` is a :class:`~repro.store.store.ResultStore` or a path.
        Returns the number of rows written.  Together with
        :meth:`benchmark_unique_models`'s ``store`` argument this makes a
        whole campaign — population, models and measurements — durable and
        queryable across processes.
        """
        from repro.store.store import ResultStore
        from repro.store.writer import ingest_snapshot

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        return ingest_snapshot(store, analysis)

    @staticmethod
    def benchmark_unique_models(
        analysis: SnapshotAnalysis,
        devices: Sequence[Device],
        *,
        backends: Sequence[Backend | str] = (Backend.CPU,),
        batch_sizes: Sequence[int] = (1,),
        thread_configs: Sequence[Optional[ThreadConfig]] = (None,),
        num_inferences: int = 10,
        warmup: int = 2,
        seed: int = 0,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        on_result: Optional[Callable[[ExecutionResult], None]] = None,
        store=None,
    ) -> list[ExecutionResult]:
        """Benchmark a snapshot's unique models across the fleet (Sec. 3.3).

        Expands devices x models x backends x batches x thread configs into a
        :class:`~repro.runtime.sweep.SweepSpec`, prunes incompatible
        combinations, and fans the jobs out on a worker pool with
        deterministic per-job seeds — same results for any ``max_workers``
        and any ``chunk_size`` (batched per-worker job slices).

        With ``store`` (a :class:`~repro.store.store.ResultStore` or a path)
        the results additionally stream into the persistent store in
        checksummed, crash-safe segments as they are produced.
        """
        spec = SweepSpec(
            devices=tuple(devices),
            graphs=tuple(GaugeNN.unique_graphs(analysis)),
            backends=tuple(backends),
            batch_sizes=tuple(batch_sizes),
            thread_configs=tuple(thread_configs),
            num_inferences=num_inferences,
            warmup=warmup,
            seed=seed,
        )
        runner = SweepRunner(spec, max_workers=max_workers, chunk_size=chunk_size)
        if store is None:
            return runner.run(on_result=on_result)
        from repro.store.store import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        results: list[ExecutionResult] = []
        with store.writer() as writer:
            for result in runner.iter_results():
                writer.append(result)
                if on_result is not None:
                    on_result(result)
                results.append(result)
        return results
