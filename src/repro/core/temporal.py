"""Temporal analysis across store snapshots (Sec. 4.6, Fig. 5).

Compares two snapshot analyses taken a year apart: growth of DNN-powered
apps and models, per-framework adoption multipliers, and the per-category
counts of individual models added and removed (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.records import SnapshotAnalysis

__all__ = ["CategoryChurn", "TemporalComparison", "compare_snapshots"]


@dataclass(frozen=True)
class CategoryChurn:
    """Models added and removed in one Play category between two snapshots."""

    category: str
    added: int
    removed: int

    @property
    def net_change(self) -> int:
        """Added minus removed."""
        return self.added - self.removed


@dataclass(frozen=True)
class TemporalComparison:
    """Everything the Sec. 4.6 temporal analysis reports."""

    earlier_label: str
    later_label: str
    earlier_total_models: int
    later_total_models: int
    earlier_apps_with_frameworks: int
    later_apps_with_frameworks: int
    earlier_cloud_apps: int
    later_cloud_apps: int
    framework_growth: Mapping[str, float]
    category_churn: tuple[CategoryChurn, ...]

    @property
    def model_growth(self) -> float:
        """Multiplier on the total number of traced models (paper: ~2x)."""
        if self.earlier_total_models == 0:
            return float("inf")
        return self.later_total_models / self.earlier_total_models

    @property
    def cloud_growth(self) -> float:
        """Multiplier on the number of cloud-ML apps (paper: 2.33x)."""
        if self.earlier_cloud_apps == 0:
            return float("inf")
        return self.later_cloud_apps / self.earlier_cloud_apps

    def churn_sorted_by_net_change(self) -> tuple[CategoryChurn, ...]:
        """Category churn sorted as in Fig. 5 (largest net gain first)."""
        return tuple(sorted(self.category_churn, key=lambda c: c.net_change, reverse=True))


def _unique_checksums_by_category(analysis: SnapshotAnalysis) -> dict[str, set[str]]:
    grouped: dict[str, set[str]] = {}
    for record in analysis.models:
        grouped.setdefault(record.category, set()).add(record.checksum)
    return grouped


def compare_snapshots(earlier: SnapshotAnalysis, later: SnapshotAnalysis) -> TemporalComparison:
    """Compare two snapshot analyses (the earlier one first)."""
    earlier_frameworks = earlier.models_by_framework()
    later_frameworks = later.models_by_framework()
    growth: dict[str, float] = {}
    for framework in sorted(set(earlier_frameworks) | set(later_frameworks)):
        before = earlier_frameworks.get(framework, 0)
        after = later_frameworks.get(framework, 0)
        growth[framework] = (after / before) if before else float("inf")

    earlier_by_category = _unique_checksums_by_category(earlier)
    later_by_category = _unique_checksums_by_category(later)
    churn = []
    for category in sorted(set(earlier_by_category) | set(later_by_category)):
        before = earlier_by_category.get(category, set())
        after = later_by_category.get(category, set())
        churn.append(CategoryChurn(
            category=category,
            added=len(after - before),
            removed=len(before - after),
        ))

    return TemporalComparison(
        earlier_label=earlier.label,
        later_label=later.label,
        earlier_total_models=earlier.total_models,
        later_total_models=later.total_models,
        earlier_apps_with_frameworks=earlier.apps_with_frameworks,
        later_apps_with_frameworks=later.apps_with_frameworks,
        earlier_cloud_apps=len(earlier.apps_using_cloud()),
        later_cloud_apps=len(later.apps_using_cloud()),
        framework_growth=growth,
        category_churn=tuple(churn),
    )
