"""On-device benchmark orchestration (the Fig. 2/3 master-slave workflow).

The master pushes the model and a headless benchmark script to the device
over adb, asserts a clean device state (WiFi off, sensors off, black screen),
cuts the USB power through the programmable switch, lets the on-device script
run warm-up plus measured inferences while the power monitor records the main
rail, waits for the WiFi notification that the job finished, restores USB
power and collects the results.  The simulator walks the same state machine so
the orchestration logic (and its failure modes) can be tested, while the
actual numbers come from :class:`~repro.runtime.executor.Executor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.devices.device import Device
from repro.devices.power_monitor import PowerMonitor, PowerTrace
from repro.devices.scheduler import ThreadConfig
from repro.devices.usb_control import UsbSwitch
from repro.dnn.graph import Graph
from repro.runtime.backends import Backend
from repro.runtime.executor import ExecutionResult, Executor

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.store.writer import StoreWriter

__all__ = ["BenchmarkJob", "BenchmarkRecord", "DeviceBenchmarker"]


@dataclass(frozen=True)
class BenchmarkJob:
    """One (model, backend, batch, threads) combination to benchmark."""

    graph: Graph
    backend: Backend = Backend.CPU
    batch_size: int = 1
    threads: Optional[ThreadConfig] = None
    num_inferences: int = 10
    warmup: int = 2
    inter_inference_sleep_ms: float = 50.0


@dataclass(frozen=True)
class BenchmarkRecord:
    """Result of one benchmark job, including the recorded power trace."""

    result: ExecutionResult
    power_trace: Optional[PowerTrace]
    workflow_events: tuple[str, ...]

    @property
    def measured_energy_mj(self) -> Optional[float]:
        """Energy integrated from the power trace (boards only), in mJ."""
        if self.power_trace is None:
            return None
        return self.power_trace.energy_joules() * 1e3


class DeviceBenchmarker:
    """Drives the benchmark workflow of Fig. 3 for one device."""

    def __init__(self, device: Device, *, usb_port: int = 0,
                 usb_switch: Optional[UsbSwitch] = None,
                 power_monitor: Optional[PowerMonitor] = None,
                 executor: Optional[Executor] = None,
                 store_sink: Optional["StoreWriter"] = None) -> None:
        self.device = device
        self.usb_port = usb_port
        self.usb_switch = usb_switch or UsbSwitch()
        self.power_monitor = power_monitor or PowerMonitor(seed=usb_port)
        self.executor = executor or Executor(device)
        #: Optional results-store writer; every measurement of
        #: :meth:`run_job` is appended to it as an ``executions`` row.
        self.store_sink = store_sink
        self.events: list[str] = []

    # ------------------------------------------------------------------ #
    # Workflow steps (Fig. 3)
    # ------------------------------------------------------------------ #
    def _prepare(self, job: BenchmarkJob) -> None:
        self.events.append("adb_push_dependencies")
        self.events.append("assert_initial_state:wifi_off,sensors_off,screen_black")
        self.events.append(f"launch_daemon:{job.graph.name}")

    def _start(self) -> None:
        if self.device.supports_power_measurement:
            self.usb_switch.power_off(self.usb_port)
            self.events.append("usb_power_off")
        self.events.append("device_waits_for_power_off")

    def _finish(self) -> None:
        self.events.append("device_turns_on_wifi")
        self.events.append("notify_server_via_netcat")
        if self.device.supports_power_measurement:
            self.usb_switch.power_on(self.usb_port)
            self.events.append("usb_power_on")
        self.events.append("adb_collect_results")
        self.events.append("cleanup")

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run_job(self, job: BenchmarkJob) -> BenchmarkRecord:
        """Run one benchmark job through the full workflow."""
        self.events = []
        self._prepare(job)
        self._start()

        result = self.executor.run(
            job.graph,
            job.backend,
            batch_size=job.batch_size,
            threads=job.threads,
            num_inferences=job.num_inferences,
            warmup=job.warmup,
        )

        power_trace: Optional[PowerTrace] = None
        if self.device.supports_power_measurement:
            segments: list[tuple[float, float]] = []
            idle_watts = self.device.soc.idle_power_watts + self.device.screen_power_watts
            for _ in range(job.num_inferences):
                segments.append((result.latency_ms / 1e3, result.power_watts))
                segments.append((job.inter_inference_sleep_ms / 1e3, idle_watts))
            power_trace = self.power_monitor.record(segments)

        self._finish()
        if self.store_sink is not None:
            self.store_sink.append(result)
            self.events.append("store_append")
        return BenchmarkRecord(
            result=result,
            power_trace=power_trace,
            workflow_events=tuple(self.events),
        )

    def run_jobs(self, jobs: Iterable[BenchmarkJob]) -> list[BenchmarkRecord]:
        """Run a batch of jobs, pruning incompatible ones up front.

        The cheap compatibility precheck happens *before* the Fig. 3 workflow
        starts, so an unsupported combination never pushes dependencies, cuts
        USB power or records a partial event trail.
        """
        records = []
        for job in jobs:
            if not self.executor.supports(job.graph, job.backend):
                continue
            records.append(self.run_job(job))
        return records

    def run_suite(self, graphs: Iterable[Graph], *, backend: Backend = Backend.CPU,
                  batch_size: int = 1, threads: Optional[ThreadConfig] = None,
                  num_inferences: int = 10) -> list[BenchmarkRecord]:
        """Benchmark every compatible model of a collection."""
        return self.run_jobs(
            BenchmarkJob(graph=graph, backend=backend, batch_size=batch_size,
                         threads=threads, num_inferences=num_inferences)
            for graph in graphs
        )
