"""Report builders: one function per table/figure of the paper's evaluation.

Each function takes analysis or benchmark outputs and returns a plain data
structure shaped like the corresponding artefact (rows of a table, series of a
figure), so the benchmark harness can print the same rows the paper reports
and EXPERIMENTS.md can record paper-vs-measured values side by side.

The benchmark-derived figures (latency ECDFs, energy distributions,
latency-vs-FLOPs, cloud-API usage) also accept a persistent
:class:`~repro.store.store.ResultStore` in place of their in-memory inputs;
they then delegate to the store's incremental
:class:`~repro.store.serving.ReportServer`, which produces bit-for-bit the
same tables from the persisted campaign without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.analysis.ecdf import Ecdf
from repro.analysis.stats import remove_outliers_iqr
from repro.core.records import ModelRecord, SnapshotAnalysis
from repro.dnn.graph import Modality
from repro.dnn.layers import LayerCategory
from repro.runtime.executor import ExecutionResult

__all__ = [
    "dataset_table",
    "models_per_framework_and_category",
    "task_classification_table",
    "layer_composition_by_modality",
    "flops_and_parameters_by_task",
    "latency_ecdf_by_device",
    "latency_vs_flops",
    "energy_distributions",
    "cloud_api_usage",
    "DatasetTableRow",
]


# --------------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DatasetTableRow:
    """One column of Table 2 (one snapshot)."""

    label: str
    date: str
    total_apps: int
    apps_with_frameworks: int
    apps_with_models: int
    total_models: int
    unique_models: int

    @property
    def apps_with_frameworks_pct(self) -> float:
        """Apps with frameworks as a percentage of all apps."""
        return 100.0 * self.apps_with_frameworks / max(1, self.total_apps)

    @property
    def apps_with_models_pct(self) -> float:
        """Apps with models as a percentage of all apps."""
        return 100.0 * self.apps_with_models / max(1, self.total_apps)

    @property
    def unique_models_pct(self) -> float:
        """Unique models as a percentage of all model instances."""
        return 100.0 * self.unique_models / max(1, self.total_models)


def dataset_table(analysis: SnapshotAnalysis) -> DatasetTableRow:
    """Build one Table 2 column from a snapshot analysis."""
    return DatasetTableRow(
        label=analysis.label,
        date=analysis.date,
        total_apps=analysis.total_apps,
        apps_with_frameworks=analysis.apps_with_frameworks,
        apps_with_models=analysis.apps_with_models,
        total_models=analysis.total_models,
        unique_models=analysis.unique_models,
    )


# --------------------------------------------------------------------------- #
# Fig. 4
# --------------------------------------------------------------------------- #
def models_per_framework_and_category(
    analysis: SnapshotAnalysis, min_models_per_category: int = 0
) -> dict[str, dict[str, int]]:
    """Fig. 4: model counts per category, broken down by framework.

    Returns ``{category: {framework: count}}`` sorted by total models per
    category (descending); categories below ``min_models_per_category`` are
    dropped, mirroring the figure's cut-off of 20.
    """
    counts: dict[str, dict[str, int]] = {}
    for record in analysis.models:
        by_framework = counts.setdefault(record.category, {})
        by_framework[record.framework] = by_framework.get(record.framework, 0) + 1
    filtered = {
        category: by_framework
        for category, by_framework in counts.items()
        if sum(by_framework.values()) >= min_models_per_category
    }
    return dict(sorted(filtered.items(), key=lambda item: sum(item[1].values()),
                       reverse=True))


# --------------------------------------------------------------------------- #
# Table 3
# --------------------------------------------------------------------------- #
def task_classification_table(analysis: SnapshotAnalysis) -> dict[str, dict[str, int]]:
    """Table 3: model counts per task, grouped by modality."""
    grouped: dict[str, dict[str, int]] = {}
    for record in analysis.models:
        modality_tasks = grouped.setdefault(record.modality.value, {})
        modality_tasks[record.task] = modality_tasks.get(record.task, 0) + 1
    for modality, tasks in grouped.items():
        grouped[modality] = dict(sorted(tasks.items(), key=lambda item: item[1],
                                        reverse=True))
    return grouped


# --------------------------------------------------------------------------- #
# Fig. 6
# --------------------------------------------------------------------------- #
def layer_composition_by_modality(
    analysis: SnapshotAnalysis,
) -> dict[str, dict[str, float]]:
    """Fig. 6: average layer-category composition (percent) per input modality."""
    sums: dict[str, dict[LayerCategory, float]] = {}
    counts: dict[str, int] = {}
    for record in analysis.models:
        modality = record.modality.value
        counts[modality] = counts.get(modality, 0) + 1
        per_modality = sums.setdefault(modality, {})
        for category, fraction in record.layer_category_fractions.items():
            per_modality[category] = per_modality.get(category, 0.0) + fraction
    composition: dict[str, dict[str, float]] = {}
    for modality, category_sums in sums.items():
        total_models = counts[modality]
        composition[modality] = {
            category.value: 100.0 * value / total_models
            for category, value in sorted(category_sums.items(), key=lambda i: i[0].value)
        }
    return composition


# --------------------------------------------------------------------------- #
# Fig. 7
# --------------------------------------------------------------------------- #
def flops_and_parameters_by_task(
    analysis: SnapshotAnalysis,
) -> dict[str, dict[str, float]]:
    """Fig. 7: per-task distribution summaries of FLOPs and parameters."""
    by_task: dict[str, list[ModelRecord]] = {}
    for record in analysis.models:
        by_task.setdefault(record.task, []).append(record)
    table: dict[str, dict[str, float]] = {}
    for task, records in by_task.items():
        flops = np.array([record.flops for record in records], dtype=float)
        params = np.array([record.parameters for record in records], dtype=float)
        table[task] = {
            "models": float(len(records)),
            "flops_median": float(np.median(flops)),
            "flops_min": float(np.min(flops)),
            "flops_max": float(np.max(flops)),
            "parameters_median": float(np.median(params)),
            "parameters_min": float(np.min(params)),
            "parameters_max": float(np.max(params)),
        }
    return dict(sorted(table.items(), key=lambda item: item[1]["flops_median"],
                       reverse=True))


# --------------------------------------------------------------------------- #
# Figs. 8 and 9
# --------------------------------------------------------------------------- #
def _report_server(source):
    """The serving layer of a results store, or ``None`` for in-memory input."""
    from repro.store.serving import ReportServer
    from repro.store.store import ResultStore

    if isinstance(source, ResultStore):
        return ReportServer(source)
    if isinstance(source, ReportServer):
        return source
    return None


def latency_vs_flops(results, device: Optional[str] = None
                     ) -> list[tuple[float, float]]:
    """Fig. 8: (latency_ms, flops) points for one device.

    ``results`` is either that device's result sequence, or a results store
    plus the ``device`` name to serve the points from persisted rows.
    """
    server = _report_server(results)
    if server is not None:
        if device is None:
            raise ValueError("latency_vs_flops over a store needs a device name")
        return server.latency_vs_flops(device)
    return [(result.latency_ms, float(result.flops)) for result in results]


def latency_ecdf_by_device(results_by_device) -> dict[str, Ecdf]:
    """Fig. 9: latency ECDF per device.

    Accepts the in-memory ``{device: results}`` mapping or a results store.
    """
    server = _report_server(results_by_device)
    if server is not None:
        return server.latency_ecdf_by_device()
    return {
        device: Ecdf.from_samples(result.latency_ms for result in results)
        for device, results in results_by_device.items()
        if results
    }


# --------------------------------------------------------------------------- #
# Fig. 10
# --------------------------------------------------------------------------- #
def energy_distributions(
    results_by_device,
    drop_outliers: bool = True,
) -> dict[str, dict[str, float]]:
    """Fig. 10: per-device energy / power / efficiency distribution summaries.

    Accepts the in-memory ``{device: results}`` mapping or a results store.
    """
    server = _report_server(results_by_device)
    if server is not None:
        return server.energy_distributions(drop_outliers)
    table: dict[str, dict[str, float]] = {}
    for device, results in results_by_device.items():
        if not results:
            continue
        energies = [result.energy_mj for result in results]
        powers = [result.power_watts for result in results]
        efficiencies = [result.efficiency_mflops_per_sw for result in results]
        if drop_outliers:
            efficiencies = remove_outliers_iqr(efficiencies) or efficiencies
        table[device] = {
            "energy_median_mj": float(np.median(energies)),
            "energy_mean_mj": float(np.mean(energies)),
            "power_median_w": float(np.median(powers)),
            "power_mean_w": float(np.mean(powers)),
            "efficiency_median_mflops_per_sw": float(np.median(efficiencies)),
        }
    return table


# --------------------------------------------------------------------------- #
# Fig. 15
# --------------------------------------------------------------------------- #
def cloud_api_usage(analysis,
                    min_apps: int = 0) -> dict[str, dict[str, object]]:
    """Fig. 15: number of apps invoking each cloud ML API category.

    Accepts a :class:`SnapshotAnalysis` or a results store holding the
    snapshot's ingested ``apps`` rows.
    """
    server = _report_server(analysis)
    if server is not None:
        return server.cloud_api_usage(min_apps)
    from repro.android.cloud_apis import tabulate_api_usage

    return tabulate_api_usage(
        (api_name for app in analysis.apps_using_cloud()
         for api_name in app.cloud_apis),
        min_apps)
