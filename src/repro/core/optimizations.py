"""Model-level optimisation adoption analysis (Sec. 6.1).

Aggregates per-model optimisation traces into the statistics the paper
reports: no clustering (``cluster_`` prefixes), no pruning (``prune_``
prefixes), ~3.15% near-zero weights, 10.3% of models with ``dequantize``
layers, 20.27% with int8 weights and 10.31% with int8 activations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.records import ModelRecord

__all__ = ["OptimizationAdoption", "analyze_optimizations"]


@dataclass(frozen=True)
class OptimizationAdoption:
    """Adoption of the three TFLite model-level optimisations across a snapshot."""

    total_models: int
    clustered_models: int
    pruned_models: int
    dequantize_models: int
    int8_weight_models: int
    int8_activation_models: int
    mean_near_zero_weight_fraction: float

    def _fraction(self, count: int) -> float:
        if self.total_models == 0:
            return 0.0
        return count / self.total_models

    @property
    def clustering_fraction(self) -> float:
        """Fraction of models with clustered layers (paper: 0)."""
        return self._fraction(self.clustered_models)

    @property
    def pruning_fraction(self) -> float:
        """Fraction of models with pruning-prefixed layers (paper: 0)."""
        return self._fraction(self.pruned_models)

    @property
    def dequantize_fraction(self) -> float:
        """Fraction of models containing dequantize layers (paper: 10.3%)."""
        return self._fraction(self.dequantize_models)

    @property
    def int8_weight_fraction(self) -> float:
        """Fraction of models storing int8 weights (paper: 20.27%)."""
        return self._fraction(self.int8_weight_models)

    @property
    def int8_activation_fraction(self) -> float:
        """Fraction of models with int8 activations (paper: 10.31%)."""
        return self._fraction(self.int8_activation_models)


def analyze_optimizations(models: Sequence[ModelRecord]) -> OptimizationAdoption:
    """Aggregate the optimisation traces of all validated models."""
    total = len(models)
    clustered = sum(1 for record in models if record.has_cluster_prefix)
    pruned = sum(1 for record in models if record.has_prune_prefix)
    dequantize = sum(1 for record in models if record.has_dequantize_layer)
    int8_weights = sum(1 for record in models if record.uses_int8_weights)
    int8_activations = sum(1 for record in models if record.uses_int8_activations)
    if total:
        mean_sparsity = sum(record.near_zero_weight_fraction for record in models) / total
    else:
        mean_sparsity = 0.0
    return OptimizationAdoption(
        total_models=total,
        clustered_models=clustered,
        pruned_models=pruned,
        dequantize_models=dequantize,
        int8_weight_models=int8_weights,
        int8_activation_models=int8_activations,
        mean_near_zero_weight_fraction=mean_sparsity,
    )
