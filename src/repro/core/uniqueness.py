"""Model uniqueness and fine-tuning analysis (Sec. 4.5).

Two analyses run over the validated models of a snapshot:

* **Uniqueness** — md5 checksums over model structure and weights identify
  off-the-shelf models shared across apps; the paper finds only 19.1% of
  models are unique and ~80.9% are shared by two or more applications.
* **Fine-tuning** — per-layer weight checksums compare the remaining unique
  models pairwise; 9.02% share at least 20% of their weights with another
  model, and 4.2% differ in at most three layers, indicating transfer
  learning of only the last layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.records import ModelRecord

__all__ = ["UniquenessReport", "FinetuneReport", "analyze_uniqueness", "analyze_finetuning"]


@dataclass(frozen=True)
class UniquenessReport:
    """Aggregate duplication statistics across model instances."""

    total_models: int
    unique_models: int
    models_shared_across_apps: int
    most_duplicated: tuple[tuple[str, int], ...]

    @property
    def unique_fraction(self) -> float:
        """Fraction of model instances that are unique (Table 2's 19.1%)."""
        if self.total_models == 0:
            return 0.0
        return self.unique_models / self.total_models

    @property
    def shared_fraction(self) -> float:
        """Fraction of instances whose model also ships in another app (~80.9%)."""
        if self.total_models == 0:
            return 0.0
        return self.models_shared_across_apps / self.total_models


@dataclass(frozen=True)
class FinetuneReport:
    """Aggregate fine-tuning statistics across *unique* models."""

    unique_models: int
    models_sharing_weights: int
    models_differing_few_layers: int
    share_threshold: float
    few_layer_threshold: int

    @property
    def sharing_fraction(self) -> float:
        """Fraction of unique models sharing >= threshold weights (paper: 9.02%)."""
        if self.unique_models == 0:
            return 0.0
        return self.models_sharing_weights / self.unique_models

    @property
    def few_layer_fraction(self) -> float:
        """Fraction differing in <= ``few_layer_threshold`` layers (paper: 4.2%)."""
        if self.unique_models == 0:
            return 0.0
        return self.models_differing_few_layers / self.unique_models


def analyze_uniqueness(models: Sequence[ModelRecord], top_k: int = 5) -> UniquenessReport:
    """Group model instances by checksum and report duplication statistics."""
    by_checksum: dict[str, list[ModelRecord]] = {}
    for record in models:
        by_checksum.setdefault(record.checksum, []).append(record)

    duplicated_instances = sum(
        len(group) for group in by_checksum.values()
        if len({record.app_package for record in group}) > 1
    )
    most_duplicated = sorted(
        ((group[0].name, len(group)) for group in by_checksum.values()),
        key=lambda item: item[1],
        reverse=True,
    )[:top_k]
    return UniquenessReport(
        total_models=len(models),
        unique_models=len(by_checksum),
        models_shared_across_apps=duplicated_instances,
        most_duplicated=tuple(most_duplicated),
    )


def analyze_finetuning(models: Sequence[ModelRecord], *, share_threshold: float = 0.2,
                       few_layer_threshold: int = 3) -> FinetuneReport:
    """Pairwise layer-checksum comparison across unique models.

    A model counts towards ``models_sharing_weights`` when at least
    ``share_threshold`` of its parameters (by count) have an identical layer
    checksum in some *other* unique model, and towards
    ``models_differing_few_layers`` when it shares weights with another model
    and differs from it in at most ``few_layer_threshold`` weighted layers.
    """
    unique: dict[str, ModelRecord] = {}
    for record in models:
        unique.setdefault(record.checksum, record)
    records = list(unique.values())

    # Pre-compute per-layer checksums once per unique model.  The checksums
    # themselves are memoised on the graphs, so this is the only place the md5
    # work can happen — repeated analyses over the same snapshot are free.
    layer_maps = [record.graph.layer_checksums() for record in records]
    layer_sets = [frozenset(layer_map.values()) for layer_map in layer_maps]
    parameters = [
        {name: record.graph.layer(name).num_parameters for name in layer_map}
        for record, layer_map in zip(records, layer_maps)
    ]

    sharing = 0
    few_layers = 0
    for i, record in enumerate(records):
        own_params = sum(parameters[i].values())
        if own_params == 0:
            continue
        own_set = layer_sets[i]
        own_items = list(layer_maps[i].items())
        best_share = 0.0
        min_diff = None
        for j, other in enumerate(records):
            if i == j:
                continue
            other_set = layer_sets[j]
            # Disjoint checksum sets cannot share any weights; skip the
            # parameter-weighted sum for the overwhelmingly common case.
            if own_set.isdisjoint(other_set):
                continue
            shared_params = sum(
                parameters[i][name]
                for name, checksum in own_items
                if checksum in other_set
            )
            share = shared_params / own_params
            if share > best_share:
                best_share = share
            if share >= share_threshold:
                names = set(layer_maps[i]) | set(layer_maps[j])
                diff = sum(
                    1 for name in names
                    if layer_maps[i].get(name) != layer_maps[j].get(name)
                )
                if min_diff is None or diff < min_diff:
                    min_diff = diff
        if best_share >= share_threshold:
            sharing += 1
            if min_diff is not None and min_diff <= few_layer_threshold:
                few_layers += 1

    return FinetuneReport(
        unique_models=len(records),
        models_sharing_weights=sharing,
        models_differing_few_layers=few_layers,
        share_threshold=share_threshold,
        few_layer_threshold=few_layer_threshold,
    )
