"""Play Store crawler (stage one of Fig. 1's "DNN retrieval").

Mimics gaugeNN's crawler: it walks every category's top-free chart (up to 500
apps per category), de-duplicates apps that chart in several categories, and
keeps the store metadata for later ETL-style analytics (the paper stores it in
ElasticSearch; here the :class:`CrawlResult` plays that role).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.android.playstore import CATEGORIES, PlayStore, PlayStoreListing, TOP_CHART_LIMIT

__all__ = ["CrawlResult", "Crawler"]


@dataclass
class CrawlResult:
    """Metadata of every app discovered by one crawl."""

    snapshot_label: str
    listings: dict[str, PlayStoreListing] = field(default_factory=dict)

    @property
    def total_apps(self) -> int:
        """Number of distinct apps discovered."""
        return len(self.listings)

    def packages(self) -> tuple[str, ...]:
        """All discovered package names."""
        return tuple(self.listings)

    def by_category(self) -> dict[str, list[PlayStoreListing]]:
        """Listings grouped by store category."""
        grouped: dict[str, list[PlayStoreListing]] = {}
        for listing in self.listings.values():
            grouped.setdefault(listing.category, []).append(listing)
        return grouped


class Crawler:
    """Crawls one snapshot of the (synthetic) Play Store."""

    def __init__(self, store: PlayStore, *, per_category_limit: int = TOP_CHART_LIMIT,
                 user_agent: str = "com.android.vending/Samsung SM-G977B",
                 locale: str = "en_GB") -> None:
        if per_category_limit <= 0:
            raise ValueError("per_category_limit must be positive")
        self.store = store
        self.per_category_limit = per_category_limit
        #: Store-variant headers the real crawler sets on its web API calls.
        self.user_agent = user_agent
        self.locale = locale

    def crawl(self, snapshot_label: str,
              categories: Optional[Iterable[str]] = None) -> CrawlResult:
        """Fetch the top-free charts of every category and merge them."""
        result = CrawlResult(snapshot_label=snapshot_label)
        for category in (categories or CATEGORIES):
            chart = self.store.top_free_apps(snapshot_label, category,
                                             limit=self.per_category_limit)
            for listing in chart:
                # Apps charting in multiple categories are kept once, under
                # the category of their first appearance.
                result.listings.setdefault(listing.package, listing)
        return result
