"""Rule-based model task classification (the paper's manual labelling, Sec. 4.4).

The paper had three ML researchers label every model's task from its file
name, input/output dimensions and layer types (with a majority vote); around
67% of names already hint the model or task.  This classifier encodes the same
signals as rules: a keyword table over file names, then structural heuristics
over the graph (detection post-processing nodes, recurrent layers over token
ids, spectrogram-shaped inputs, dense segmentation outputs, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Graph, Modality
from repro.dnn.layers import OpType

__all__ = ["TaskClassification", "TaskClassifier"]

#: Keyword -> task rules applied to the model file name, scoped per input
#: modality so that a generic keyword ("classifier", "detect") cannot shadow a
#: non-vision task.  Rules are ordered most specific first.
_VISION_NAME_RULES: tuple[tuple[str, str], ...] = (
    ("hair_segmentation", "semantic segmentation"),
    ("hair_recon", "hair reconstruction"),
    ("hair_recolor", "hair reconstruction"),
    ("segment", "semantic segmentation"),
    ("deeplab", "semantic segmentation"),
    ("blazeface", "face detection"),
    ("face_detect", "face detection"),
    ("face_detection", "face detection"),
    ("facenet", "face recognition"),
    ("face_embedding", "face recognition"),
    ("face_verifier", "face recognition"),
    ("landmark", "contour detection"),
    ("face_mesh", "contour detection"),
    ("facemesh", "contour detection"),
    ("contour", "contour detection"),
    ("ocr", "text recognition"),
    ("text_recognition", "text recognition"),
    ("card_number", "text recognition"),
    ("paycard", "text recognition"),
    ("recognizer", "text recognition"),
    ("posenet", "pose estimation"),
    ("pose_", "pose estimation"),
    ("style", "style transfer"),
    ("cartoon", "style transfer"),
    ("art_filter", "style transfer"),
    ("beauty", "photo beauty"),
    ("retouch", "photo beauty"),
    ("skin_smooth", "photo beauty"),
    ("nsfw", "nudity detection"),
    ("nudity", "nudity detection"),
    ("ssd", "object detection"),
    ("fssd", "object detection"),
    ("detect", "object detection"),
    ("object_localizer", "object detection"),
    ("yolo", "object detection"),
    ("ar_", "augmented reality"),
    ("arcore", "augmented reality"),
    ("anchor", "augmented reality"),
    ("imagenet", "image classification"),
    ("mobilenet_v", "image classification"),
    ("classifier", "image classification"),
    ("label", "object recognition"),
    ("recognize", "object recognition"),
)

_TEXT_NAME_RULES: tuple[tuple[str, str], ...] = (
    ("autocomplete", "auto-complete"),
    ("next_word", "auto-complete"),
    ("smart_compose", "auto-complete"),
    ("sentiment", "sentiment prediction"),
    ("toxicity", "content filter"),
    ("content_filter", "content filter"),
    ("topic", "text classification"),
    ("intent", "text classification"),
    ("translat", "translation"),
)

_AUDIO_NAME_RULES: tuple[tuple[str, str], ...] = (
    ("hotword", "keyword detection"),
    ("wakeword", "keyword detection"),
    ("asr", "speech recognition"),
    ("speech_to_text", "speech recognition"),
    ("speech", "speech recognition"),
    ("sound", "sound recognition"),
    ("yamnet", "sound recognition"),
    ("baby_cry", "sound recognition"),
)

_SENSOR_NAME_RULES: tuple[tuple[str, str], ...] = (
    ("crash", "crash detection"),
    ("collision", "crash detection"),
    ("activity", "movement tracking"),
    ("movement", "movement tracking"),
    ("step_", "movement tracking"),
)

_NAME_RULES_BY_MODALITY: dict[Modality, tuple[tuple[str, str], ...]] = {
    Modality.IMAGE: _VISION_NAME_RULES,
    Modality.TEXT: _TEXT_NAME_RULES,
    Modality.AUDIO: _AUDIO_NAME_RULES,
    Modality.SENSOR: _SENSOR_NAME_RULES,
}

#: Label used when neither the name nor the structure identifies the task.
UNIDENTIFIED = "unidentified"


@dataclass(frozen=True)
class TaskClassification:
    """A task label plus how it was derived."""

    task: str
    source: str
    confidence: float

    @property
    def identified(self) -> bool:
        """Whether a concrete task could be assigned."""
        return self.task != UNIDENTIFIED


class TaskClassifier:
    """Classifies a model's task from its name, I/O shapes and layers."""

    def classify(self, graph: Graph) -> TaskClassification:
        """Classify one model."""
        by_name = self._classify_by_name(graph.name.lower(), graph.modality)
        if by_name is not None:
            return TaskClassification(task=by_name, source="name", confidence=0.9)
        by_structure = self._classify_by_structure(graph)
        if by_structure is not None:
            return TaskClassification(task=by_structure, source="structure", confidence=0.6)
        return TaskClassification(task=UNIDENTIFIED, source="none", confidence=0.0)

    @staticmethod
    def _classify_by_name(name: str, modality: Modality) -> str | None:
        for keyword, task in _NAME_RULES_BY_MODALITY.get(modality, ()):
            if keyword in name:
                return task
        return None

    @staticmethod
    def _classify_by_structure(graph: Graph) -> str | None:
        ops = {layer.op for layer in graph.layers}
        modality = graph.modality
        outputs = graph.output_specs()
        output_elements = max((spec.num_elements for spec in outputs), default=0)

        if modality == Modality.IMAGE:
            if OpType.DETECTION_POSTPROCESS in ops:
                return "object detection"
            if OpType.LSTM in ops or OpType.GRU in ops:
                return "text recognition"
            input_spec = graph.input_specs[0]
            if outputs and len(outputs[0].shape) == 4:
                # Dense spatial output: image-to-image (segmentation-like).
                if outputs[0].shape[-1] <= 4 and output_elements > 1024:
                    return "semantic segmentation"
                return "photo beauty"
            if output_elements >= 500:
                return "image classification"
            if 0 < output_elements <= 16:
                return "augmented reality"
            if output_elements > 16:
                return "contour detection"
            return "object recognition"
        if modality == Modality.TEXT:
            if output_elements >= 5000:
                return "auto-complete"
            if output_elements <= 4:
                return "sentiment prediction"
            return "text classification"
        if modality == Modality.AUDIO:
            if OpType.LSTM in ops or OpType.GRU in ops:
                return "speech recognition"
            if output_elements <= 16:
                return "keyword detection"
            return "sound recognition"
        if modality == Modality.SENSOR:
            if output_elements <= 2:
                return "crash detection"
            return "movement tracking"
        return None
