"""Immutable store segments: JSONL row logs plus NumPy column caches.

A segment is the unit of durability and of query pruning:

* the **row log** (``<name>.jsonl``) is the source of truth — one JSON object
  per line, written to a temporary file, fsynced and atomically renamed into
  place, with its SHA-256 recorded in the store manifest;
* the **column cache** (``<name>.npz``) holds the same rows as one NumPy
  array per column for vectorised scans.  It is derived state: it embeds the
  row log's checksum and is rebuilt from the log whenever it is missing or
  does not match (e.g. a crash between the two writes);
* the **stats** recorded in the manifest (per-column min/max for numeric
  columns, the distinct-value set for low-cardinality string columns) let the
  query engine skip whole segments without touching the filesystem.

Segments are append-only at the store level — once sealed, a segment file is
never modified, so readers can cache its columns indefinitely.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.store.schema import RowKind

__all__ = ["SegmentMeta", "StoreCorruptionError", "write_segment",
           "load_rows", "load_columns", "build_columns", "column_stats",
           "verify_segment", "atomic_write_bytes", "mmap_sidecar_dir"]

#: String columns with at most this many distinct values record them in the
#: manifest stats, enabling equality pushdown; beyond it only row counts are
#: kept (the set would bloat the manifest without helping selectivity).
MAX_DISTINCT_TRACKED = 64


class StoreCorruptionError(RuntimeError):
    """A committed segment does not match its manifest checksum."""


@dataclass(frozen=True)
class SegmentMeta:
    """Manifest entry describing one sealed, immutable segment."""

    name: str
    kind: str
    rows: int
    sha256: str
    #: ``{column: {"min": x, "max": y}}`` for numeric columns and
    #: ``{column: {"values": [...]}}`` for tracked string columns.
    stats: Mapping[str, Mapping] = field(default_factory=dict)

    @property
    def log_filename(self) -> str:
        """Row-log file name within the segments directory."""
        return f"{self.name}.jsonl"

    @property
    def cache_filename(self) -> str:
        """Column-cache file name within the segments directory."""
        return f"{self.name}.npz"

    def to_json(self) -> dict:
        """Manifest-serialisable form."""
        return {"name": self.name, "kind": self.kind, "rows": self.rows,
                "sha256": self.sha256, "stats": dict(self.stats)}

    @classmethod
    def from_json(cls, data: Mapping) -> "SegmentMeta":
        """Rebuild a meta from its manifest entry."""
        return cls(name=data["name"], kind=data["kind"], rows=int(data["rows"]),
                   sha256=data["sha256"], stats=dict(data.get("stats", {})))


# --------------------------------------------------------------------------- #
# Atomic file plumbing
# --------------------------------------------------------------------------- #
def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via tmp-file + fsync + atomic rename.

    After this returns the file is either fully present with the new content
    or (if the process died earlier) entirely absent/unchanged — never a
    partial write under the final name.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Flush a rename to the directory entry (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


# --------------------------------------------------------------------------- #
# Column building and stats
# --------------------------------------------------------------------------- #
def build_columns(kind: RowKind, rows: Sequence[Mapping]) -> dict[str, np.ndarray]:
    """Pivot rows into one read-only NumPy array per schema column."""
    columns: dict[str, np.ndarray] = {}
    for column in kind.columns:
        values = [row[column.name] for row in rows]
        if column.dtype == "str":
            array = np.array(values, dtype=np.str_)
        else:
            array = np.array(values, dtype=column.numpy_dtype)
        array.setflags(write=False)
        columns[column.name] = array
    return columns


def column_stats(kind: RowKind, columns: Mapping[str, np.ndarray]) -> dict:
    """Per-column pruning stats recorded in the manifest.

    Numeric columns record their min/max; string columns record their distinct
    values when few enough to be useful for equality pushdown.
    """
    stats: dict[str, dict] = {}
    for column in kind.columns:
        array = columns[column.name]
        if array.size == 0:
            continue
        if column.is_numeric:
            stats[column.name] = {"min": array.min().item(),
                                  "max": array.max().item()}
        elif column.dtype == "str":
            distinct = np.unique(array)
            if distinct.size <= MAX_DISTINCT_TRACKED:
                stats[column.name] = {"values": [str(v) for v in distinct]}
    return stats


# --------------------------------------------------------------------------- #
# Segment IO
# --------------------------------------------------------------------------- #
def write_segment(directory: Path, name: str, kind: RowKind,
                  rows: Sequence[Mapping]) -> SegmentMeta:
    """Seal ``rows`` into an immutable segment and return its manifest entry.

    The row log is written atomically first (it is the durable artefact);
    the column cache is written second and is recoverable, so a crash between
    the two leaves a valid, rebuildable segment.  The segment only becomes
    *visible* once the caller commits the returned meta to the manifest.
    """
    directory.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    for row in rows:
        buffer.write(json.dumps(row, sort_keys=True).encode("utf-8"))
        buffer.write(b"\n")
    payload = buffer.getvalue()
    digest = hashlib.sha256(payload).hexdigest()

    meta = SegmentMeta(name=name, kind=kind.name, rows=len(rows), sha256=digest)
    atomic_write_bytes(directory / meta.log_filename, payload)

    columns = build_columns(kind, rows)
    meta = SegmentMeta(name=name, kind=kind.name, rows=len(rows),
                       sha256=digest, stats=column_stats(kind, columns))
    _write_cache(directory / meta.cache_filename, digest, columns)
    return meta


def _write_cache(path: Path, log_sha256: str,
                 columns: Mapping[str, np.ndarray]) -> None:
    """Write the npz column cache, tagged with the row log's checksum."""
    buffer = io.BytesIO()
    np.savez(buffer, __log_sha256__=np.array(log_sha256),
             **{name: array for name, array in columns.items()})
    atomic_write_bytes(path, buffer.getvalue())


def _read_log(directory: Path, meta: SegmentMeta, *, verify: bool) -> bytes:
    """Read a committed row log, optionally verifying its checksum."""
    path = directory / meta.log_filename
    try:
        payload = path.read_bytes()
    except FileNotFoundError:
        raise StoreCorruptionError(
            f"segment {meta.name!r} is in the manifest but its row log "
            f"{path} is missing") from None
    if verify and hashlib.sha256(payload).hexdigest() != meta.sha256:
        raise StoreCorruptionError(
            f"segment {meta.name!r} row log does not match its manifest "
            f"checksum — the store is corrupt")
    return payload


def verify_segment(directory: Path, meta: SegmentMeta) -> None:
    """Check one committed segment's row log against its manifest checksum.

    Raises :class:`StoreCorruptionError` when the log is missing or does not
    hash to the manifest's sha256.
    """
    _read_log(directory, meta, verify=True)


def load_rows(directory: Path, meta: SegmentMeta, *,
              verify: bool = False) -> list[dict]:
    """Load a committed segment's rows from its JSONL log."""
    payload = _read_log(directory, meta, verify=verify)
    rows = [json.loads(line) for line in payload.splitlines() if line]
    if len(rows) != meta.rows:
        raise StoreCorruptionError(
            f"segment {meta.name!r} holds {len(rows)} rows, manifest "
            f"says {meta.rows}")
    return rows


def load_columns(directory: Path, meta: SegmentMeta, kind: RowKind, *,
                 verify: bool = False,
                 mmap: bool = False) -> dict[str, np.ndarray]:
    """Load a segment's column arrays, rebuilding the cache if needed.

    The npz cache is only trusted when its embedded checksum matches the
    manifest entry; otherwise (missing file, torn write, stale generation)
    the columns are rebuilt from the row log and the cache is rewritten.
    With ``verify`` the row log itself is checksummed too, even when the
    cache is valid — the paranoid mode for auditing a copied store.

    With ``mmap`` the columns come back memory-mapped read-only from a
    per-column ``.npy`` sidecar directory (npz archives cannot be mapped):
    the sidecar is materialised once per segment and checksum-tagged like
    the npz cache, after which opening a segment costs page-table entries
    instead of resident memory — the read path for >10M-row stores.
    """
    if mmap:
        return _load_columns_mmap(directory, meta, kind, verify=verify)
    if verify:
        _read_log(directory, meta, verify=True)
    path = directory / meta.cache_filename
    if path.exists():
        try:
            with np.load(path) as archive:
                if str(archive["__log_sha256__"]) == meta.sha256:
                    columns = {}
                    for column in kind.columns:
                        array = archive[column.name]
                        array.setflags(write=False)
                        columns[column.name] = array
                    if all(a.shape == (meta.rows,) for a in columns.values()):
                        return columns
        except (OSError, ValueError, KeyError):
            pass  # fall through to a rebuild from the row log
    rows = load_rows(directory, meta, verify=verify)
    columns = build_columns(kind, rows)
    _write_cache(path, meta.sha256, columns)
    return columns


# --------------------------------------------------------------------------- #
# Memory-mapped column sidecars
# --------------------------------------------------------------------------- #
#: Directory suffix of a segment's per-column ``.npy`` sidecar.
MMAP_DIR_SUFFIX = ".cols"

#: Marker file tying a sidecar to its row log's checksum.
MMAP_MARKER = "LOG_SHA256"


def mmap_sidecar_dir(directory: Path, meta: SegmentMeta) -> Path:
    """The per-column sidecar directory of one segment."""
    return directory / f"{meta.name}{MMAP_DIR_SUFFIX}"


def _load_columns_mmap(directory: Path, meta: SegmentMeta, kind: RowKind, *,
                       verify: bool = False) -> dict[str, np.ndarray]:
    """Columns as read-only memory maps, building the sidecar if needed.

    The marker file is written *last*, so a crash mid-materialisation leaves
    a sidecar without a valid marker and the next open rebuilds it; a stale
    sidecar (marker not matching the manifest checksum) is rebuilt the same
    way.  ``verify`` checksums the row log exactly like the in-memory path —
    including when a valid sidecar lets the load skip the log entirely.  The
    arrays come back identical to the in-memory path — only their backing
    store differs — which ``tests/test_store.py`` asserts query by query.
    """
    if verify:
        _read_log(directory, meta, verify=True)
    sidecar = mmap_sidecar_dir(directory, meta)
    marker = sidecar / MMAP_MARKER
    valid = False
    try:
        valid = marker.read_text().strip() == meta.sha256
    except FileNotFoundError:
        pass
    if valid:
        try:
            return {
                column.name: np.load(sidecar / f"{column.name}.npy",
                                     mmap_mode="r")
                for column in kind.columns
            }
        except (OSError, ValueError):
            valid = False  # torn sidecar: fall through to a rebuild
    columns = load_columns(directory, meta, kind)  # log verified above
    sidecar.mkdir(parents=True, exist_ok=True)
    for name, array in columns.items():
        buffer = io.BytesIO()
        np.save(buffer, array)
        atomic_write_bytes(sidecar / f"{name}.npy", buffer.getvalue())
    atomic_write_bytes(marker, (meta.sha256 + "\n").encode("utf-8"))
    return {
        column.name: np.load(sidecar / f"{column.name}.npy", mmap_mode="r")
        for column in kind.columns
    }
