"""Immutable store segments: JSONL row logs and binary columnar payloads.

A segment is the unit of durability and of query pruning.  Two on-disk
formats coexist, chosen per segment at seal time and recorded in the
manifest entry:

* a **JSONL segment** (format ``"jsonl"``) keeps the row log
  (``<name>.jsonl``, one JSON object per line) as the checksummed source of
  truth plus a derived, rebuildable NumPy column cache (``<name>.npz``)
  for vectorised scans — the row-oriented format every store before format
  version 3 wrote;
* a **columnar segment** (format ``"columnar"``, ``<name>.colseg``) makes
  the packed per-column payload of :mod:`repro.store.columnar` the
  checksummed durable artifact itself: one contiguous little-endian buffer
  per schema column behind a JSON header, sealed in a single
  ``tobytes``-and-write and opened as zero-copy ``frombuffer`` views.  This
  is the batch-native fast path ``StoreWriter.append_batch`` seals — no
  per-row JSON encode on ingest, no pivot on read.

Both formats seal through the same tmp-file + fsync + atomic-rename
protocol, carry the same manifest stats (per-column min/max for numeric
columns, distinct-value sets for low-cardinality strings) and decode to
bit-identical column arrays, so queries never care which format a segment
was written in.  Segments are append-only at the store level — once sealed,
a segment file is never modified, so readers can cache its columns
indefinitely.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap as mmap_module
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.store import columnar
from repro.store.schema import RowKind

__all__ = ["SegmentMeta", "StoreCorruptionError", "write_segment",
           "write_columnar_segment", "load_rows", "load_columns",
           "build_columns", "rows_from_columns", "column_stats",
           "verify_segment", "atomic_write_bytes", "mmap_sidecar_dir",
           "materialise_sidecar", "FORMAT_JSONL", "FORMAT_COLUMNAR"]

#: Segment format names recorded in the manifest.
FORMAT_JSONL = "jsonl"
FORMAT_COLUMNAR = "columnar"

#: File suffix of a columnar segment's packed payload.
COLUMNAR_SUFFIX = ".colseg"

#: String columns with at most this many distinct values record them in the
#: manifest stats, enabling equality pushdown; beyond it only row counts are
#: kept (the set would bloat the manifest without helping selectivity).
MAX_DISTINCT_TRACKED = 64


class StoreCorruptionError(RuntimeError):
    """A committed segment does not match its manifest checksum."""


@dataclass(frozen=True)
class SegmentMeta:
    """Manifest entry describing one sealed, immutable segment."""

    name: str
    kind: str
    rows: int
    sha256: str
    #: ``{column: {"min": x, "max": y}}`` for numeric columns and
    #: ``{column: {"values": [...]}}`` for tracked string columns.
    stats: Mapping[str, Mapping] = field(default_factory=dict)
    #: On-disk format: :data:`FORMAT_JSONL` or :data:`FORMAT_COLUMNAR`.
    format: str = FORMAT_JSONL

    @property
    def is_columnar(self) -> bool:
        """Whether the durable artifact is the packed columnar payload."""
        return self.format == FORMAT_COLUMNAR

    @property
    def log_filename(self) -> str:
        """Row-log file name within the segments directory (JSONL format)."""
        return f"{self.name}.jsonl"

    @property
    def cache_filename(self) -> str:
        """Column-cache file name within the segments directory (JSONL format)."""
        return f"{self.name}.npz"

    @property
    def data_filename(self) -> str:
        """The checksummed durable artifact's file name for this format."""
        return f"{self.name}{COLUMNAR_SUFFIX}" if self.is_columnar \
            else self.log_filename

    @property
    def filenames(self) -> tuple[str, ...]:
        """Every file this segment may own in the segments directory."""
        if self.is_columnar:
            return (self.data_filename,)
        return (self.log_filename, self.cache_filename)

    def to_json(self) -> dict:
        """Manifest-serialisable form."""
        return {"name": self.name, "kind": self.kind, "rows": self.rows,
                "sha256": self.sha256, "stats": dict(self.stats),
                "format": self.format}

    @classmethod
    def from_json(cls, data: Mapping) -> "SegmentMeta":
        """Rebuild a meta from its manifest entry.

        Entries written before format version 3 carry no ``format`` key;
        they are JSONL segments by definition.
        """
        return cls(name=data["name"], kind=data["kind"], rows=int(data["rows"]),
                   sha256=data["sha256"], stats=dict(data.get("stats", {})),
                   format=data.get("format", FORMAT_JSONL))


# --------------------------------------------------------------------------- #
# Atomic file plumbing
# --------------------------------------------------------------------------- #
def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via tmp-file + fsync + atomic rename.

    After this returns the file is either fully present with the new content
    or (if the process died earlier) entirely absent/unchanged — never a
    partial write under the final name.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Flush a rename to the directory entry (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


# --------------------------------------------------------------------------- #
# Column building and stats
# --------------------------------------------------------------------------- #
def build_columns(kind: RowKind, rows: Sequence[Mapping]) -> dict[str, np.ndarray]:
    """Pivot rows into one read-only NumPy array per schema column."""
    columns: dict[str, np.ndarray] = {}
    for column in kind.columns:
        values = [row[column.name] for row in rows]
        if column.dtype == "str":
            array = np.array(values, dtype=np.str_)
        else:
            array = np.array(values, dtype=column.numpy_dtype)
        array.setflags(write=False)
        columns[column.name] = array
    return columns


def rows_from_columns(kind: RowKind,
                      columns: Mapping[str, np.ndarray]) -> list[dict]:
    """Pivot column arrays back into plain-scalar row dicts.

    The inverse of :func:`build_columns`: values come back as native Python
    scalars (``.item()``), so a row pivoted out of a columnar segment
    compares ``==`` to the dict the equivalent JSONL row parses to.
    """
    ordered = [(column.name, columns[column.name]) for column in kind.columns]
    length = ordered[0][1].size if ordered else 0
    return [{name: array[i].item() for name, array in ordered}
            for i in range(length)]


def column_stats(kind: RowKind, columns: Mapping[str, np.ndarray], *,
                 distinct: Optional[Mapping[str, np.ndarray]] = None) -> dict:
    """Per-column pruning stats recorded in the manifest.

    Numeric columns record their min/max; string columns record their distinct
    values when few enough to be useful for equality pushdown.  ``distinct``
    optionally supplies precomputed per-column distinct-value arrays (the
    columnar sealer gets them for free from its dictionary encoding) so the
    ``np.unique`` pass is not repeated.
    """
    stats: dict[str, dict] = {}
    for column in kind.columns:
        array = columns[column.name]
        if array.size == 0:
            continue
        if column.is_numeric:
            stats[column.name] = {"min": array.min().item(),
                                  "max": array.max().item()}
        elif column.dtype == "str":
            values = distinct.get(column.name) if distinct is not None else None
            if values is None:
                values = np.unique(array)
            if values.size <= MAX_DISTINCT_TRACKED:
                stats[column.name] = {"values": [str(v) for v in values]}
    return stats


# --------------------------------------------------------------------------- #
# Segment IO
# --------------------------------------------------------------------------- #
def write_segment(directory: Path, name: str, kind: RowKind,
                  rows: Sequence[Mapping]) -> SegmentMeta:
    """Seal ``rows`` into an immutable segment and return its manifest entry.

    The row log is written atomically first (it is the durable artefact);
    the column cache is written second and is recoverable, so a crash between
    the two leaves a valid, rebuildable segment.  The segment only becomes
    *visible* once the caller commits the returned meta to the manifest.
    """
    directory.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    for row in rows:
        buffer.write(json.dumps(row, sort_keys=True).encode("utf-8"))
        buffer.write(b"\n")
    payload = buffer.getvalue()
    digest = hashlib.sha256(payload).hexdigest()

    meta = SegmentMeta(name=name, kind=kind.name, rows=len(rows), sha256=digest)
    atomic_write_bytes(directory / meta.log_filename, payload)

    columns = build_columns(kind, rows)
    meta = SegmentMeta(name=name, kind=kind.name, rows=len(rows),
                       sha256=digest, stats=column_stats(kind, columns))
    _write_cache(directory / meta.cache_filename, digest, columns)
    return meta


def write_columnar_segment(directory: Path, name: str, kind: RowKind,
                           columns: Mapping[str, np.ndarray], *,
                           compress: bool = False) -> SegmentMeta:
    """Seal a validated column batch into an immutable columnar segment.

    The packed per-column payload *is* the checksummed durable artifact —
    there is no separate row log or derived cache to keep consistent, so a
    seal is one atomic write.  ``columns`` must already be schema-coerced
    (:func:`repro.store.columnar.coerce_batch`); the manifest stats come
    from the same arrays via the vectorised :func:`column_stats`.  With
    ``compress`` each column section is zlib-deflated when that wins
    (recorded per column in the payload header; the manifest checksum
    always covers the bytes actually on disk).  As with
    :func:`write_segment`, the segment only becomes *visible* once the
    caller commits the returned meta to the manifest.
    """
    directory.mkdir(parents=True, exist_ok=True)
    distinct: dict[str, np.ndarray] = {}
    payload = columnar.pack_columns(kind, columns, distinct_out=distinct,
                                    compress=compress)
    digest = hashlib.sha256(payload).hexdigest()
    rows = next(iter(columns.values())).size if columns else 0
    meta = SegmentMeta(name=name, kind=kind.name, rows=int(rows),
                       sha256=digest,
                       stats=column_stats(kind, columns, distinct=distinct),
                       format=FORMAT_COLUMNAR)
    atomic_write_bytes(directory / meta.data_filename, payload)
    return meta


def _write_cache(path: Path, log_sha256: str,
                 columns: Mapping[str, np.ndarray]) -> None:
    """Write the npz column cache, tagged with the row log's checksum."""
    buffer = io.BytesIO()
    np.savez(buffer, __log_sha256__=np.array(log_sha256),
             **{name: array for name, array in columns.items()})
    atomic_write_bytes(path, buffer.getvalue())


def _read_payload(directory: Path, meta: SegmentMeta, *,
                  verify: bool) -> bytes:
    """Read a segment's durable artifact, optionally verifying its checksum.

    The artifact is the JSONL row log for row-oriented segments and the
    packed columnar payload for columnar ones — either way the bytes that
    the manifest's sha256 covers.
    """
    path = directory / meta.data_filename
    try:
        payload = path.read_bytes()
    except FileNotFoundError:
        raise StoreCorruptionError(
            f"segment {meta.name!r} is in the manifest but its "
            f"{meta.format} data file {path} is missing") from None
    if verify and hashlib.sha256(payload).hexdigest() != meta.sha256:
        raise StoreCorruptionError(
            f"segment {meta.name!r} {meta.format} data does not match its "
            f"manifest checksum — the store is corrupt")
    return payload


def verify_segment(directory: Path, meta: SegmentMeta) -> None:
    """Check one committed segment's data file against its manifest checksum.

    Raises :class:`StoreCorruptionError` when the file is missing or does
    not hash to the manifest's sha256.
    """
    _read_payload(directory, meta, verify=True)


def _unpack_columnar(payload: bytes, meta: SegmentMeta,
                     kind: RowKind) -> dict[str, np.ndarray]:
    """Decode a columnar payload, mapping codec errors to corruption."""
    try:
        return columnar.unpack_columns(payload, kind,
                                       expected_rows=meta.rows)
    except (ValueError, TypeError, KeyError) as error:
        raise StoreCorruptionError(
            f"segment {meta.name!r} columnar payload is corrupt: {error}"
        ) from None


def load_rows(directory: Path, meta: SegmentMeta, *,
              verify: bool = False) -> list[dict]:
    """Load a committed segment's rows, whichever format it was sealed in.

    JSONL segments parse their row log; columnar segments pivot their
    column arrays back into plain-scalar dicts (:func:`rows_from_columns`),
    which compare ``==`` to the dicts the equivalent JSONL rows parse to.
    """
    payload = _read_payload(directory, meta, verify=verify)
    if meta.is_columnar:
        from repro.store.schema import kind_for

        kind = kind_for(meta.kind)
        return rows_from_columns(kind, _unpack_columnar(payload, meta, kind))
    rows = [json.loads(line) for line in payload.splitlines() if line]
    if len(rows) != meta.rows:
        raise StoreCorruptionError(
            f"segment {meta.name!r} holds {len(rows)} rows, manifest "
            f"says {meta.rows}")
    return rows


def load_columns(directory: Path, meta: SegmentMeta, kind: RowKind, *,
                 verify: bool = False,
                 mmap: bool = False) -> Mapping[str, np.ndarray]:
    """Load a segment's column arrays, rebuilding the cache if needed.

    The npz cache is only trusted when its embedded checksum matches the
    manifest entry; otherwise (missing file, torn write, stale generation)
    the columns are rebuilt from the row log and the cache is rewritten.
    With ``verify`` the row log itself is checksummed too, even when the
    cache is valid — the paranoid mode for auditing a copied store.

    Columnar segments skip all of that: their durable artifact already *is*
    the column payload, so a load is one read plus lazy zero-copy
    ``frombuffer`` views (:class:`_SegmentColumns` — mmap'd or not, the
    payload structure is validated eagerly, columns decode on first
    access, and dict-encoded columns additionally expose their
    codes + vocabulary through ``.coded`` for the query engine) — a
    malformed payload raises :class:`StoreCorruptionError` at open for
    structural damage and at column access for per-column damage (there
    is no row log to rebuild from; the checksummed file itself is the
    source of truth).

    With ``mmap`` the columns come back memory-mapped read-only from a
    per-column ``.npy`` sidecar directory (npz archives cannot be mapped):
    the sidecar is materialised once per segment and checksum-tagged like
    the npz cache, after which opening a segment costs page-table entries
    instead of resident memory — the read path for >10M-row stores.
    """
    if mmap:
        return _load_columns_mmap(directory, meta, kind, verify=verify)
    if meta.is_columnar:
        payload = _read_payload(directory, meta, verify=verify)
        try:
            lazy = columnar.open_columns(payload, kind,
                                         expected_rows=meta.rows)
        except (ValueError, TypeError, KeyError) as error:
            raise StoreCorruptionError(
                f"segment {meta.name!r} columnar payload is corrupt: "
                f"{error}") from None
        return _SegmentColumns(meta.name, lazy)
    if verify:
        _read_payload(directory, meta, verify=True)
    path = directory / meta.cache_filename
    if path.exists():
        try:
            with np.load(path) as archive:
                if str(archive["__log_sha256__"]) == meta.sha256:
                    columns = {}
                    for column in kind.columns:
                        array = archive[column.name]
                        array.setflags(write=False)
                        columns[column.name] = array
                    if all(a.shape == (meta.rows,) for a in columns.values()):
                        return columns
        except (OSError, ValueError, KeyError):
            pass  # fall through to a rebuild from the row log
    # Rebuild from the row log; load_rows re-verifies the row count against
    # meta.rows and raises StoreCorruptionError on mismatch, so a stale or
    # misshapen cache can never be silently replaced by equally-wrong data.
    rows = load_rows(directory, meta, verify=verify)
    columns = build_columns(kind, rows)
    _write_cache(path, meta.sha256, columns)
    return columns


# --------------------------------------------------------------------------- #
# Memory-mapped column sidecars
# --------------------------------------------------------------------------- #
#: Directory suffix of a segment's per-column ``.npy`` sidecar.
MMAP_DIR_SUFFIX = ".cols"

#: Marker file tying a sidecar to its row log's checksum.
MMAP_MARKER = "LOG_SHA256"


def mmap_sidecar_dir(directory: Path, meta: SegmentMeta) -> Path:
    """The per-column sidecar directory of one segment."""
    return directory / f"{meta.name}{MMAP_DIR_SUFFIX}"


class _SegmentColumns(Mapping):
    """A segment's lazily-decoded columns with the store's error contract.

    Wraps :class:`repro.store.columnar.LazyColumns` so that a decode
    failure at column-access time (torn mmap'd payload, bad compressed
    section) surfaces as :class:`StoreCorruptionError` — the same
    exception the eager load path raises — instead of the codec's raw
    :class:`ValueError`.
    """

    __slots__ = ("_name", "_lazy")

    def __init__(self, name: str, lazy: "columnar.LazyColumns") -> None:
        self._name = name
        self._lazy = lazy

    def __getitem__(self, column: str) -> np.ndarray:
        try:
            return self._lazy[column]
        except (ValueError, TypeError) as error:
            raise StoreCorruptionError(
                f"segment {self._name!r} columnar payload is corrupt: "
                f"{error}") from None

    def coded(self, column: str) -> Optional["columnar.CodedColumn"]:
        """Codes + vocabulary of a dict-encoded column (``None`` otherwise).

        The query engine's coded read path
        (:meth:`repro.store.columnar.LazyColumns.coded`), under the same
        :class:`StoreCorruptionError` contract as ``__getitem__``.
        """
        try:
            return self._lazy.coded(column)
        except (ValueError, TypeError) as error:
            raise StoreCorruptionError(
                f"segment {self._name!r} columnar payload is corrupt: "
                f"{error}") from None

    def __contains__(self, column) -> bool:
        return column in self._lazy

    def __iter__(self) -> Iterator[str]:
        return iter(self._lazy)

    def __len__(self) -> int:
        return len(self._lazy)


def _map_columnar(directory: Path, meta: SegmentMeta, kind: RowKind, *,
                  verify: bool = False) -> Mapping[str, np.ndarray]:
    """Open a columnar segment's payload memory-mapped, zero-copy.

    The ``.colseg`` file is mapped read-only and the header parsed in
    place (:func:`repro.store.columnar.open_columns`); each raw column is
    then a ``frombuffer`` view of the mapped pages — no ``.npy`` sidecar
    to materialise, no second copy of the data on disk, and columns a
    query never touches are never decoded.  Structural corruption
    surfaces here; per-column decode errors surface on first access via
    :class:`_SegmentColumns`.
    """
    path = directory / meta.data_filename
    if verify:
        _read_payload(directory, meta, verify=True)
    try:
        with open(path, "rb") as handle:
            buffer = mmap_module.mmap(handle.fileno(), 0,
                                      access=mmap_module.ACCESS_READ)
    except FileNotFoundError:
        raise StoreCorruptionError(
            f"segment {meta.name!r} is in the manifest but its "
            f"{meta.format} data file {path} is missing") from None
    except (OSError, ValueError) as error:
        raise StoreCorruptionError(
            f"segment {meta.name!r} columnar payload cannot be mapped: "
            f"{error}") from None
    try:
        lazy = columnar.open_columns(buffer, kind, expected_rows=meta.rows)
    except (ValueError, TypeError, KeyError) as error:
        raise StoreCorruptionError(
            f"segment {meta.name!r} columnar payload is corrupt: {error}"
        ) from None
    return _SegmentColumns(meta.name, lazy)


def materialise_sidecar(directory: Path, meta: SegmentMeta, kind: RowKind, *,
                        verify: bool = False) -> dict[str, np.ndarray]:
    """Columns as read-only memory maps of a per-column ``.npy`` sidecar.

    The marker file is written *last*, so a crash mid-materialisation leaves
    a sidecar without a valid marker and the next open rebuilds it; a stale
    sidecar (marker not matching the manifest checksum) is rebuilt the same
    way, and so is one whose arrays do not all hold exactly ``meta.rows``
    values (e.g. a sidecar truncated after its marker was written) — the
    same row-count audit the in-memory cache path applies.  ``verify``
    checksums the durable data file exactly like the in-memory path —
    including when a valid sidecar lets the load skip it entirely.  The
    arrays come back identical to the in-memory path — only their backing
    store differs — which ``tests/test_store.py`` asserts query by query.

    This is the mmap path for JSONL segments (their row log cannot be
    mapped directly); columnar segments normally map their payload in
    place instead (:func:`_map_columnar`) and only hit this function as
    the explicit sidecar baseline in the campaign read benchmark.
    """
    if verify:
        _read_payload(directory, meta, verify=True)
    sidecar = mmap_sidecar_dir(directory, meta)
    marker = sidecar / MMAP_MARKER
    valid = False
    try:
        valid = marker.read_text().strip() == meta.sha256
    except FileNotFoundError:
        pass
    if valid:
        try:
            columns = {
                column.name: np.load(sidecar / f"{column.name}.npy",
                                     mmap_mode="r")
                for column in kind.columns
            }
            if all(a.shape == (meta.rows,) for a in columns.values()):
                return columns
        except (OSError, ValueError):
            pass  # torn sidecar: fall through to a rebuild
    columns = load_columns(directory, meta, kind)  # data verified above
    sidecar.mkdir(parents=True, exist_ok=True)
    for name, array in columns.items():
        buffer = io.BytesIO()
        np.save(buffer, array)
        atomic_write_bytes(sidecar / f"{name}.npy", buffer.getvalue())
    atomic_write_bytes(marker, (meta.sha256 + "\n").encode("utf-8"))
    mapped = {
        column.name: np.load(sidecar / f"{column.name}.npy", mmap_mode="r")
        for column in kind.columns
    }
    for name, array in mapped.items():
        if array.shape != (meta.rows,):
            raise StoreCorruptionError(
                f"segment {meta.name!r} sidecar column {name!r} holds "
                f"{array.shape[0]} values after a rebuild, manifest says "
                f"{meta.rows}")
    return mapped


def _load_columns_mmap(directory: Path, meta: SegmentMeta, kind: RowKind, *,
                       verify: bool = False) -> Mapping[str, np.ndarray]:
    """Dispatch a memory-mapped column load by segment format.

    Columnar segments map their packed payload in place — zero extra
    bytes on disk, lazy per-column decoding; JSONL segments materialise
    (or reuse) the per-column ``.npy`` sidecar, the only way to serve
    their row-log data without holding it resident.
    """
    if meta.is_columnar:
        return _map_columnar(directory, meta, kind, verify=verify)
    return materialise_sidecar(directory, meta, kind, verify=verify)
