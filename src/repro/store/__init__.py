"""Persistent, queryable results store with streaming sweep ingestion.

The paper's deliverable is a campaign — ~1,600 unique models x 6 devices x 7
backends x batch/thread configs — and a campaign's results need to outlive
the process that measured them.  This package is that durability layer:

* :class:`~repro.store.store.ResultStore` — an append-only, sharded,
  column-oriented store (JSONL row logs + NumPy column caches, checksummed,
  crash-safe via atomic segment rotation);
* :class:`~repro.store.writer.StoreWriter` — the streaming ingestion sink
  that :class:`~repro.runtime.sweep.SweepRunner` and
  :class:`~repro.core.benchmarker.DeviceBenchmarker` feed; its
  :meth:`~repro.store.writer.StoreWriter.append_batch` is the batch-native
  fast path the fleet/cloud simulators stream column arrays through,
  sealing packed binary columnar segments (format version 3) next to the
  row-oriented JSONL ones — mixed stores query bit-identically;
* :class:`~repro.store.query.Query` — vectorised filters/aggregations with
  per-segment predicate pushdown;
* :class:`~repro.store.serving.ReportServer` — incremental, store-backed
  versions of the reports-layer figure tables.

See the README's "Results store" section for the on-disk layout and usage.
"""

from repro.store.compact import CompactionStats, compact_store
from repro.store.diff import (DIFF_SPECS, DiffSpec, KindDiff, MetricSpec,
                              StoreDiff, diff_kind, diff_kind_reference,
                              diff_stores)
from repro.store.export import ExportStats, export_store
from repro.store.merge import MergeStats, adopt_segments, merge_stores
from repro.store.query import Query, QueryStats
from repro.store.schema import ROW_KINDS, RowKind, kind_for
from repro.store.segment import (FORMAT_COLUMNAR, FORMAT_JSONL, SegmentMeta,
                                 StoreCorruptionError)
from repro.store.serving import ReportServer
from repro.store.store import ResultStore, StoreSnapshot
from repro.store.writer import StoreWriter, ingest_snapshot

__all__ = [
    "ResultStore",
    "StoreSnapshot",
    "StoreWriter",
    "Query",
    "QueryStats",
    "ReportServer",
    "SegmentMeta",
    "StoreCorruptionError",
    "RowKind",
    "ROW_KINDS",
    "kind_for",
    "ingest_snapshot",
    "compact_store",
    "CompactionStats",
    "export_store",
    "ExportStats",
    "merge_stores",
    "adopt_segments",
    "MergeStats",
    "FORMAT_JSONL",
    "FORMAT_COLUMNAR",
    "DiffSpec",
    "MetricSpec",
    "KindDiff",
    "StoreDiff",
    "DIFF_SPECS",
    "diff_stores",
    "diff_kind",
    "diff_kind_reference",
]
