"""Vectorised queries over the column-oriented store.

A :class:`Query` is a small builder — ``where`` filters, ``group_by`` keys,
``agg`` reductions — evaluated segment by segment over the NumPy column
caches, so a million-row filter is a handful of array comparisons rather than
a Python loop.  Two levels of work avoidance apply before any array math:

* **predicate pushdown** — every predicate is first tested against the
  manifest stats of each segment (numeric min/max, string distinct sets); a
  segment whose stats prove it cannot contain a matching row is never read
  at all, which is what keeps point queries over a long campaign cheap;
* **column pruning** — only the columns referenced by predicates, group keys,
  aggregations or an explicit ``arrays(...)`` projection are materialised.

Execution statistics (segments skipped vs scanned, rows matched) are exposed
on :attr:`Query.stats` after any terminal call, so tests and the CLI can
assert pushdown actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.store.schema import Column, RowKind
from repro.store.segment import SegmentMeta

__all__ = ["Predicate", "Query", "QueryStats", "AGGREGATIONS",
           "parse_predicate", "parse_agg_expr"]

_OPS = ("==", "!=", "<", "<=", ">", ">=", "in")

#: Reduction name -> NumPy implementation over a 1-D array.
AGGREGATIONS: dict[str, Callable[[np.ndarray], float]] = {
    "count": lambda a: int(a.size),
    "sum": lambda a: a.sum().item(),
    "mean": lambda a: np.mean(a).item(),
    "median": lambda a: np.median(a).item(),
    "min": lambda a: a.min().item(),
    "max": lambda a: a.max().item(),
    "std": lambda a: np.std(a).item(),
    # Tail percentiles (fleet tail-latency reports under load).
    "p50": lambda a: np.quantile(a, 0.50).item(),
    "p90": lambda a: np.quantile(a, 0.90).item(),
    "p99": lambda a: np.quantile(a, 0.99).item(),
    "p999": lambda a: np.quantile(a, 0.999).item(),
}


@dataclass(frozen=True)
class Predicate:
    """One column filter of a query."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r} (have {_OPS})")
        if self.op == "in" and not isinstance(self.value, (list, tuple, set,
                                                           frozenset)):
            raise ValueError("'in' predicates need a collection value")

    # -- pushdown ------------------------------------------------------- #
    def may_match(self, meta: SegmentMeta, column: Column) -> bool:
        """Whether the segment's stats admit any matching row.

        Conservative: returns ``True`` whenever the stats cannot prove the
        segment empty of matches (missing stats, untracked string column,
        inequality over strings).
        """
        stats = meta.stats.get(self.column)
        if not stats:
            return True
        if column.is_numeric and "min" in stats:
            low, high = stats["min"], stats["max"]
            if self.op == "==":
                return low <= self.value <= high
            if self.op == "<":
                return low < self.value
            if self.op == "<=":
                return low <= self.value
            if self.op == ">":
                return high > self.value
            if self.op == ">=":
                return high >= self.value
            if self.op == "in":
                return any(low <= v <= high for v in self.value)
            return True  # "!=" — only an all-equal segment could be skipped
        if "values" in stats:
            present = set(stats["values"])
            if self.op == "==":
                return self.value in present
            if self.op == "in":
                return bool(present.intersection(self.value))
            if self.op == "!=":
                return present != {self.value}
        return True

    # -- evaluation ----------------------------------------------------- #
    def mask(self, array: np.ndarray) -> np.ndarray:
        """Boolean match mask over one segment's column array."""
        if self.op == "==":
            return array == self.value
        if self.op == "!=":
            return array != self.value
        if self.op == "<":
            return array < self.value
        if self.op == "<=":
            return array <= self.value
        if self.op == ">":
            return array > self.value
        if self.op == ">=":
            return array >= self.value
        return np.isin(array, list(self.value))


#: Comparison operators accepted in textual predicate expressions, longest
#: first so ``<=`` is not parsed as ``<`` against ``=value``.
_EXPR_OPS = ("<=", ">=", "!=", "==", "<", ">", "=")


def parse_predicate(expression: str) -> tuple[str, str, object]:
    """Parse ``device_name=S21`` / ``latency_ms<5`` into ``(column, op, value)``.

    The one textual predicate grammar shared by the CLI's ``--where`` flags
    and the serve layer's ``where=`` query parameters, so a filter behaves
    identically however it reaches the engine.  Values parse as int, then
    float, then string.  Raises :class:`ValueError` on a malformed
    expression.
    """
    for op in _EXPR_OPS:
        if op in expression:
            column, raw = expression.split(op, 1)
            column, raw = column.strip(), raw.strip()
            if not column or not raw:
                break
            value: object = raw
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    pass
            return column, "==" if op == "=" else op, value
    raise ValueError(
        f"invalid where expression {expression!r} (expected column<op>value "
        f"with one of {', '.join(_EXPR_OPS)})")


def parse_agg_expr(expression: str) -> tuple[str, list[str]]:
    """Parse ``latency_ms:mean,median`` into ``(column, [functions])``.

    Shared by the CLI's ``--agg`` flags and the serve layer's ``agg=``
    query parameters.  Raises :class:`ValueError` on a malformed
    expression.
    """
    column, separator, fns = expression.partition(":")
    parsed = [fn.strip() for fn in fns.split(",") if fn.strip()]
    if not separator or not column.strip() or not parsed:
        raise ValueError(
            f"invalid agg expression {expression!r} "
            f"(expected column:fn[,fn...])")
    return column.strip(), parsed


@dataclass
class QueryStats:
    """Work accounting of one query execution."""

    segments_total: int = 0
    segments_skipped: int = 0
    segments_scanned: int = 0
    #: Segments answered from a serve-layer fragment cache (no scan).
    segments_cached: int = 0
    rows_scanned: int = 0
    rows_matched: int = 0


class Query:
    """Filter / group / aggregate builder over one row kind of a store."""

    def __init__(self, store, kind: RowKind) -> None:
        self.store = store
        self.kind = kind
        self._predicates: list[Predicate] = []
        self._group_by: tuple[str, ...] = ()
        self._aggregations: dict[str, tuple[str, str]] = {}
        #: Derived bin columns: label -> (source column, bin width).
        self._bins: dict[str, tuple[str, float]] = {}
        #: Populated by the terminal methods.
        self.stats = QueryStats()

    # ------------------------------------------------------------------ #
    # Builder steps
    # ------------------------------------------------------------------ #
    def where(self, column: Optional[str] = None, op: str = "==",
              value: Any = None, **equalities: Any) -> "Query":
        """Add predicates: ``where("latency_ms", "<", 5)`` or ``where(device_name="S21")``."""
        if column is not None:
            self._predicates.append(
                Predicate(column, op, self._coerce(column, op, value)))
        for name, wanted in equalities.items():
            self._predicates.append(
                Predicate(name, "==", self._coerce(name, "==", wanted)))
        return self

    def bin(self, column: str, width: float,
            label: Optional[str] = None) -> "Query":
        """Derive a fixed-width bin column usable as a group key.

        ``bin("time_s", 900)`` adds an int64 ``time_s_bin`` column holding
        ``floor(time_s / 900)`` — the store-side half of the cloud layer's
        time-binned load aggregation (same convention as
        :func:`repro.analysis.stats.time_bin_indices`, so a query over
        persisted ``fleet_events`` reproduces a :class:`LoadProfile` bin for
        bin).  Declare bins before referencing their label in
        :meth:`group_by`.
        """
        spec = self.kind.column(column)
        if not spec.is_numeric:
            raise ValueError(f"column {column!r} is not numeric; cannot bin")
        if width <= 0:
            raise ValueError("bin width must be positive")
        name = label or f"{column}_bin"
        if name in self.kind.column_names:
            raise ValueError(
                f"bin label {name!r} collides with a schema column")
        self._bins[name] = (column, float(width))
        return self

    def group_by(self, *columns: str) -> "Query":
        """Group aggregation output by schema columns and/or declared bins."""
        for name in columns:
            if name not in self._bins:
                self.kind.column(name)  # validate early
        self._group_by = self._group_by + columns
        return self

    def agg(self, **named: tuple[str, str]) -> "Query":
        """Declare reductions: ``agg(mean_ms=("latency_ms", "mean"))``."""
        for out_name, (column, fn) in named.items():
            self.kind.column(column)
            if fn not in AGGREGATIONS:
                raise ValueError(
                    f"unknown aggregation {fn!r} (have {sorted(AGGREGATIONS)})")
            self._aggregations[out_name] = (column, fn)
        return self

    def _coerce(self, column: str, op: str, value: Any) -> Any:
        """Validate and normalise a predicate value against the column type.

        Raises :class:`ValueError` for values the column can never hold (e.g.
        a string against a numeric column) so malformed filters fail here,
        with a clear message, rather than deep inside a stats comparison.
        """
        spec = self.kind.column(column)  # raises on unknown column
        if op == "in":
            return tuple(self._coerce(column, "==", v) for v in value)
        if hasattr(value, "value") and spec.dtype == "str":
            return value.value  # enums (Backend, Modality) compare by value
        if spec.is_numeric:
            if isinstance(value, bool) or not isinstance(
                    value, (int, float, np.integer, np.floating)):
                raise ValueError(
                    f"column {column!r} is numeric; cannot compare against "
                    f"{value!r}")
        elif spec.dtype == "bool":
            if not isinstance(value, (bool, np.bool_)):
                raise ValueError(
                    f"column {column!r} is boolean; cannot compare against "
                    f"{value!r}")
        elif not isinstance(value, str):
            raise ValueError(
                f"column {column!r} holds strings; cannot compare against "
                f"{value!r}")
        return value

    # ------------------------------------------------------------------ #
    # Execution core
    # ------------------------------------------------------------------ #
    def _scan_segment(self, meta: SegmentMeta, needed: set):
        """Pushdown + mask one segment; ``None`` if pruned or nothing matched.

        Updates :attr:`stats` and returns ``(columns_dict, mask)`` where the
        dict holds the ``needed`` columns of the whole segment and ``mask``
        is the row-match mask (``None`` with no predicates).  The single
        per-segment evaluation point — both terminals and the serve layer's
        caching query route through it, so work accounting and semantics
        cannot diverge.
        """
        self.stats.segments_total += 1
        if not all(p.may_match(meta, self.kind.column(p.column))
                   for p in self._predicates):
            self.stats.segments_skipped += 1
            return None
        self.stats.segments_scanned += 1
        self.stats.rows_scanned += meta.rows
        loaded = self.store.columns_for(meta)
        mask: Optional[np.ndarray] = None
        for predicate in self._predicates:
            part = predicate.mask(loaded[predicate.column])
            mask = part if mask is None else (mask & part)
        matched = int(mask.sum()) if mask is not None else meta.rows
        self.stats.rows_matched += matched
        if matched == 0:
            return None
        return {name: loaded[name] for name in needed}, mask

    def _scan(self, columns: Sequence[str]):
        """Yield ``(meta, columns_dict, mask)`` per surviving segment."""
        self.stats = QueryStats()
        needed = set(columns) | {p.column for p in self._predicates}
        for meta in self.store.segments_for(self.kind):
            survived = self._scan_segment(meta, needed)
            if survived is not None:
                yield meta, survived[0], survived[1]

    def _segment_arrays(self, meta: SegmentMeta, columns: Sequence[str]
                        ) -> Optional[dict[str, np.ndarray]]:
        """The masked ``columns`` arrays of one segment (``None`` = no rows).

        The unit the serve layer caches: sealed segments are immutable, so
        for a fixed predicate set this result can never go stale.
        """
        survived = self._scan_segment(
            meta, set(columns) | {p.column for p in self._predicates})
        if survived is None:
            return None
        loaded, mask = survived
        return {name: (loaded[name] if mask is None else loaded[name][mask])
                for name in columns}

    def _gather(self, columns: Sequence[str]) -> dict[str, np.ndarray]:
        """Concatenate the masked arrays of every surviving segment."""
        self.stats = QueryStats()
        parts: dict[str, list[np.ndarray]] = {name: [] for name in columns}
        for meta in self.store.segments_for(self.kind):
            masked = self._segment_arrays(meta, columns)
            if masked is None:
                continue
            for name in columns:
                parts[name].append(masked[name])
        return {
            name: (np.concatenate(chunks) if chunks
                   else np.empty(0, dtype=self.kind.column(name).numpy_dtype))
            for name, chunks in parts.items()
        }

    # ------------------------------------------------------------------ #
    # Terminals
    # ------------------------------------------------------------------ #
    def arrays(self, *columns: str) -> dict[str, np.ndarray]:
        """Matching rows as column arrays (all schema columns by default)."""
        names = columns or self.kind.column_names
        for name in names:
            self.kind.column(name)
        return self._gather(names)

    def count(self) -> int:
        """Number of matching rows (no column data materialised)."""
        total = 0
        for meta, _, mask in self._scan(()):
            total += meta.rows if mask is None else int(mask.sum())
        return total

    def rows(self) -> list[dict]:
        """Matching rows as dicts, in ingestion order."""
        arrays = self._gather(self.kind.column_names)
        length = len(next(iter(arrays.values()))) if arrays else 0
        return [
            {name: arrays[name][i].item() if arrays[name].dtype != np.str_
             else str(arrays[name][i]) for name in self.kind.column_names}
            for i in range(length)
        ]

    def objects(self) -> list:
        """Matching rows rebuilt as their pipeline dataclass."""
        if self.kind.from_row is None:
            raise TypeError(
                f"row kind {self.kind.name!r} stores summaries and has no "
                f"object deserialiser; use rows() or arrays()")
        return [self.kind.from_row(row) for row in self.rows()]

    def aggregate(self) -> Union[dict, list[dict]]:
        """Evaluate the declared aggregations.

        Without ``group_by`` returns one dict of reductions; with it, one dict
        per group (group key columns + reductions), ordered by group key.
        """
        if not self._aggregations:
            raise ValueError("no aggregations declared; call agg(...) first")
        agg_columns = {column for column, _ in self._aggregations.values()}
        bin_keys = [name for name in self._group_by if name in self._bins]
        plain_keys = {name for name in self._group_by if name not in self._bins}
        bin_sources = {self._bins[name][0] for name in bin_keys}
        needed = tuple(plain_keys | bin_sources | agg_columns)
        arrays = self._gather(needed)
        for name in bin_keys:
            source, width = self._bins[name]
            arrays[name] = (arrays[source] // width).astype(np.int64)
        length = len(next(iter(arrays.values())))

        if not self._group_by:
            # Zero matching rows: counts are 0, every other reduction has no
            # defined value — report None instead of raising/propagating NaN.
            return {
                out: (AGGREGATIONS[fn](arrays[column]) if length
                      else (0 if fn == "count" else None))
                for out, (column, fn) in self._aggregations.items()
            }

        if length == 0:
            return []
        # Encode the (possibly multi-column) group key as one int64 vector.
        key = np.zeros(length, dtype=np.int64)
        uniques: list[np.ndarray] = []
        for name in self._group_by:
            u, inverse = np.unique(arrays[name], return_inverse=True)
            uniques.append(u)
            key = key * len(u) + inverse
        group_keys, key_inverse = np.unique(key, return_inverse=True)
        order = np.argsort(key_inverse, kind="stable")
        boundaries = np.searchsorted(key_inverse[order],
                                     np.arange(len(group_keys)))
        boundaries = np.append(boundaries, length)

        results: list[dict] = []
        for gi in range(len(group_keys)):
            members = order[boundaries[gi]:boundaries[gi + 1]]
            representative = members[0]
            row: dict[str, Any] = {}
            for name in self._group_by:
                value = arrays[name][representative]
                row[name] = str(value) if arrays[name].dtype.kind == "U" \
                    else value.item()
            for out, (column, fn) in self._aggregations.items():
                row[out] = AGGREGATIONS[fn](arrays[column][members])
            results.append(row)
        return results
