"""Vectorised queries over the column-oriented store.

A :class:`Query` is a small builder — ``where`` filters, ``group_by`` keys,
``agg`` reductions — evaluated segment by segment over the NumPy column
caches, so a million-row filter is a handful of array comparisons rather than
a Python loop.  Two levels of work avoidance apply before any array math:

* **predicate pushdown** — every predicate is first tested against the
  manifest stats of each segment (numeric min/max, string distinct sets); a
  segment whose stats prove it cannot contain a matching row is never read
  at all, which is what keeps point queries over a long campaign cheap;
* **column pruning** — only the columns referenced by predicates, group keys,
  aggregations or an explicit ``arrays(...)`` projection are materialised.

The execution engine (v2, PR 10) adds three layers on top, each held
bit-identical to the sequential/decoded/per-group semantics it replaces:

* **parallel segment scans** — segments are independent, so
  :meth:`Query.parallel` fans the per-segment scan/mask work across
  :func:`repro.runtime.pool.iter_mapped` (threads by default: the work
  releases the GIL inside NumPy kernels; ``use_processes`` ships a
  picklable :class:`_SegmentScanTask` instead).  Results stream back in
  manifest order and :class:`QueryStats` merges by exact addition, so
  every terminal is bit-identical for any worker count or pool kind;
* **dictionary-coded predicates + late materialisation** — for
  dict-encoded string columns of columnar segments, predicates evaluate
  once against the (tiny) vocabulary and mask the integer codes;
  ``mask(vocabulary)[codes]`` equals ``mask(vocabulary[codes])`` for
  every elementwise operator, so filtered-out rows never pay the unicode
  gather and only surviving rows are decoded.  Group-by over such
  columns keys on the codes and decodes only group representatives;
* **grouped reduction kernels** — :meth:`Query.aggregate` evaluates its
  groups through the vectorised kernels of :mod:`repro.store.kernels`
  (``bincount``/``reduceat`` sums, sorted-segment order statistics);
  ``aggregate(engine="reference")`` keeps the per-group loop as the
  enforced semantic reference (see that module for the row-order float
  discipline both paths share).

Execution statistics (segments skipped vs scanned, rows matched) are exposed
on :attr:`Query.stats` after any terminal call, so tests and the CLI can
assert pushdown actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Iterator, Mapping, Optional, Sequence,
                    Union)

import numpy as np

from repro import obs
from repro.store import kernels
from repro.store.columnar import CodedColumn
from repro.store.schema import Column, RowKind
from repro.store.segment import SegmentMeta

__all__ = ["Predicate", "Query", "QueryStats", "AGGREGATIONS",
           "parse_predicate", "parse_agg_expr"]

_OPS = ("==", "!=", "<", "<=", ">", ">=", "in")

#: Reduction name -> NumPy implementation over a 1-D array.  These define
#: the *ungrouped* aggregation semantics; grouped aggregation is defined
#: by :data:`repro.store.kernels.REFERENCE_REDUCERS` (identical except for
#: float sum/mean/std, which are row-order sequential there).
AGGREGATIONS: dict[str, Callable[[np.ndarray], float]] = {
    "count": lambda a: int(a.size),
    "sum": lambda a: a.sum().item(),
    "mean": lambda a: np.mean(a).item(),
    "median": lambda a: np.median(a).item(),
    "min": lambda a: a.min().item(),
    "max": lambda a: a.max().item(),
    "std": lambda a: np.std(a).item(),
    # Tail percentiles (fleet tail-latency reports under load).
    "p50": lambda a: np.quantile(a, 0.50).item(),
    "p90": lambda a: np.quantile(a, 0.90).item(),
    "p99": lambda a: np.quantile(a, 0.99).item(),
    "p999": lambda a: np.quantile(a, 0.999).item(),
}


@dataclass(frozen=True)
class Predicate:
    """One column filter of a query."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r} (have {_OPS})")
        if self.op == "in" and not isinstance(self.value, (list, tuple, set,
                                                           frozenset)):
            raise ValueError("'in' predicates need a collection value")

    # -- pushdown ------------------------------------------------------- #
    def may_match(self, meta: SegmentMeta, column: Column) -> bool:
        """Whether the segment's stats admit any matching row.

        Conservative: returns ``True`` whenever the stats cannot prove the
        segment empty of matches (missing stats, untracked string column,
        inequality over strings).
        """
        stats = meta.stats.get(self.column)
        if not stats:
            return True
        if column.is_numeric and "min" in stats:
            low, high = stats["min"], stats["max"]
            if self.op == "==":
                return low <= self.value <= high
            if self.op == "<":
                return low < self.value
            if self.op == "<=":
                return low <= self.value
            if self.op == ">":
                return high > self.value
            if self.op == ">=":
                return high >= self.value
            if self.op == "in":
                return any(low <= v <= high for v in self.value)
            # "!=": an all-equal segment (min == max == value) provably
            # holds no other value and is the one case stats can prune.
            return not (low == high == self.value)
        if "values" in stats:
            present = set(stats["values"])
            if self.op == "==":
                return self.value in present
            if self.op == "in":
                return bool(present.intersection(self.value))
            if self.op == "!=":
                return present != {self.value}
        return True

    # -- evaluation ----------------------------------------------------- #
    def mask(self, array: np.ndarray) -> np.ndarray:
        """Boolean match mask over one segment's column array.

        Every operator is elementwise, so for a dictionary-encoded column
        ``mask(vocabulary)[codes]`` is exactly ``mask(vocabulary[codes])``
        — the identity the coded fast path rests on.
        """
        if self.op == "==":
            return array == self.value
        if self.op == "!=":
            return array != self.value
        if self.op == "<":
            return array < self.value
        if self.op == "<=":
            return array <= self.value
        if self.op == ">":
            return array > self.value
        if self.op == ">=":
            return array >= self.value
        return np.isin(array, list(self.value))


#: Comparison operators accepted in textual predicate expressions, longest
#: first so ``<=`` is not parsed as ``<`` against ``=value``.
_EXPR_OPS = ("<=", ">=", "!=", "==", "<", ">", "=")


def _parse_value(raw: str) -> object:
    """A textual predicate value as int, then float, then string."""
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def parse_predicate(expression: str) -> tuple[str, str, object]:
    """Parse ``device_name=S21`` / ``latency_ms<5`` into ``(column, op, value)``.

    The one textual predicate grammar shared by the CLI's ``--where`` flags
    and the serve layer's ``where=`` query parameters, so a filter behaves
    identically however it reaches the engine.  Values parse as int, then
    float, then string.  Set membership is spelled ``column in a|b|c``
    (spaces around ``in``, values ``|``-separated) and reaches the same
    ``np.isin`` evaluation and distinct-set pushdown as a programmatic
    ``where(column, "in", (...))``.  Raises :class:`ValueError` on a
    malformed expression.
    """
    column, separator, raw = expression.partition(" in ")
    if separator and column.strip() and raw.strip() \
            and not any(op in column for op in _EXPR_OPS):
        values = tuple(_parse_value(v.strip())
                       for v in raw.split("|") if v.strip())
        if not values:
            raise ValueError(
                f"invalid where expression {expression!r} "
                f"('in' needs at least one |-separated value)")
        return column.strip(), "in", values
    for op in _EXPR_OPS:
        if op in expression:
            column, raw = expression.split(op, 1)
            column, raw = column.strip(), raw.strip()
            if not column or not raw:
                break
            return column, "==" if op == "=" else op, _parse_value(raw)
    raise ValueError(
        f"invalid where expression {expression!r} (expected column<op>value "
        f"with one of {', '.join(_EXPR_OPS)}, or 'column in a|b|c')")


def parse_agg_expr(expression: str) -> tuple[str, list[str]]:
    """Parse ``latency_ms:mean,median`` into ``(column, [functions])``.

    Shared by the CLI's ``--agg`` flags and the serve layer's ``agg=``
    query parameters.  Raises :class:`ValueError` on a malformed
    expression.
    """
    column, separator, fns = expression.partition(":")
    parsed = [fn.strip() for fn in fns.split(",") if fn.strip()]
    if not separator or not column.strip() or not parsed:
        raise ValueError(
            f"invalid agg expression {expression!r} "
            f"(expected column:fn[,fn...])")
    return column.strip(), parsed


@dataclass
class QueryStats:
    """Work accounting of one query execution."""

    segments_total: int = 0
    segments_skipped: int = 0
    segments_scanned: int = 0
    #: Segments answered from a serve-layer fragment cache (no scan).
    segments_cached: int = 0
    rows_scanned: int = 0
    rows_matched: int = 0

    def merge(self, other: "QueryStats") -> None:
        """Fold another accounting in by exact integer addition.

        The ``MergeStats`` discipline: totals are identical however the
        per-segment work was chunked or distributed, so parallel scans
        report exactly what a sequential scan would.
        """
        self.segments_total += other.segments_total
        self.segments_skipped += other.segments_skipped
        self.segments_scanned += other.segments_scanned
        self.segments_cached += other.segments_cached
        self.rows_scanned += other.rows_scanned
        self.rows_matched += other.rows_matched


def _coded_view(loaded: Mapping, name: str) -> Optional[CodedColumn]:
    """The codes + vocabulary of a dict-encoded column, if the mapping has one.

    Only columnar segment mappings expose ``.coded`` (see
    :meth:`repro.store.columnar.LazyColumns.coded`); plain dict mappings
    (JSONL caches, npz/sidecar loads) and raw-encoded columns answer
    ``None`` and callers fall back to the decoded array.
    """
    coded = getattr(loaded, "coded", None)
    if coded is None:
        return None
    return coded(name)


def _evaluate_segment(loaded: Mapping, meta: SegmentMeta,
                      predicates: Sequence[Predicate],
                      columns: Sequence[str],
                      coded: frozenset) -> tuple[Optional[dict], int]:
    """Mask one loaded segment and materialise its surviving rows.

    A pure function of the loaded columns — the single evaluation point
    shared by the sequential scan, the thread pool and the process-pool
    :class:`_SegmentScanTask`, so the paths cannot diverge.  Dict-encoded
    columns evaluate predicates against their vocabulary and mask the
    integer codes; only rows surviving *all* masks are ever decoded
    (columns named in ``coded`` are not decoded at all — they come back
    as :class:`~repro.store.columnar.CodedColumn` parts for the group-by
    kernels).  Returns ``(payload, matched)``; payload is ``None`` when
    nothing matched.
    """
    mask: Optional[np.ndarray] = None
    for predicate in predicates:
        view = _coded_view(loaded, predicate.column)
        if view is not None:
            part = predicate.mask(view.values)[view.codes]
        else:
            part = predicate.mask(loaded[predicate.column])
        mask = part if mask is None else (mask & part)
    matched = int(mask.sum()) if mask is not None else meta.rows
    if matched == 0:
        return None, 0
    payload: dict[str, Any] = {}
    for name in columns:
        view = _coded_view(loaded, name)
        if view is not None and (name in coded or mask is not None):
            kept = view.codes if mask is None else view.codes[mask]
            payload[name] = (CodedColumn(kept, view.values) if name in coded
                             else view.values[kept])
        else:
            array = loaded[name]
            payload[name] = array if mask is None else array[mask]
    return payload, matched


class _SegmentScanTask:
    """Picklable per-segment scan job for process-pool fan-out.

    A snapshot of everything a worker needs to evaluate segments without
    the coordinator's store object: segments directory, row-kind name,
    the (frozen, picklable) predicates and the requested/coded column
    sets.  Workers load columns through the same
    :func:`repro.store.segment.load_columns` path the store's column
    cache uses, so results are bit-identical to the in-process scan.
    """

    __slots__ = ("segments_dir", "kind_name", "predicates", "columns",
                 "coded", "verify", "mmap")

    def __init__(self, query: "Query", columns: tuple,
                 coded: frozenset) -> None:
        store = query.store
        self.segments_dir = str(store.segments_dir)
        self.kind_name = query.kind.name
        self.predicates = tuple(query._predicates)
        self.columns = columns
        self.coded = coded
        self.verify = bool(getattr(store, "verify", False))
        self.mmap = bool(getattr(store, "mmap", False))

    def __call__(self, meta: SegmentMeta):
        from repro.store import segment as segment_io
        from repro.store.schema import kind_for

        kind = kind_for(self.kind_name)
        if not all(p.may_match(meta, kind.column(p.column))
                   for p in self.predicates):
            return None, 0, QueryStats(segments_total=1, segments_skipped=1)
        loaded = segment_io.load_columns(
            Path(self.segments_dir), meta, kind,
            verify=self.verify, mmap=self.mmap)
        payload, matched = _evaluate_segment(loaded, meta, self.predicates,
                                             self.columns, self.coded)
        return payload, matched, QueryStats(
            segments_total=1, segments_scanned=1,
            rows_scanned=meta.rows, rows_matched=matched)


class Query:
    """Filter / group / aggregate builder over one row kind of a store."""

    def __init__(self, store, kind: RowKind, *,
                 max_workers: Optional[int] = 1,
                 use_processes: bool = False) -> None:
        self.store = store
        self.kind = kind
        self._predicates: list[Predicate] = []
        self._group_by: tuple[str, ...] = ()
        self._aggregations: dict[str, tuple[str, str]] = {}
        #: Derived bin columns: label -> (source column, bin width).
        self._bins: dict[str, tuple[str, float]] = {}
        #: Scan fan-out: 1 = sequential (the default), ``None`` = one
        #: worker per CPU; see :meth:`parallel`.
        self._max_workers = max_workers
        self._use_processes = bool(use_processes)
        #: Populated by the terminal methods.
        self.stats = QueryStats()

    # ------------------------------------------------------------------ #
    # Builder steps
    # ------------------------------------------------------------------ #
    def where(self, column: Optional[str] = None, op: str = "==",
              value: Any = None, **equalities: Any) -> "Query":
        """Add predicates: ``where("latency_ms", "<", 5)`` or ``where(device_name="S21")``."""
        if column is not None:
            self._predicates.append(
                Predicate(column, op, self._coerce(column, op, value)))
        for name, wanted in equalities.items():
            self._predicates.append(
                Predicate(name, "==", self._coerce(name, "==", wanted)))
        return self

    def parallel(self, max_workers: Optional[int] = None, *,
                 use_processes: bool = False) -> "Query":
        """Builder step: fan the per-segment scans across a worker pool.

        ``max_workers=None`` sizes the pool to the machine (one worker
        per CPU, capped by the segment count); threads are the default —
        segment scanning releases the GIL inside NumPy kernels — and
        ``use_processes`` ships picklable scan tasks to a process pool
        instead (each worker re-opens segment files itself, bypassing
        the coordinator's column cache — and, for a
        :class:`~repro.serve.cache.CachedQuery`, its fragment cache).
        Results reassemble in manifest order and :class:`QueryStats`
        merges by exact addition, so every terminal returns bit-identical
        output for any worker count and either pool kind.
        """
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive when given")
        self._max_workers = max_workers
        self._use_processes = bool(use_processes)
        return self

    def bin(self, column: str, width: float,
            label: Optional[str] = None) -> "Query":
        """Derive a fixed-width bin column usable as a group key.

        ``bin("time_s", 900)`` adds an int64 ``time_s_bin`` column holding
        ``floor(time_s / 900)`` — the store-side half of the cloud layer's
        time-binned load aggregation (same convention as
        :func:`repro.analysis.stats.time_bin_indices`, so a query over
        persisted ``fleet_events`` reproduces a :class:`LoadProfile` bin for
        bin).  Declare bins before referencing their label in
        :meth:`group_by`.
        """
        spec = self.kind.column(column)
        if not spec.is_numeric:
            raise ValueError(f"column {column!r} is not numeric; cannot bin")
        if width <= 0:
            raise ValueError("bin width must be positive")
        name = label or f"{column}_bin"
        if name in self.kind.column_names:
            raise ValueError(
                f"bin label {name!r} collides with a schema column")
        self._bins[name] = (column, float(width))
        return self

    def group_by(self, *columns: str) -> "Query":
        """Group aggregation output by schema columns and/or declared bins."""
        for name in columns:
            if name not in self._bins:
                self.kind.column(name)  # validate early
        self._group_by = self._group_by + columns
        return self

    def agg(self, **named: tuple[str, str]) -> "Query":
        """Declare reductions: ``agg(mean_ms=("latency_ms", "mean"))``."""
        for out_name, (column, fn) in named.items():
            self.kind.column(column)
            if fn not in AGGREGATIONS:
                raise ValueError(
                    f"unknown aggregation {fn!r} (have {sorted(AGGREGATIONS)})")
            self._aggregations[out_name] = (column, fn)
        return self

    def _coerce(self, column: str, op: str, value: Any) -> Any:
        """Validate and normalise a predicate value against the column type.

        Raises :class:`ValueError` for values the column can never hold (e.g.
        a string against a numeric column) so malformed filters fail here,
        with a clear message, rather than deep inside a stats comparison.
        """
        spec = self.kind.column(column)  # raises on unknown column
        if op == "in":
            return tuple(self._coerce(column, "==", v) for v in value)
        if hasattr(value, "value") and spec.dtype == "str":
            return value.value  # enums (Backend, Modality) compare by value
        if spec.is_numeric:
            if isinstance(value, bool) or not isinstance(
                    value, (int, float, np.integer, np.floating)):
                raise ValueError(
                    f"column {column!r} is numeric; cannot compare against "
                    f"{value!r}")
        elif spec.dtype == "bool":
            if not isinstance(value, (bool, np.bool_)):
                raise ValueError(
                    f"column {column!r} is boolean; cannot compare against "
                    f"{value!r}")
        elif not isinstance(value, str):
            raise ValueError(
                f"column {column!r} holds strings; cannot compare against "
                f"{value!r}")
        return value

    # ------------------------------------------------------------------ #
    # Execution core
    # ------------------------------------------------------------------ #
    def _segment_result(self, meta: SegmentMeta, columns: tuple,
                        coded: frozenset
                        ) -> tuple[Optional[dict], int, QueryStats]:
        """Pushdown + evaluate one segment: ``(payload, matched, stats)``.

        The single per-segment evaluation point — the sequential loop,
        the thread pool and the serve layer's
        :class:`~repro.serve.cache.CachedQuery` all route through it, so
        work accounting and semantics cannot diverge.  Pure with respect
        to the query (stats come back as a delta, merged centrally by
        exact addition), which is what makes it safe to call from many
        worker threads at once.
        """
        if not all(p.may_match(meta, self.kind.column(p.column))
                   for p in self._predicates):
            return None, 0, QueryStats(segments_total=1, segments_skipped=1)
        loaded = self.store.columns_for(meta)
        payload, matched = _evaluate_segment(loaded, meta, self._predicates,
                                             columns, coded)
        return payload, matched, QueryStats(
            segments_total=1, segments_scanned=1,
            rows_scanned=meta.rows, rows_matched=matched)

    def _pooled_results(self, metas: Sequence[SegmentMeta], columns: tuple,
                        coded: frozenset) -> Iterator:
        """Per-segment results via the shared fan-out point, in order."""
        from repro.runtime.pool import iter_mapped

        if self._use_processes:
            run_item = _SegmentScanTask(self, columns, coded)
        else:
            def run_item(meta: SegmentMeta):
                return self._segment_result(meta, columns, coded)
        return iter_mapped(run_item, metas, max_workers=self._max_workers,
                           use_processes=self._use_processes)

    def _results(self, columns: Sequence[str], coded: frozenset = frozenset()
                 ) -> Iterator[tuple[Optional[dict], int]]:
        """Evaluate every segment in manifest order; yields ``(payload, matched)``.

        Resets :attr:`stats` and merges each segment's accounting delta
        by exact addition — identical totals whether the segments were
        scanned inline, by threads, or by processes.
        """
        self.stats = QueryStats()
        columns = tuple(columns)
        metas = self.store.segments_for(self.kind)
        if self._use_processes or self._max_workers != 1:
            results = self._pooled_results(metas, columns, coded)
        else:
            results = (self._segment_result(meta, columns, coded)
                       for meta in metas)
        for payload, matched, delta in results:
            self.stats.merge(delta)
            yield payload, matched
        collector = obs.get_collector()
        if collector is not None:
            collector.count("query.executions")
            collector.count("query.segments_scanned",
                            self.stats.segments_scanned)
            collector.count("query.segments_pruned",
                            self.stats.segments_skipped)
            collector.count("query.rows_matched", self.stats.rows_matched)

    def _gather(self, columns: Sequence[str],
                coded: frozenset = frozenset()) -> dict[str, Any]:
        """Concatenate the masked arrays of every surviving segment.

        Columns named in ``coded`` stay un-decoded: their value is the
        list of per-segment parts (:class:`CodedColumn` for dict-encoded
        segments, plain arrays otherwise) that
        :func:`repro.store.kernels.factorize_parts` consumes directly.
        """
        columns = tuple(columns)
        parts: dict[str, list] = {name: [] for name in columns}
        for payload, _matched in self._results(columns, coded):
            if payload is None:
                continue
            for name in columns:
                parts[name].append(payload[name])
        return {
            name: (chunks if name in coded
                   else (np.concatenate(chunks) if chunks
                         else np.empty(0,
                                       dtype=self.kind.column(name
                                                              ).numpy_dtype)))
            for name, chunks in parts.items()
        }

    # ------------------------------------------------------------------ #
    # Terminals
    # ------------------------------------------------------------------ #
    def arrays(self, *columns: str) -> dict[str, np.ndarray]:
        """Matching rows as column arrays (all schema columns by default)."""
        names = columns or self.kind.column_names
        for name in names:
            self.kind.column(name)
        return self._gather(names)

    def count(self) -> int:
        """Number of matching rows (no column data materialised)."""
        total = 0
        for _payload, matched in self._results(()):
            total += matched
        return total

    def rows(self) -> list[dict]:
        """Matching rows as dicts, in ingestion order.

        One ``tolist()`` pass per column (native scalars fall straight
        out), then a zip into dicts — no per-row, per-column NumPy
        indexing.
        """
        arrays = self._gather(self.kind.column_names)
        columns = [(name, arrays[name].tolist())
                   for name in self.kind.column_names]
        if not columns:
            return []
        return [{name: values[i] for name, values in columns}
                for i in range(len(columns[0][1]))]

    def objects(self) -> list:
        """Matching rows rebuilt as their pipeline dataclass."""
        if self.kind.from_row is None:
            raise TypeError(
                f"row kind {self.kind.name!r} stores summaries and has no "
                f"object deserialiser; use rows() or arrays()")
        return [self.kind.from_row(row) for row in self.rows()]

    def aggregate(self, *, engine: str = "kernel") -> Union[dict, list[dict]]:
        """Evaluate the declared aggregations.

        Without ``group_by`` returns one dict of reductions; with it, one dict
        per group (group key columns + reductions), ordered by group key.

        ``engine`` selects the grouped execution path: ``"kernel"`` (the
        default) runs the vectorised reductions of
        :mod:`repro.store.kernels`; ``"reference"`` runs the per-group
        Python loop those kernels are held bit-identical to (the slow
        path the benchmark gate measures against).  Ungrouped
        aggregation is identical under both.
        """
        if engine not in ("kernel", "reference"):
            raise ValueError(
                f"unknown aggregate engine {engine!r} "
                f"(have 'kernel', 'reference')")
        if not self._aggregations:
            raise ValueError("no aggregations declared; call agg(...) first")
        agg_columns = {column for column, _ in self._aggregations.values()}
        bin_keys = [name for name in self._group_by if name in self._bins]
        plain_keys = {name for name in self._group_by if name not in self._bins}
        bin_sources = {self._bins[name][0] for name in bin_keys}
        needed = tuple(plain_keys | bin_sources | agg_columns)
        # Group keys that nothing else reads stay dictionary-coded end to
        # end: grouping keys on the integer codes and only group
        # representatives are ever decoded.
        coded = frozenset(
            name for name in plain_keys
            if engine == "kernel" and name not in agg_columns
            and name not in bin_sources
            and self.kind.column(name).dtype == "str")
        arrays = self._gather(needed, coded)
        for name in bin_keys:
            source, width = self._bins[name]
            arrays[name] = (arrays[source] // width).astype(np.int64)
        plain = next(name for name in needed if name not in coded)
        length = len(arrays[plain])

        if not self._group_by:
            # Zero matching rows: counts are 0, every other reduction has no
            # defined value — report None instead of raising/propagating NaN.
            return {
                out: (AGGREGATIONS[fn](arrays[column]) if length
                      else (0 if fn == "count" else None))
                for out, (column, fn) in self._aggregations.items()
            }

        if length == 0:
            return []
        # Encode the (possibly multi-column) group key as one int64 vector.
        key = np.zeros(length, dtype=np.int64)
        uniques: list[np.ndarray] = []
        for name in self._group_by:
            if name in coded:
                u, inverse = kernels.factorize_parts(arrays[name])
            else:
                u, inverse = np.unique(arrays[name], return_inverse=True)
            uniques.append(u)
            key = key * len(u) + inverse
        group_keys, key_inverse = np.unique(key, return_inverse=True)

        if engine == "reference":
            return self._aggregate_reference(arrays, group_keys, key_inverse,
                                             length)

        reducer = kernels.GroupedReducer(key_inverse, len(group_keys))
        label_indices = kernels.decompose_keys(group_keys,
                                               [len(u) for u in uniques])
        reduced = {out: reducer.reduce(column, arrays[column], fn)
                   for out, (column, fn) in self._aggregations.items()}
        results: list[dict] = []
        for gi in range(len(group_keys)):
            row: dict[str, Any] = {}
            for name, u, indices in zip(self._group_by, uniques,
                                        label_indices):
                value = u[indices[gi]]
                row[name] = str(value) if u.dtype.kind == "U" \
                    else value.item()
            for out in self._aggregations:
                row[out] = reduced[out][gi]
            results.append(row)
        return results

    def _aggregate_reference(self, arrays: dict, group_keys: np.ndarray,
                             key_inverse: np.ndarray,
                             length: int) -> list[dict]:
        """The per-group reference loop the kernels are gated against.

        Group membership comes from a stable argsort of the group index
        vector, so each group's rows appear in original row order —
        which is what makes the reference reducers' sequential float
        accumulation comparable bit for bit with the kernels' bincount
        discipline.
        """
        order = np.argsort(key_inverse, kind="stable")
        boundaries = np.searchsorted(key_inverse[order],
                                     np.arange(len(group_keys)))
        boundaries = np.append(boundaries, length)
        results: list[dict] = []
        for gi in range(len(group_keys)):
            members = order[boundaries[gi]:boundaries[gi + 1]]
            representative = members[0]
            row: dict[str, Any] = {}
            for name in self._group_by:
                value = arrays[name][representative]
                row[name] = str(value) if arrays[name].dtype.kind == "U" \
                    else value.item()
            for out, (column, fn) in self._aggregations.items():
                row[out] = kernels.REFERENCE_REDUCERS[fn](
                    arrays[column][members])
            results.append(row)
        return results
