"""The persistent results store: manifest, segments and read-side cache.

Layout on disk::

    campaign.store/
      MANIFEST.json          # the only mutable file; updated atomically
      segments/
        executions-000001.jsonl    # immutable row log (source of truth)
        executions-000001.npz      # derived column cache (rebuildable)
        fleet_events-000002.colseg # packed columnar segment (format v3;
        ...                        # the payload itself is the checksummed
                                   # durable artifact)

The manifest is the commit point: a segment exists for readers if and only if
it is listed there.  Both segment seals and manifest updates are atomic
(tmp-file + fsync + rename), so a crash at any instant leaves the store at
the last committed manifest — partially written files are simply never
referenced and are overwritten by the next seal of the same sequence number.

Reads are cached per segment: segments are immutable, so once a segment's
columns are in memory every later query and report over it is free.  That is
what makes repeated report generation over a growing campaign incremental —
only segments committed since the last read touch the filesystem.

Every manifest commit advances a **generation** counter, and append commits
record the committed segment-prefix length of each generation in a bounded
log.  That makes the manifest's committed-prefix semantics first-class:
:meth:`ResultStore.open_snapshot` pins an immutable
:class:`StoreSnapshot` — a read-only view whose segment list never changes,
even while a writer keeps appending and sealing — and a past generation can
be reopened as long as its entry is still in the log and no replacement
commit (compaction) has rewritten the list since.  Snapshot isolation is
what lets :mod:`repro.serve` answer queries consistently over a store a
campaign is still ingesting into.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.store import segment as segment_io
from repro.store.schema import ROW_KINDS, RowKind, kind_for
from repro.store.segment import SegmentMeta, StoreCorruptionError

__all__ = ["ResultStore", "StoreSnapshot", "StoreCorruptionError"]

MANIFEST_NAME = "MANIFEST.json"
SEGMENTS_DIR = "segments"
#: Bumped whenever the on-disk contract changes, so stores written by a
#: *newer* build fail an older build's version gate with a clear error
#: instead of a KeyError deep inside a column scan (v2: fleet_events gained
#: region/wait_ms and the shed/queued targets; v3: segments may be sealed
#: in the packed binary columnar format next to JSONL ones).
FORMAT_VERSION = 3

#: Manifest versions this build reads.  v2 stores are a strict subset of v3
#: (every v2 segment is a JSONL segment), so they open unchanged; the
#: manifest is rewritten at version 3 on the next commit.
READABLE_VERSIONS = (2, FORMAT_VERSION)

#: How many (generation, committed-prefix-length) entries the manifest keeps.
#: Bounds the manifest size on long campaigns; snapshots older than the
#: window simply stop being reopenable by generation number.
GENERATION_LOG_CAP = 1024


class ResultStore:
    """An append-only, sharded, column-oriented store of campaign results.

    Opening a path that holds no manifest yields an empty store; nothing is
    written until a :class:`~repro.store.writer.StoreWriter` commits its first
    segment.  The store object is cheap to hold open across ingestion —
    :meth:`refresh` picks up newly committed segments without invalidating
    the cache of already-loaded ones.
    """

    def __init__(self, root: Union[str, Path], *, verify: bool = False,
                 mmap: bool = False) -> None:
        self.root = Path(root)
        self.verify = verify
        #: Serve column caches as read-only memory maps (per-column ``.npy``
        #: sidecars) instead of resident arrays — the >10M-row read path.
        #: Query results are identical either way.
        self.mmap = mmap
        self._manifest: dict = {"format_version": FORMAT_VERSION,
                                "sequence": 0, "generation": 0,
                                "generations": [], "segments": []}
        self._segments: tuple[SegmentMeta, ...] = ()
        self._columns_cache: dict[str, Mapping[str, np.ndarray]] = {}
        self.refresh()

    # ------------------------------------------------------------------ #
    # Manifest plumbing
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        """Path of the manifest file."""
        return self.root / MANIFEST_NAME

    @property
    def segments_dir(self) -> Path:
        """Directory holding the segment files."""
        return self.root / SEGMENTS_DIR

    def refresh(self) -> None:
        """Re-read the manifest, picking up newly committed segments."""
        try:
            data = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return
        version = data.get("format_version")
        if version not in READABLE_VERSIONS:
            raise StoreCorruptionError(
                f"store at {self.root} has format version {version!r}; "
                f"this build reads versions {READABLE_VERSIONS}")
        segments = tuple(
            SegmentMeta.from_json(entry) for entry in data["segments"])
        # Stores written before generations existed: derive a monotone
        # generation from the sequence counter and pin the current list as
        # the only reopenable prefix (rewritten properly on the next commit).
        if "generation" not in data:
            data["generation"] = int(data.get("sequence", 0))
            data["generations"] = [[data["generation"], len(segments)]]
        self._manifest = data
        self._segments = segments
        live = {meta.name for meta in self._segments}
        for name in list(self._columns_cache):
            if name not in live:
                del self._columns_cache[name]

    def _commit(self, new_segments: Sequence[SegmentMeta], sequence: int) -> None:
        """Atomically append sealed segments to the manifest (writer hook)."""
        generation = self.generation + 1
        generations = [list(entry) for entry in
                       self._manifest.get("generations", ())]
        generations.append(
            [generation, len(self._segments) + len(new_segments)])
        manifest = {
            "format_version": FORMAT_VERSION,
            "sequence": sequence,
            "generation": generation,
            "generations": generations[-GENERATION_LOG_CAP:],
            "segments": [meta.to_json() for meta in self._segments]
                        + [meta.to_json() for meta in new_segments],
        }
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(manifest, indent=2).encode("utf-8") + b"\n"
        segment_io.atomic_write_bytes(self.manifest_path, payload)
        self._manifest = manifest
        self._segments = self._segments + tuple(new_segments)

    def _commit_replacement(self, segments: Sequence[SegmentMeta],
                            sequence: int) -> None:
        """Atomically rewrite the manifest to an entirely new segment list.

        The compaction hook: unlike :meth:`_commit` this *replaces* the list,
        so segments absent from ``segments`` stop existing for readers the
        instant the manifest rename lands.  Column caches of dropped segments
        are evicted; the sequence counter only ever moves forward.
        """
        if sequence < self.sequence:
            raise ValueError("sequence must not move backwards")
        generation = self.generation + 1
        manifest = {
            "format_version": FORMAT_VERSION,
            "sequence": sequence,
            "generation": generation,
            # Replaced lists share no prefix with their predecessors, so
            # earlier generations stop being reopenable: the log restarts.
            "generations": [[generation, len(segments)]],
            "segments": [meta.to_json() for meta in segments],
        }
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(manifest, indent=2).encode("utf-8") + b"\n"
        segment_io.atomic_write_bytes(self.manifest_path, payload)
        self._manifest = manifest
        self._segments = tuple(segments)
        live = {meta.name for meta in self._segments}
        for name in list(self._columns_cache):
            if name not in live:
                del self._columns_cache[name]

    @property
    def sequence(self) -> int:
        """Monotonic segment sequence number (writer allocation state)."""
        return int(self._manifest.get("sequence", 0))

    @property
    def generation(self) -> int:
        """Monotonic manifest-commit counter (+1 per commit of any kind)."""
        return int(self._manifest.get("generation", 0))

    def generations(self) -> dict[int, int]:
        """Reopenable generations: ``{generation: committed prefix length}``.

        Append commits extend the log; replacement commits (compaction)
        restart it, because the old prefixes no longer describe the new
        segment list.  Bounded at :data:`GENERATION_LOG_CAP` entries.
        """
        return {int(gen): int(length)
                for gen, length in self._manifest.get("generations", ())}

    def open_snapshot(self, generation: Optional[int] = None
                      ) -> "StoreSnapshot":
        """Pin an immutable read view of one committed generation.

        With no argument, pins whatever this handle currently sees (call
        :meth:`refresh` first to pin the latest on-disk commit).  Passing a
        ``generation`` reopens that committed prefix, as long as it is still
        in the manifest's generation log — a :class:`KeyError` otherwise.
        The snapshot shares this store's column cache, so segments already
        read are served from memory.
        """
        if generation is None or generation == self.generation:
            return StoreSnapshot(self, self.generation, self._segments)
        prefix = self.generations().get(generation)
        if prefix is None or prefix > len(self._segments):
            raise KeyError(
                f"generation {generation} is not reopenable (store is at "
                f"generation {self.generation}; the log keeps "
                f"{len(self.generations())} append generations)")
        return StoreSnapshot(self, generation, self._segments[:prefix])

    def info_payload(self) -> dict:
        """Machine-readable store summary (``store info --json``, /v1/stats).

        Everything in it is JSON-native: identity (root, format/manifest
        state), the per-kind :meth:`format_summary`, and the committed
        segment list.  CI assertions and the serve layer's ``/v1/stats``
        endpoint both read this shape.
        """
        return {
            "root": str(self.root),
            "format_version": int(self._manifest.get("format_version",
                                                     FORMAT_VERSION)),
            "sequence": self.sequence,
            "generation": self.generation,
            "segments": len(self._segments),
            "rows": self.num_rows(),
            "kinds": {kind: self.num_rows(kind) for kind in self.kinds()},
            "summary": self.format_summary(),
            "segment_list": [
                {"name": meta.name, "kind": meta.kind, "format": meta.format,
                 "rows": meta.rows, "sha256": meta.sha256}
                for meta in self._segments
            ],
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def segments(self) -> tuple[SegmentMeta, ...]:
        """Committed segments, in commit order."""
        return self._segments

    def segments_for(self, kind: Union[str, RowKind]) -> tuple[SegmentMeta, ...]:
        """Committed segments of one row kind, in commit order."""
        name = kind if isinstance(kind, str) else kind.name
        return tuple(meta for meta in self._segments if meta.kind == name)

    def kinds(self) -> tuple[str, ...]:
        """Row kinds with at least one committed segment, in first-commit order."""
        seen: dict[str, None] = {}
        for meta in self._segments:
            seen.setdefault(meta.kind, None)
        return tuple(seen)

    def num_rows(self, kind: Optional[str] = None) -> int:
        """Committed row count, overall or for one kind."""
        return sum(meta.rows for meta in self._segments
                   if kind is None or meta.kind == kind)

    def format_summary(self) -> dict[str, dict]:
        """Per-kind segment format mix, row counts and on-disk bytes.

        One entry per committed row kind:
        ``{"segments": n, "rows": n, "bytes": n, "sidecar_bytes": n,
        "formats": {fmt: count}}`` where ``bytes`` sums every file each
        segment owns on disk (row log + column cache for JSONL segments,
        the packed payload for columnar ones; missing derived files count
        as 0) and ``sidecar_bytes`` separately sums each segment's mmap
        sidecar directory (``<name>.cols``) when one has been
        materialised — derived state the plain ``bytes`` figure would
        otherwise hide.  The ``store info`` CLI prints this so operators
        can see what a campaign actually wrote.
        """
        summary: dict[str, dict] = {}
        for meta in self._segments:
            entry = summary.setdefault(meta.kind, {
                "segments": 0, "rows": 0, "bytes": 0, "sidecar_bytes": 0,
                "formats": {}})
            entry["segments"] += 1
            entry["rows"] += meta.rows
            entry["formats"][meta.format] = \
                entry["formats"].get(meta.format, 0) + 1
            for filename in meta.filenames:
                try:
                    entry["bytes"] += (self.segments_dir / filename
                                       ).stat().st_size
                except FileNotFoundError:
                    pass  # derived caches may legitimately be absent
            sidecar = segment_io.mmap_sidecar_dir(self.segments_dir, meta)
            if sidecar.is_dir():
                for path in sidecar.iterdir():
                    try:
                        entry["sidecar_bytes"] += path.stat().st_size
                    except FileNotFoundError:  # pragma: no cover - race
                        pass
        return summary

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def columns_for(self, meta: SegmentMeta) -> Mapping[str, np.ndarray]:
        """Column arrays of one committed segment (cached in memory).

        With ``mmap`` and a columnar segment the mapping is lazy: a
        column decodes (zero-copy where possible) on first subscript.
        """
        cached = self._columns_cache.get(meta.name)
        if cached is None:
            cached = segment_io.load_columns(
                self.segments_dir, meta, kind_for(meta.kind),
                verify=self.verify, mmap=self.mmap)
            self._columns_cache[meta.name] = cached
        return cached

    def rows_for(self, meta: SegmentMeta) -> list[dict]:
        """Rows of one committed segment, from its JSONL log."""
        return segment_io.load_rows(self.segments_dir, meta, verify=self.verify)

    def iter_rows(self, kind: str) -> Iterator[dict]:
        """Every committed row of a kind, in ingestion order."""
        for meta in self.segments_for(kind):
            yield from self.rows_for(meta)

    def query(self, kind: str, *, max_workers: Optional[int] = 1,
              use_processes: bool = False) -> "Query":
        """Start a :class:`~repro.store.query.Query` over one row kind.

        ``max_workers``/``use_processes`` preset the scan fan-out
        (``1`` = sequential; see :meth:`~repro.store.query.Query.parallel`
        for the semantics — results are bit-identical either way).
        """
        from repro.store.query import Query

        return Query(self, kind_for(kind), max_workers=max_workers,
                     use_processes=use_processes)

    # ------------------------------------------------------------------ #
    # Writes / integrity
    # ------------------------------------------------------------------ #
    def writer(self, *, rows_per_segment: int = 4096,
               compress: bool = False) -> "StoreWriter":
        """A streaming writer appending new segments to this store.

        ``compress`` applies per-column zlib compression to the columnar
        segments this writer seals (recorded in each segment's header;
        readers need no flag).
        """
        from repro.store.writer import StoreWriter

        return StoreWriter(self, rows_per_segment=rows_per_segment,
                           compress=compress)

    def verify_integrity(self) -> int:
        """Check every committed segment against its checksum.

        Returns the number of segments verified; raises
        :class:`StoreCorruptionError` on the first mismatch.
        """
        for meta in self._segments:
            segment_io.verify_segment(self.segments_dir, meta)
        return len(self._segments)

    def __repr__(self) -> str:
        per_kind = ", ".join(f"{kind}={self.num_rows(kind)}"
                             for kind in self.kinds()) or "empty"
        return f"ResultStore({str(self.root)!r}: {per_kind})"


class StoreSnapshot:
    """An immutable, generation-pinned read view of a :class:`ResultStore`.

    Behaves like the read side of a store — :meth:`query`, the report
    servers and the fleet/cloud report functions all accept one — but its
    segment list is frozen at construction: commits landing after the pin
    are invisible, so every read over the snapshot is consistent even while
    a writer appends concurrently.  :meth:`refresh` is deliberately a no-op.

    Column reads delegate to the parent store, sharing its per-segment
    cache (sealed segments are immutable, so shared entries can never go
    stale).  The one hazard is *replacement* commits: compaction deletes
    the files of dropped segments, so a snapshot pinned before a compaction
    may fail reads afterwards — pin-across-append is the supported regime.
    """

    def __init__(self, store: ResultStore, generation: int,
                 segments: Sequence[SegmentMeta]) -> None:
        self._store = store
        #: The pinned manifest generation (constant for the snapshot's life).
        self.generation = generation
        self._segments = tuple(segments)
        self.root = store.root

    @property
    def segments_dir(self) -> Path:
        """Directory holding the segment files (the parent store's)."""
        return self._store.segments_dir

    @property
    def segments(self) -> tuple[SegmentMeta, ...]:
        """The pinned committed segments, in commit order."""
        return self._segments

    @property
    def verify(self) -> bool:
        """The parent store's checksum-on-read setting (process scans read it)."""
        return self._store.verify

    @property
    def mmap(self) -> bool:
        """The parent store's memory-mapping setting (process scans read it)."""
        return self._store.mmap

    def refresh(self) -> None:
        """No-op: a snapshot never sees commits made after its pin."""

    def columns_for(self, meta: SegmentMeta) -> Mapping[str, np.ndarray]:
        """Column arrays of one pinned segment (parent store's cache)."""
        return self._store.columns_for(meta)

    def rows_for(self, meta: SegmentMeta) -> list[dict]:
        """Rows of one pinned segment, from its JSONL log."""
        return self._store.rows_for(meta)

    # Pure segment-list reads are identical to the store's; share the
    # implementations so the two views can never diverge.
    segments_for = ResultStore.segments_for
    kinds = ResultStore.kinds
    num_rows = ResultStore.num_rows
    format_summary = ResultStore.format_summary
    iter_rows = ResultStore.iter_rows
    query = ResultStore.query

    def __repr__(self) -> str:
        per_kind = ", ".join(f"{kind}={self.num_rows(kind)}"
                             for kind in self.kinds()) or "empty"
        return (f"StoreSnapshot({str(self.root)!r}@g{self.generation}: "
                f"{per_kind})")
