"""Whole-store format conversion: rewrite a campaign in the other format.

:func:`export_store` copies every committed row of a source store into a
**new** store directory, sealing the destination's segments in the requested
format — ``"jsonl"`` to turn packed columnar campaigns back into the
line-oriented, ``grep``-able interchange format (the ``store export``
CLI's default), or ``"columnar"`` to convert a legacy row-oriented store to
the batch-native fast format wholesale.  Rows are preserved in exactly
their committed per-kind order and the destination commits a fresh manifest
through the same atomic protocol every writer uses, so queries and report
tables over the exported store are **bit-for-bit identical** to the source.

The source is never modified; the destination must not already hold a
committed store (exports never silently merge into existing data).  For
in-place conversion of a store's segments use
:func:`~repro.store.compact.compact_store` with ``output_format``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.store.compact import _OUTPUT_FORMATS, reseal_kind
from repro.store.schema import kind_for
from repro.store.segment import (FORMAT_COLUMNAR, FORMAT_JSONL, SegmentMeta,
                                 write_columnar_segment, write_segment)
from repro.store.store import ResultStore

__all__ = ["ExportStats", "export_store"]


@dataclass(frozen=True)
class ExportStats:
    """What one export wrote."""

    kinds: tuple[str, ...]
    segments: int
    rows: int
    output_format: str
    #: Exported kinds' on-disk bytes in the source store.
    source_bytes: int = 0
    #: Bytes the destination's fresh segments occupy.  ``source_bytes -
    #: output_bytes`` is what the conversion reclaimed (negative = grew).
    output_bytes: int = 0


def export_store(source: Union[ResultStore, str, Path],
                 dest: Union[str, Path], *,
                 output_format: str = FORMAT_JSONL,
                 rows_per_segment: Optional[int] = None,
                 kinds: Optional[Sequence[str]] = None,
                 compress: bool = False) -> ExportStats:
    """Rewrite ``source``'s committed rows into a fresh store at ``dest``.

    ``rows_per_segment`` of ``None`` keeps the source's segment boundaries
    (each source segment exports as one destination segment); a value
    re-chunks each kind at that size.  ``kinds`` restricts the export to the
    named row kinds (default: every kind in the source).  ``compress``
    zlib-deflates columnar output's column sections.
    """
    if output_format not in _OUTPUT_FORMATS:
        raise ValueError(
            f"unknown output format {output_format!r} (have {_OUTPUT_FORMATS})")
    if rows_per_segment is not None and rows_per_segment <= 0:
        raise ValueError("rows_per_segment must be positive when given")
    if not isinstance(source, ResultStore):
        source = ResultStore(source)
    wanted = set(kinds) if kinds is not None else None
    if wanted is not None:
        for name in wanted:
            kind_for(name)  # unknown kinds fail fast

    destination = ResultStore(dest)
    if destination.segments:
        raise ValueError(
            f"export destination {destination.root} already holds a "
            f"committed store; exports never merge")

    sequence = 0
    sealed: list[SegmentMeta] = []
    rows_exported = 0
    exported_kinds: list[str] = []
    for name in source.kinds():
        if wanted is not None and name not in wanted:
            continue
        exported_kinds.append(name)
        kind = kind_for(name)
        if rows_per_segment is None:
            # Mirror the source's segment boundaries one to one.
            for meta in source.segments_for(name):
                sequence += 1
                segment_name = f"{name}-{sequence:06d}"
                if output_format == FORMAT_COLUMNAR:
                    sealed.append(write_columnar_segment(
                        destination.segments_dir, segment_name, kind,
                        source.columns_for(meta), compress=compress))
                else:
                    sealed.append(write_segment(
                        destination.segments_dir, segment_name, kind,
                        source.rows_for(meta)))
                rows_exported += meta.rows
        else:
            # Re-chunking a whole kind is exactly compaction's rewrite,
            # just sealed into the destination's segments directory.
            resealed, sequence, rows = reseal_kind(
                source, name, sequence=sequence,
                rows_per_segment=rows_per_segment,
                output_format=output_format,
                directory=destination.segments_dir,
                compress=compress)
            sealed.extend(resealed)
            rows_exported += rows

    if sealed:
        destination._commit(sealed, sequence)

    def _sized(directory: Path, metas) -> int:
        total = 0
        for meta in metas:
            for filename in meta.filenames:
                try:
                    total += (directory / filename).stat().st_size
                except FileNotFoundError:
                    pass  # derived caches may legitimately be absent
        return total

    source_metas = [meta for name in exported_kinds
                    for meta in source.segments_for(name)]
    return ExportStats(kinds=tuple(exported_kinds), segments=len(sealed),
                       rows=rows_exported, output_format=output_format,
                       source_bytes=_sized(source.segments_dir, source_metas),
                       output_bytes=_sized(destination.segments_dir, sealed))
