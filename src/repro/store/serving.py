"""Store-backed figure tables: incremental serving for the reports layer.

:class:`ReportServer` produces the same figure tables as
:mod:`repro.core.reports` — latency ECDFs (Fig. 9), energy distributions
(Fig. 10), latency-vs-FLOPs points (Fig. 8), cloud-API usage (Fig. 15) —
but reads from a :class:`~repro.store.store.ResultStore` instead of
in-memory result lists, and it reads *incrementally*: per-segment partial
extracts (per-device metric arrays, cloud-API rows) are cached the first
time a segment is seen, so regenerating a report after more results stream
in only touches the newly committed segments.  Over a long campaign this
turns "rebuild every figure" from a full recompute into a cheap merge.

Numerical fidelity: every table is computed with the same expressions, the
same outlier filter and the same orderings as the in-memory reports
functions, and floats round-trip exactly through the store — so the served
tables compare bit-for-bit equal to the in-memory path for the same seeds
(asserted by ``benchmarks/test_bench_store.py``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.ecdf import Ecdf
from repro.analysis.stats import remove_outliers_iqr
from repro.store.schema import unpack_strings
from repro.store.store import ResultStore

__all__ = ["ReportServer"]

#: Metric columns extracted per device from every executions segment.
_METRICS = ("latency_ms", "energy_mj", "power_watts", "efficiency", "flops")


class ReportServer:
    """Incremental figure-table server over one results store."""

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        #: segment name -> device -> metric -> array (segment-row order).
        self._execution_extracts: dict[str, dict[str, dict[str, np.ndarray]]] = {}
        #: segment name -> cloud-API tuples of that segment's apps (row order).
        self._cloud_extracts: dict[str, list[tuple[str, ...]]] = {}
        #: metric -> device -> concatenated array over all loaded segments;
        #: invalidated whenever refresh() observes a new manifest generation.
        self._metric_cache: dict[str, dict[str, np.ndarray]] = {}
        #: Manifest generation the caches were built against.  ``None``
        #: forces the first refresh to initialise it.
        self._generation: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Incremental extraction
    # ------------------------------------------------------------------ #
    def refresh(self) -> int:
        """Pick up newly committed segments; returns how many were loaded.

        Invalidation keys on the manifest **generation**, not on whether new
        segments appeared: an external replacement commit (compaction, a
        retention trim) can *drop* segments without adding any, and the old
        "clear when something loaded" rule kept serving the dropped rows
        from the concatenated metric cache.  A generation change evicts
        extracts of dead segments and clears the metric cache; extracts of
        still-live segments survive, so append-only growth stays
        incremental.  Generation-pinned :class:`StoreSnapshot` sources never
        change generation, so a server over one never re-extracts.
        """
        self.store.refresh()
        generation = self.store.generation
        if generation != self._generation:
            live = {meta.name for meta in self.store.segments}
            for cache in (self._execution_extracts, self._cloud_extracts):
                for name in [n for n in cache if n not in live]:
                    del cache[name]
            self._metric_cache.clear()
            self._generation = generation
        loaded = 0
        for meta in self.store.segments_for("executions"):
            if meta.name not in self._execution_extracts:
                self._execution_extracts[meta.name] = self._extract_executions(meta)
                loaded += 1
        for meta in self.store.segments_for("apps"):
            if meta.name not in self._cloud_extracts:
                self._cloud_extracts[meta.name] = self._extract_cloud(meta)
                loaded += 1
        return loaded

    def _extract_executions(self, meta) -> dict[str, dict[str, np.ndarray]]:
        """Split one segment's metric columns per device, appearance-ordered."""
        columns = self.store.columns_for(meta)
        devices = columns["device_name"]
        # Derived efficiency, vectorised with the exact expression sequence of
        # ExecutionResult.efficiency_mflops_per_sw so values match bit-for-bit.
        energy_joules = columns["energy_mj"] / 1e3
        with np.errstate(divide="ignore", invalid="ignore"):
            efficiency = columns["flops"] * columns["batch_size"] \
                / energy_joules / 1e6
        efficiency = np.where(energy_joules <= 0, 0.0, efficiency)

        unique, first_index = np.unique(devices, return_index=True)
        extract: dict[str, dict[str, np.ndarray]] = {}
        for device in unique[np.argsort(first_index)]:
            mask = devices == device
            extract[str(device)] = {
                "latency_ms": columns["latency_ms"][mask],
                "energy_mj": columns["energy_mj"][mask],
                "power_watts": columns["power_watts"][mask],
                "efficiency": efficiency[mask],
                "flops": columns["flops"][mask],
            }
        return extract

    def _extract_cloud(self, meta) -> list[tuple[str, ...]]:
        """Cloud-API tuples of one apps segment, ingestion-ordered."""
        columns = self.store.columns_for(meta)
        return [unpack_strings(packed) for packed in columns["cloud_apis"]
                if packed]

    def _device_metric(self, metric: str) -> dict[str, np.ndarray]:
        """Concatenate one metric per device across all segments (cached)."""
        self.refresh()
        cached = self._metric_cache.get(metric)
        if cached is None:
            parts: dict[str, list[np.ndarray]] = {}
            for meta in self.store.segments_for("executions"):
                for device, arrays in self._execution_extracts[meta.name].items():
                    parts.setdefault(device, []).append(arrays[metric])
            cached = {device: np.concatenate(chunks)
                      for device, chunks in parts.items()}
            self._metric_cache[metric] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Figure tables (shapes match repro.core.reports)
    # ------------------------------------------------------------------ #
    def latency_ecdf_by_device(self) -> dict[str, Ecdf]:
        """Fig. 9: latency ECDF per device, from the store."""
        return {
            device: Ecdf.from_sorted(np.sort(latencies, kind="stable"))
            for device, latencies in self._device_metric("latency_ms").items()
            if latencies.size
        }

    def energy_distributions(self, drop_outliers: bool = True
                             ) -> dict[str, dict[str, float]]:
        """Fig. 10: per-device energy / power / efficiency summaries."""
        energies = self._device_metric("energy_mj")
        powers = self._device_metric("power_watts")
        efficiencies = self._device_metric("efficiency")
        table: dict[str, dict[str, float]] = {}
        for device, energy in energies.items():
            if not energy.size:
                continue
            efficiency = efficiencies[device].tolist()
            if drop_outliers:
                efficiency = remove_outliers_iqr(efficiency) or efficiency
            table[device] = {
                "energy_median_mj": float(np.median(energy)),
                "energy_mean_mj": float(np.mean(energy)),
                "power_median_w": float(np.median(powers[device])),
                "power_mean_w": float(np.mean(powers[device])),
                "efficiency_median_mflops_per_sw": float(np.median(efficiency)),
            }
        return table

    def latency_vs_flops(self, device: str) -> list[tuple[float, float]]:
        """Fig. 8: (latency_ms, flops) points of one device, ingestion order."""
        latencies = self._device_metric("latency_ms").get(device)
        flops = self._device_metric("flops").get(device)
        if latencies is None:
            return []
        return [(float(l), float(f)) for l, f in zip(latencies, flops)]

    def cloud_api_usage(self, min_apps: int = 0) -> dict[str, dict[str, object]]:
        """Fig. 15: apps per cloud ML API, from the store's app rows."""
        self.refresh()
        from repro.android.cloud_apis import tabulate_api_usage

        return tabulate_api_usage(
            (api_name
             for meta in self.store.segments_for("apps")
             for apis in self._cloud_extracts[meta.name]
             for api_name in apis),
            min_apps)

    # ------------------------------------------------------------------ #
    # Campaign overview
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, object]:
        """Row counts and device/backend coverage of the stored campaign."""
        self.refresh()
        per_kind = {kind: self.store.num_rows(kind)
                    for kind in self.store.kinds()}
        devices = sorted({device
                          for meta in self.store.segments_for("executions")
                          for device in self._execution_extracts[meta.name]})
        backends: set[str] = set()
        for meta in self.store.segments_for("executions"):
            stats = meta.stats.get("backend", {})
            backends.update(stats.get("values", ()))
        return {"rows": per_kind, "devices": devices,
                "backends": sorted(backends),
                "segments": len(self.store.segments)}
