"""Store-level merge by segment adoption — no row ever rewritten.

The campaign coordinator's merge step: segments sealed in shard-local
stores are *adopted* into a destination store by hard-linking (falling
back to copying) their immutable data files under freshly allocated
sequence names, then committing every adopted segment in **one** manifest
generation.  Because a segment's checksum covers only its payload bytes —
never its name — adoption needs no re-hash and no row rewrite: merging a
10M-row shard costs one ``link(2)`` per segment file plus a manifest
write, independent of row count.  That is the ≥5x-over-re-ingestion win
``benchmarks/test_bench_campaign.py`` gates.

Crash safety inherits the store's single-commit-point design:

* every adopted file lands via tmp-name + ``os.replace`` — never a torn
  file under a final name;
* the manifest commit is the *only* visibility switch.  A crash after
  some (or all) files were adopted but before the commit leaves the
  destination reading exactly its previously committed segments — the
  orphaned files are invisible;
* a retry re-reads the destination's unchanged ``sequence`` counter and
  therefore re-allocates the *same* target names, so ``os.replace``
  converges the orphans instead of leaking duplicates.

Derived state (``.npz`` caches, ``.cols`` mmap sidecars) is never
adopted — the destination rebuilds it lazily on first read, exactly as
after a crash that lost a cache.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro import obs
from repro.store.segment import (SegmentMeta, StoreCorruptionError,
                                 _fsync_directory, verify_segment)
from repro.store.store import ResultStore

__all__ = ["MergeStats", "adopt_segments", "merge_stores"]


@dataclass(frozen=True)
class MergeStats:
    """What one merge did, for operators and the CLI."""

    #: Source stores merged.
    sources: int
    #: Segments adopted into the destination.
    segments_adopted: int
    #: Rows those segments carry (no row was rewritten to move them).
    rows_adopted: int
    #: Row kinds adopted, in first-seen order.
    kinds: tuple[str, ...]
    #: Segment files adopted by hard link (same filesystem, zero copy).
    files_linked: int
    #: Segment files adopted by byte copy (cross-device fallback).
    files_copied: int


def _adopt_file(source: Path, dest: Path) -> bool:
    """Place ``source``'s bytes at ``dest`` atomically; True if hard-linked.

    A hard link is the fast path — the shard store and merged store then
    share one on-disk copy, so deleting the shard store afterwards costs
    no data.  Cross-device sources fall back to a byte copy.  Either way
    the bytes land under a tmp name first and ``os.replace`` publishes
    them, so a retry after a crash converges (the tmp is re-created, the
    replace is idempotent).
    """
    tmp = dest.with_name(dest.name + ".adopt-tmp")
    tmp.unlink(missing_ok=True)
    try:
        os.link(source, tmp)
        linked = True
    except OSError:
        shutil.copy2(source, tmp)
        linked = False
    os.replace(tmp, dest)
    return linked


def adopt_segments(dest: ResultStore,
                   sources: Sequence[Union[ResultStore, str, Path]], *,
                   kinds: Optional[Sequence[str]] = None,
                   verify: bool = False
                   ) -> tuple[list[SegmentMeta], int, MergeStats]:
    """Adopt every committed segment of ``sources`` into ``dest`` — uncommitted.

    Files are placed and fsynced but **nothing is committed**: the caller
    receives the adopted metas (renamed to ``dest``'s freshly allocated
    sequence numbers) plus the final sequence value, and decides what
    else joins the same manifest generation (the campaign coordinator
    seals its merged ``fleet_load`` grid into the same commit).  Source
    order is preserved — segments adopt in source-list order, commit
    order within a source — which is what makes a sharded campaign's
    merged event order match the unsharded run's.

    ``kinds`` restricts adoption to those row kinds; ``verify`` re-hashes
    each adopted file against its manifest checksum after placement.
    """
    dest.root.mkdir(parents=True, exist_ok=True)
    dest.segments_dir.mkdir(parents=True, exist_ok=True)
    wanted = set(kinds) if kinds is not None else None
    sequence = dest.sequence
    adopted: list[SegmentMeta] = []
    seen_kinds: dict[str, None] = {}
    linked = copied = 0
    with obs.span("store.adopt", items=len(sources)):
        for source in sources:
            store = source if isinstance(source, ResultStore) \
                else ResultStore(source)
            if store.root.resolve() == dest.root.resolve():
                raise ValueError("cannot merge a store into itself")
            for meta in store.segments:
                if wanted is not None and meta.kind not in wanted:
                    continue
                sequence += 1
                new_meta = dataclasses.replace(
                    meta, name=f"{meta.kind}-{sequence:06d}")
                for src_name, dst_name in zip(meta.filenames,
                                              new_meta.filenames):
                    src_path = store.segments_dir / src_name
                    if not src_path.exists():
                        if src_name == meta.data_filename:
                            raise StoreCorruptionError(
                                f"segment {meta.name!r} is in the manifest "
                                f"but its {meta.format} data file {src_path} "
                                f"is missing")
                        continue  # derived caches may legitimately be absent
                    if _adopt_file(src_path, dest.segments_dir / dst_name):
                        linked += 1
                    else:
                        copied += 1
                if verify:
                    verify_segment(dest.segments_dir, new_meta)
                adopted.append(new_meta)
                seen_kinds.setdefault(meta.kind, None)
        _fsync_directory(dest.segments_dir)
    stats = MergeStats(sources=len(sources), segments_adopted=len(adopted),
                       rows_adopted=sum(meta.rows for meta in adopted),
                       kinds=tuple(seen_kinds), files_linked=linked,
                       files_copied=copied)
    # Adoption totals are a pure function of the committed source
    # segments — deterministic-class.  Link-vs-copy is filesystem luck,
    # so it stays a wall-clock observation.
    obs.count("store.segments_adopted", stats.segments_adopted)
    obs.count("store.rows_adopted", stats.rows_adopted)
    obs.observe("store.files_linked", linked)
    obs.observe("store.files_copied", copied)
    return adopted, sequence, stats


def merge_stores(dest: ResultStore,
                 sources: Sequence[Union[ResultStore, str, Path]], *,
                 kinds: Optional[Sequence[str]] = None,
                 verify: bool = False) -> MergeStats:
    """Merge ``sources`` into ``dest`` in one atomic manifest commit.

    The standalone merge entry point (the ``repro store merge`` CLI):
    adopt every segment, then commit them all at once.  Readers of
    ``dest`` see either none of the merge or all of it.
    """
    adopted, sequence, stats = adopt_segments(dest, sources, kinds=kinds,
                                              verify=verify)
    if adopted:
        dest._commit(adopted, sequence)
    return stats
