"""Row schemas of the results store.

The store is column-oriented: every persisted row kind declares a flat,
ordered set of typed columns, and the conversion between the pipeline's
dataclasses and those flat rows lives here.  Four kinds cover the paper's
campaign outputs:

* ``executions`` — :class:`~repro.runtime.executor.ExecutionResult` rows, the
  sweep measurements behind Figs. 8-14;
* ``models``     — :class:`~repro.core.records.ModelRecord` summaries (the
  graph object itself is *not* persisted — a model is identified by its
  checksum, which is how the uniqueness analysis groups instances anyway);
* ``apps``       — :class:`~repro.core.records.AppRecord` rows, the Fig. 15
  cloud-API population;
* ``scenarios``  — :class:`~repro.core.scenarios.ScenarioResult` rows
  (Table 4 energy scenarios).

Two further *telemetry* kinds (``telemetry_metrics``, ``telemetry_spans``)
persist the :mod:`repro.obs` subsystem's counters and span records.  They
are written only into sidecar telemetry stores, never mixed into result
stores — :data:`TELEMETRY_KINDS` is the authoritative split, which
``store info`` uses to report them under their own heading.

Serialisation is exact: floats go through JSON ``repr`` (shortest round-trip
representation) in the segment log and through binary float64 in the column
cache, so a value read back compares bit-for-bit equal to the value written.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable, Mapping, Optional

import numpy as np

from repro.core.records import AppRecord, ModelRecord
from repro.core.scenarios import ScenarioResult
from repro.runtime.backends import Backend
from repro.runtime.executor import ExecutionResult

__all__ = [
    "Column",
    "RowKind",
    "ROW_KINDS",
    "kind_for",
    "kind_of_object",
    "execution_result_to_row",
    "execution_result_from_row",
    "execution_results_to_columns",
    "model_record_to_row",
    "app_record_to_row",
    "app_record_from_row",
    "scenario_result_to_row",
    "scenario_result_from_row",
    "fleet_event_to_row",
    "fleet_event_from_row",
    "fleet_load_to_row",
    "fleet_load_from_row",
    "pack_strings",
    "unpack_strings",
    "TELEMETRY_KINDS",
    "telemetry_row",
]

#: Separator used to pack tuple-of-string record fields into one column.
LIST_SEPARATOR = "|"


@dataclass(frozen=True)
class Column:
    """One typed column of a row kind."""

    name: str
    #: ``"f8"`` (float64), ``"i8"`` (int64), ``"bool"`` or ``"str"``.
    dtype: str

    @property
    def numpy_dtype(self):
        """The NumPy dtype backing this column in the cache."""
        return {"f8": np.float64, "i8": np.int64, "bool": np.bool_,
                "str": np.str_}[self.dtype]

    @property
    def is_numeric(self) -> bool:
        """Whether range (min/max) predicate pushdown applies."""
        return self.dtype in ("f8", "i8")


@dataclass(frozen=True)
class RowKind:
    """Schema plus (de)serialisers of one persisted row kind."""

    name: str
    columns: tuple[Column, ...]
    to_row: Callable[[Any], dict]
    #: ``None`` for summary kinds that do not reconstruct a dataclass.
    from_row: Optional[Callable[[dict], Any]] = None

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(f"row kind {self.name!r} has no column {name!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        """Ordered column names."""
        return tuple(column.name for column in self.columns)

    @cached_property
    def column_name_set(self) -> frozenset[str]:
        """Frozen column-name set, computed once per kind.

        The writer's per-row completeness check is a single subset test
        against this set instead of a per-row list build over the schema.
        """
        return frozenset(column.name for column in self.columns)


def pack_strings(values) -> str:
    """Pack a tuple of strings into one column value."""
    return LIST_SEPARATOR.join(values)


def unpack_strings(value: str) -> tuple[str, ...]:
    """Unpack a packed string column back into a tuple."""
    return tuple(value.split(LIST_SEPARATOR)) if value else ()


# --------------------------------------------------------------------------- #
# executions
# --------------------------------------------------------------------------- #
def execution_result_to_row(result: ExecutionResult) -> dict:
    """Flatten one benchmark measurement into a store row."""
    return {
        "model_name": result.model_name,
        "device_name": result.device_name,
        "backend": result.backend.value,
        "batch_size": result.batch_size,
        "thread_label": result.thread_label,
        "latency_ms": result.latency_ms,
        "energy_mj": result.energy_mj,
        "power_watts": result.power_watts,
        "flops": result.flops,
        "parameters": result.parameters,
        "peak_memory_bytes": result.peak_memory_bytes,
        "num_inferences": result.num_inferences,
    }


def execution_result_from_row(row: Mapping) -> ExecutionResult:
    """Rebuild the exact :class:`ExecutionResult` a row was written from."""
    return ExecutionResult(
        model_name=row["model_name"],
        device_name=row["device_name"],
        backend=Backend(row["backend"]),
        batch_size=int(row["batch_size"]),
        thread_label=row["thread_label"],
        latency_ms=float(row["latency_ms"]),
        energy_mj=float(row["energy_mj"]),
        power_watts=float(row["power_watts"]),
        flops=int(row["flops"]),
        parameters=int(row["parameters"]),
        peak_memory_bytes=int(row["peak_memory_bytes"]),
        num_inferences=int(row["num_inferences"]),
    )


def execution_results_to_columns(results) -> dict:
    """Pivot a sequence of :class:`ExecutionResult` into one column batch.

    The sweep's batch-native ingestion payload: one list comprehension per
    schema column (no per-row dicts, no per-row validation), ready for
    :meth:`~repro.store.writer.StoreWriter.append_batch`.  Values are
    exactly those of :func:`execution_result_to_row` applied row by row.
    The arrays come back frozen (read-only) — they are built here and
    nobody else references them, so the writer skips its no-alias copy.
    """
    columns = {
        "model_name": np.array([r.model_name for r in results], dtype=np.str_),
        "device_name": np.array([r.device_name for r in results],
                                dtype=np.str_),
        "backend": np.array([r.backend.value for r in results], dtype=np.str_),
        "batch_size": np.array([r.batch_size for r in results],
                               dtype=np.int64),
        "thread_label": np.array([r.thread_label for r in results],
                                 dtype=np.str_),
        "latency_ms": np.array([r.latency_ms for r in results],
                               dtype=np.float64),
        "energy_mj": np.array([r.energy_mj for r in results],
                              dtype=np.float64),
        "power_watts": np.array([r.power_watts for r in results],
                                dtype=np.float64),
        "flops": np.array([r.flops for r in results], dtype=np.int64),
        "parameters": np.array([r.parameters for r in results],
                               dtype=np.int64),
        "peak_memory_bytes": np.array([r.peak_memory_bytes for r in results],
                                      dtype=np.int64),
        "num_inferences": np.array([r.num_inferences for r in results],
                                   dtype=np.int64),
    }
    for array in columns.values():
        array.setflags(write=False)
    return columns


EXECUTIONS = RowKind(
    name="executions",
    columns=(
        Column("model_name", "str"),
        Column("device_name", "str"),
        Column("backend", "str"),
        Column("batch_size", "i8"),
        Column("thread_label", "str"),
        Column("latency_ms", "f8"),
        Column("energy_mj", "f8"),
        Column("power_watts", "f8"),
        Column("flops", "i8"),
        Column("parameters", "i8"),
        Column("peak_memory_bytes", "i8"),
        Column("num_inferences", "i8"),
    ),
    to_row=execution_result_to_row,
    from_row=execution_result_from_row,
)


# --------------------------------------------------------------------------- #
# models
# --------------------------------------------------------------------------- #
def model_record_to_row(record: ModelRecord) -> dict:
    """Summarise one model record (sans graph) into a store row."""
    return {
        "name": record.name,
        "checksum": record.checksum,
        "app_package": record.app_package,
        "category": record.category,
        "source": record.source,
        "framework": record.framework,
        "file_names": pack_strings(record.file_names),
        "size_bytes": record.size_bytes,
        "num_layers": record.num_layers,
        "flops": record.flops,
        "parameters": record.parameters,
        "modality": record.modality.value,
        "task": record.task,
        "has_dequantize_layer": record.has_dequantize_layer,
        "int8_weight_fraction": record.int8_weight_fraction,
        "int8_activation_fraction": record.int8_activation_fraction,
        "has_cluster_prefix": record.has_cluster_prefix,
        "has_prune_prefix": record.has_prune_prefix,
        "near_zero_weight_fraction": record.near_zero_weight_fraction,
    }


MODELS = RowKind(
    name="models",
    columns=(
        Column("name", "str"),
        Column("checksum", "str"),
        Column("app_package", "str"),
        Column("category", "str"),
        Column("source", "str"),
        Column("framework", "str"),
        Column("file_names", "str"),
        Column("size_bytes", "i8"),
        Column("num_layers", "i8"),
        Column("flops", "i8"),
        Column("parameters", "i8"),
        Column("modality", "str"),
        Column("task", "str"),
        Column("has_dequantize_layer", "bool"),
        Column("int8_weight_fraction", "f8"),
        Column("int8_activation_fraction", "f8"),
        Column("has_cluster_prefix", "bool"),
        Column("has_prune_prefix", "bool"),
        Column("near_zero_weight_fraction", "f8"),
    ),
    to_row=model_record_to_row,
)


# --------------------------------------------------------------------------- #
# apps
# --------------------------------------------------------------------------- #
def app_record_to_row(app: AppRecord) -> dict:
    """Flatten one crawled-app record into a store row."""
    return {
        "package": app.package,
        "title": app.title,
        "category": app.category,
        "downloads": app.downloads,
        "rating": app.rating,
        "frameworks_in_code": pack_strings(app.frameworks_in_code),
        "native_libraries": pack_strings(app.native_libraries),
        "accelerators": pack_strings(app.accelerators),
        "cloud_apis": pack_strings(app.cloud_apis),
        "cloud_providers": pack_strings(app.cloud_providers),
        "model_count": app.model_count,
        "candidate_file_count": app.candidate_file_count,
        "apk_size_bytes": app.apk_size_bytes,
    }


def app_record_from_row(row: Mapping) -> AppRecord:
    """Rebuild the exact :class:`AppRecord` a row was written from."""
    return AppRecord(
        package=row["package"],
        title=row["title"],
        category=row["category"],
        downloads=int(row["downloads"]),
        rating=float(row["rating"]),
        frameworks_in_code=unpack_strings(row["frameworks_in_code"]),
        native_libraries=unpack_strings(row["native_libraries"]),
        accelerators=unpack_strings(row["accelerators"]),
        cloud_apis=unpack_strings(row["cloud_apis"]),
        cloud_providers=unpack_strings(row["cloud_providers"]),
        model_count=int(row["model_count"]),
        candidate_file_count=int(row["candidate_file_count"]),
        apk_size_bytes=int(row["apk_size_bytes"]),
    )


APPS = RowKind(
    name="apps",
    columns=(
        Column("package", "str"),
        Column("title", "str"),
        Column("category", "str"),
        Column("downloads", "i8"),
        Column("rating", "f8"),
        Column("frameworks_in_code", "str"),
        Column("native_libraries", "str"),
        Column("accelerators", "str"),
        Column("cloud_apis", "str"),
        Column("cloud_providers", "str"),
        Column("model_count", "i8"),
        Column("candidate_file_count", "i8"),
        Column("apk_size_bytes", "i8"),
    ),
    to_row=app_record_to_row,
    from_row=app_record_from_row,
)


# --------------------------------------------------------------------------- #
# scenarios
# --------------------------------------------------------------------------- #
def scenario_result_to_row(result: ScenarioResult) -> dict:
    """Flatten one Table 4 scenario cost into a store row."""
    return {
        "scenario": result.scenario,
        "device": result.device,
        "model_name": result.model_name,
        "inference_count": result.inference_count,
        "energy_joules": result.energy_joules,
        "battery_discharge_mah": result.battery_discharge_mah,
        "battery_fraction": result.battery_fraction,
    }


def scenario_result_from_row(row: Mapping) -> ScenarioResult:
    """Rebuild the exact :class:`ScenarioResult` a row was written from."""
    return ScenarioResult(
        scenario=row["scenario"],
        device=row["device"],
        model_name=row["model_name"],
        inference_count=int(row["inference_count"]),
        energy_joules=float(row["energy_joules"]),
        battery_discharge_mah=float(row["battery_discharge_mah"]),
        battery_fraction=float(row["battery_fraction"]),
    )


SCENARIOS = RowKind(
    name="scenarios",
    columns=(
        Column("scenario", "str"),
        Column("device", "str"),
        Column("model_name", "str"),
        Column("inference_count", "i8"),
        Column("energy_joules", "f8"),
        Column("battery_discharge_mah", "f8"),
        Column("battery_fraction", "f8"),
    ),
    to_row=scenario_result_to_row,
    from_row=scenario_result_from_row,
)


# --------------------------------------------------------------------------- #
# fleet_events
# --------------------------------------------------------------------------- #
def fleet_event_to_row(event: Any) -> dict:
    """Flatten one fleet-simulator inference request into a store row.

    Attribute-based (rather than type-bound) so the schema layer never has to
    import the fleet package — :class:`~repro.fleet.events.FleetEvent` reaches
    the dispatcher through its ``__row_kind__`` marker instead.
    """
    return {
        "user_id": event.user_id,
        "time_s": event.time_s,
        "device_name": event.device_name,
        "model_name": event.model_name,
        "scenario": event.scenario,
        "backend": event.backend,
        "region": event.region,
        "target": event.target,
        "latency_ms": event.latency_ms,
        "wait_ms": event.wait_ms,
        "energy_mj": event.energy_mj,
        "throttle_factor": event.throttle_factor,
        "battery_fraction": event.battery_fraction,
        "discharge_mah": event.discharge_mah,
        "cloud_api": event.cloud_api,
        "cloud_bytes": event.cloud_bytes,
    }


def fleet_event_from_row(row: Mapping) -> Any:
    """Rebuild the exact :class:`~repro.fleet.events.FleetEvent` of a row."""
    from repro.fleet.events import FleetEvent

    return FleetEvent(
        user_id=int(row["user_id"]),
        time_s=float(row["time_s"]),
        device_name=row["device_name"],
        model_name=row["model_name"],
        scenario=row["scenario"],
        backend=row["backend"],
        region=row["region"],
        target=row["target"],
        latency_ms=float(row["latency_ms"]),
        wait_ms=float(row["wait_ms"]),
        energy_mj=float(row["energy_mj"]),
        throttle_factor=float(row["throttle_factor"]),
        battery_fraction=float(row["battery_fraction"]),
        discharge_mah=float(row["discharge_mah"]),
        cloud_api=row["cloud_api"],
        cloud_bytes=int(row["cloud_bytes"]),
    )


FLEET_EVENTS = RowKind(
    name="fleet_events",
    columns=(
        Column("user_id", "i8"),
        Column("time_s", "f8"),
        Column("device_name", "str"),
        Column("model_name", "str"),
        Column("scenario", "str"),
        Column("backend", "str"),
        Column("region", "str"),
        Column("target", "str"),
        Column("latency_ms", "f8"),
        Column("wait_ms", "f8"),
        Column("energy_mj", "f8"),
        Column("throttle_factor", "f8"),
        Column("battery_fraction", "f8"),
        Column("discharge_mah", "f8"),
        Column("cloud_api", "str"),
        Column("cloud_bytes", "i8"),
    ),
    to_row=fleet_event_to_row,
    from_row=fleet_event_from_row,
)


# --------------------------------------------------------------------------- #
# fleet_load
# --------------------------------------------------------------------------- #
def fleet_load_to_row(cell: Any) -> dict:
    """Flatten one (region, API, time-bin) load-profile cell into a store row.

    Attribute-based like :func:`fleet_event_to_row`: the cloud package's
    :class:`~repro.cloud.load.LoadCell` reaches the dispatcher through its
    ``__row_kind__`` marker, keeping the schema layer import-free of it.
    """
    return {
        "region": cell.region,
        "cloud_api": cell.cloud_api,
        "bin_index": cell.bin_index,
        "bin_start_s": cell.bin_start_s,
        "bin_seconds": cell.bin_seconds,
        "requests": cell.requests,
        "payload_bytes": cell.payload_bytes,
    }


def fleet_load_from_row(row: Mapping) -> Any:
    """Rebuild the exact :class:`~repro.cloud.load.LoadCell` of a row."""
    from repro.cloud.load import LoadCell

    return LoadCell(
        region=row["region"],
        cloud_api=row["cloud_api"],
        bin_index=int(row["bin_index"]),
        bin_start_s=float(row["bin_start_s"]),
        bin_seconds=float(row["bin_seconds"]),
        requests=int(row["requests"]),
        payload_bytes=int(row["payload_bytes"]),
    )


FLEET_LOAD = RowKind(
    name="fleet_load",
    columns=(
        Column("region", "str"),
        Column("cloud_api", "str"),
        Column("bin_index", "i8"),
        Column("bin_start_s", "f8"),
        Column("bin_seconds", "f8"),
        Column("requests", "i8"),
        Column("payload_bytes", "i8"),
    ),
    to_row=fleet_load_to_row,
    from_row=fleet_load_from_row,
)


# --------------------------------------------------------------------------- #
# telemetry (repro.obs sidecar kinds)
# --------------------------------------------------------------------------- #
def telemetry_row(row: Mapping) -> dict:
    """Identity serialiser: telemetry rows are built as flat dicts already.

    The :mod:`repro.obs` sink writes column batches (``append_batch``),
    so this path only runs for hand-appended rows in tests and tooling.
    """
    return dict(row)


TELEMETRY_METRICS = RowKind(
    name="telemetry_metrics",
    columns=(
        Column("run_id", "str"),
        Column("metric", "str"),
        #: ``"deterministic"`` or ``"wallclock"`` (repro.obs.metrics).
        Column("metric_class", "str"),
        #: Deterministic: the exact counter total.  Wall-clock: the
        #: observation count.
        Column("value_i", "i8"),
        Column("total", "f8"),
        Column("min", "f8"),
        Column("max", "f8"),
    ),
    to_row=telemetry_row,
)


TELEMETRY_SPANS = RowKind(
    name="telemetry_spans",
    columns=(
        Column("run_id", "str"),
        Column("span_id", "i8"),
        Column("parent_id", "i8"),
        Column("name", "str"),
        Column("start_s", "f8"),
        Column("duration_s", "f8"),
        Column("shard", "i8"),
        Column("items", "i8"),
        Column("detail", "str"),
    ),
    to_row=telemetry_row,
)


#: Row kinds that carry telemetry rather than results.  Sidecar stores are
#: made of these; result stores must never contain them.
TELEMETRY_KINDS: frozenset[str] = frozenset(
    (TELEMETRY_METRICS.name, TELEMETRY_SPANS.name))


# --------------------------------------------------------------------------- #
# bench_runs (the BENCH_*.json perf trajectory as a queryable campaign)
# --------------------------------------------------------------------------- #
BENCH_RUNS = RowKind(
    name="bench_runs",
    columns=(
        #: Benchmark name as stamped in the payload (e.g. ``"obs"``).
        Column("benchmark", "str"),
        #: Run identity — the payload's ``run_id`` stamp (commit or env
        #: override); (benchmark, run_id) keys idempotent re-ingestion.
        Column("run_id", "str"),
        #: The payload's ``schema_version`` stamp.
        Column("schema_version", "i8"),
        #: ``REPRO_BENCH_SCALE`` the run measured at.
        Column("scale", "f8"),
        #: Dotted path of one numeric leaf of the payload.
        Column("metric", "str"),
        Column("value", "f8"),
    ),
    to_row=telemetry_row,
)


#: Every registered row kind, by name.
ROW_KINDS: dict[str, RowKind] = {
    kind.name: kind
    for kind in (EXECUTIONS, MODELS, APPS, SCENARIOS, FLEET_EVENTS, FLEET_LOAD,
                 TELEMETRY_METRICS, TELEMETRY_SPANS, BENCH_RUNS)
}

#: Dispatch table from pipeline dataclasses to their row kind.
_OBJECT_KINDS: tuple[tuple[type, RowKind], ...] = (
    (ExecutionResult, EXECUTIONS),
    (ModelRecord, MODELS),
    (AppRecord, APPS),
    (ScenarioResult, SCENARIOS),
)


def kind_for(name: str) -> RowKind:
    """Look up a row kind by name."""
    try:
        return ROW_KINDS[name]
    except KeyError:
        raise KeyError(
            f"unknown row kind {name!r} (have {sorted(ROW_KINDS)})") from None


def kind_of_object(obj: Any) -> RowKind:
    """Row kind a pipeline object is persisted as.

    Objects may either appear in the static dispatch table or carry a
    ``__row_kind__`` class attribute naming their kind — the latter lets
    higher layers (the fleet simulator) define persistable dataclasses
    without the schema importing them.
    """
    kind_name = getattr(obj, "__row_kind__", None)
    if kind_name is not None:
        return kind_for(kind_name)
    for type_, kind in _OBJECT_KINDS:
        if isinstance(obj, type_):
            return kind
    raise TypeError(f"no row kind registered for {type(obj).__name__}")
